#include "ivm/database.h"

#include <chrono>
#include <sstream>

#include "common/check.h"

namespace ojv {
namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ViewMaintainer* Database::CreateMaterializedView(
    ViewDef view, const MaintenanceOptions* options) {
  std::string name = view.name();
  OJV_CHECK(views_.find(name) == views_.end() &&
                agg_views_.find(name) == agg_views_.end(),
            "duplicate view name");
  auto maintainer = std::make_unique<ViewMaintainer>(
      &catalog_, std::move(view), options != nullptr ? *options
                                                     : default_options_);
  maintainer->InitializeView();
  ViewMaintainer* raw = maintainer.get();
  views_[name] = std::move(maintainer);
  return raw;
}

AggViewMaintainer* Database::CreateAggregateView(
    ViewDef base, std::vector<ColumnRef> group_by,
    std::vector<AggregateSpec> aggregates, const MaintenanceOptions* options) {
  std::string name = base.name();
  OJV_CHECK(views_.find(name) == views_.end() &&
                agg_views_.find(name) == agg_views_.end(),
            "duplicate view name");
  auto maintainer = std::make_unique<AggViewMaintainer>(
      &catalog_, std::move(base), std::move(group_by), std::move(aggregates),
      options != nullptr ? *options : default_options_);
  maintainer->InitializeView();
  AggViewMaintainer* raw = maintainer.get();
  agg_views_[name] = std::move(maintainer);
  return raw;
}

ViewMaintainer* Database::GetView(const std::string& name) {
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : it->second.get();
}

AggViewMaintainer* Database::GetAggregateView(const std::string& name) {
  auto it = agg_views_.find(name);
  return it == agg_views_.end() ? nullptr : it->second.get();
}

std::vector<ViewMaintainer*> Database::Views() {
  std::vector<ViewMaintainer*> out;
  out.reserve(views_.size());
  for (auto& [name, view] : views_) out.push_back(view.get());
  return out;
}

bool Database::DropView(const std::string& name) {
  stats_.erase(name);
  return views_.erase(name) > 0 || agg_views_.erase(name) > 0;
}

bool Database::RowSatisfiesForeignKeys(const std::string& table,
                                       const Row& row) {
  const Table* child = catalog_.GetTable(table);
  for (const ForeignKey& fk : catalog_.foreign_keys()) {
    if (fk.child_table != table) continue;
    Row parent_key;
    parent_key.reserve(fk.child_columns.size());
    bool any_null = false;
    for (const std::string& col : fk.child_columns) {
      const Value& v = row[static_cast<size_t>(child->schema().IndexOf(col))];
      if (v.is_null()) any_null = true;
      parent_key.push_back(v);
    }
    if (any_null) continue;  // NULL FK references nothing
    if (catalog_.GetTable(fk.parent_table)->FindByKey(parent_key) == nullptr) {
      return false;
    }
  }
  return true;
}

std::vector<std::pair<const ForeignKey*, std::vector<Row>>>
Database::ReferencingRows(const std::string& table,
                          const std::vector<Row>& keys) {
  std::vector<std::pair<const ForeignKey*, std::vector<Row>>> out;
  const Table* parent = catalog_.GetTable(table);
  for (const ForeignKey* fk : catalog_.ForeignKeysReferencing(table)) {
    const Table* child = catalog_.GetTable(fk->child_table);
    std::vector<int> fk_positions;
    for (const std::string& col : fk->child_columns) {
      fk_positions.push_back(child->schema().IndexOf(col));
    }
    // Hash the deleted keys for the scan below.
    std::vector<Row> hits;
    child->ForEach([&](const Row& row) {
      Row ref;
      ref.reserve(fk_positions.size());
      for (int p : fk_positions) {
        const Value& v = row[static_cast<size_t>(p)];
        if (v.is_null()) return;
        ref.push_back(v);
      }
      for (const Row& key : keys) {
        if (key == ref) {
          hits.push_back(row);
          return;
        }
      }
    });
    if (!hits.empty()) out.emplace_back(fk, std::move(hits));
  }
  (void)parent;
  return out;
}

void Database::Accumulate(const std::string& view,
                          const MaintenanceStats& stats) {
  ViewStats& total = stats_[view];
  ++total.statements;
  total.delta_rows += stats.delta_rows;
  total.primary_rows += stats.primary_rows;
  total.secondary_rows += stats.secondary_rows;
  total.micros += stats.total_micros;
}

std::string Database::StatsReport() const {
  std::ostringstream out;
  out << "view                stmts      delta    primary  secondary"
      << "    total-ms" << '\n';
  for (const auto& [name, s] : stats_) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-18s %6lld %10lld %10lld %10lld %11.2f\n",
                  name.c_str(), static_cast<long long>(s.statements),
                  static_cast<long long>(s.delta_rows),
                  static_cast<long long>(s.primary_rows),
                  static_cast<long long>(s.secondary_rows),
                  s.micros / 1000.0);
    out << line;
  }
  return out.str();
}

void Database::MaintainInsert(const std::string& table,
                              const std::vector<Row>& rows,
                              StatementResult* result) {
  auto start = std::chrono::steady_clock::now();
  for (auto& [name, view] : views_) {
    if (view->view_def().tables().count(table) > 0) {
      Accumulate(name, view->OnInsert(table, rows, CurrentPolicy()));
    }
  }
  for (auto& [name, view] : agg_views_) {
    if (view->base_view().tables().count(table) > 0) {
      Accumulate(name, view->OnInsert(table, rows, CurrentPolicy()));
    }
  }
  result->maintenance_micros += MicrosSince(start);
}

void Database::MaintainDelete(const std::string& table,
                              const std::vector<Row>& rows,
                              StatementResult* result) {
  auto start = std::chrono::steady_clock::now();
  for (auto& [name, view] : views_) {
    if (view->view_def().tables().count(table) > 0) {
      Accumulate(name, view->OnDelete(table, rows, CurrentPolicy()));
    }
  }
  for (auto& [name, view] : agg_views_) {
    if (view->base_view().tables().count(table) > 0) {
      Accumulate(name, view->OnDelete(table, rows, CurrentPolicy()));
    }
  }
  result->maintenance_micros += MicrosSince(start);
}

Database::StatementResult Database::Insert(const std::string& table,
                                           const std::vector<Row>& rows) {
  StatementResult result;
  if (!catalog_.HasTable(table)) {
    result.error = "unknown table " + table;
    return result;
  }
  Table* base = catalog_.GetTable(table);
  std::vector<Row> accepted;
  accepted.reserve(rows.size());
  for (const Row& row : rows) {
    if (static_cast<int>(row.size()) != base->schema().num_columns() ||
        (!in_transaction_ && !RowSatisfiesForeignKeys(table, row)) ||
        !base->Insert(row)) {
      ++result.rows_rejected;
      continue;
    }
    accepted.push_back(row);
  }
  result.rows_affected = static_cast<int64_t>(accepted.size());
  if (!accepted.empty()) {
    MaintainInsert(table, accepted, &result);
    if (in_transaction_) {
      undo_log_.push_back(
          {UndoEntry::Kind::kDeleteInserted, table, accepted, {}});
    }
  }
  return result;
}

Database::StatementResult Database::Delete(const std::string& table,
                                           const std::vector<Row>& keys) {
  StatementResult result;
  if (!catalog_.HasTable(table)) {
    result.error = "unknown table " + table;
    return result;
  }
  // Referential integrity first: blocking children reject the whole
  // statement; cascading children are deleted (and their views
  // maintained) before the parents. Inside a transaction the checks are
  // deferred to Commit and cascades are suppressed (SQL defers the
  // constraint action too).
  std::vector<std::pair<const ForeignKey*, std::vector<Row>>> referencing;
  if (!in_transaction_) referencing = ReferencingRows(table, keys);
  for (const auto& [fk, child_rows] : referencing) {
    if (!fk->cascading_delete) {
      result.error = "delete from " + table + " violates FK from " +
                     fk->child_table;
      return result;
    }
  }
  for (const auto& [fk, child_rows] : referencing) {
    Table* child = catalog_.GetTable(fk->child_table);
    std::vector<Row> child_keys;
    child_keys.reserve(child_rows.size());
    for (const Row& row : child_rows) {
      Row key;
      for (int p : child->key_positions()) {
        key.push_back(row[static_cast<size_t>(p)]);
      }
      child_keys.push_back(std::move(key));
    }
    // Recursive delete handles chains of cascading constraints.
    StatementResult cascaded = Delete(fk->child_table, child_keys);
    if (!cascaded.ok()) {
      result.error = cascaded.error;
      return result;
    }
    result.rows_affected += cascaded.rows_affected;
    result.maintenance_micros += cascaded.maintenance_micros;
  }

  Table* base = catalog_.GetTable(table);
  std::vector<Row> deleted = ApplyBaseDelete(base, keys);
  result.rows_rejected +=
      static_cast<int64_t>(keys.size() - deleted.size());
  result.rows_affected += static_cast<int64_t>(deleted.size());
  if (!deleted.empty()) {
    MaintainDelete(table, deleted, &result);
    if (in_transaction_) {
      undo_log_.push_back(
          {UndoEntry::Kind::kReinsertDeleted, table, deleted, {}});
    }
  }
  return result;
}

Database::StatementResult Database::Update(const std::string& table,
                                           const std::vector<Row>& keys,
                                           const std::vector<Row>& new_rows) {
  StatementResult result;
  if (!catalog_.HasTable(table)) {
    result.error = "unknown table " + table;
    return result;
  }
  if (keys.size() != new_rows.size()) {
    result.error = "update arity mismatch";
    return result;
  }
  Table* base = catalog_.GetTable(table);
  // Keys must be unchanged (key updates would interact with FKs; model
  // them as explicit delete+insert statements instead).
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t k = 0; k < base->key_positions().size(); ++k) {
      const Value& new_key =
          new_rows[i][static_cast<size_t>(base->key_positions()[k])];
      if (new_key != keys[i][k]) {
        result.error = "update may not change key columns";
        return result;
      }
    }
    if (!in_transaction_ && !RowSatisfiesForeignKeys(table, new_rows[i])) {
      result.error = "updated row violates a foreign key";
      return result;
    }
  }

  std::vector<Row> old_rows;
  std::vector<Row> applied_new;
  for (size_t i = 0; i < keys.size(); ++i) {
    Row old_row;
    if (!base->DeleteByKey(keys[i], &old_row)) {
      ++result.rows_rejected;
      continue;
    }
    OJV_CHECK(base->Insert(new_rows[i]), "reinsert under same key");
    old_rows.push_back(std::move(old_row));
    applied_new.push_back(new_rows[i]);
  }
  result.rows_affected = static_cast<int64_t>(applied_new.size());
  if (applied_new.empty()) return result;

  auto start = std::chrono::steady_clock::now();
  for (auto& [name, view] : views_) {
    if (view->view_def().tables().count(table) > 0) {
      Accumulate(name, view->OnUpdate(table, old_rows, applied_new));
    }
  }
  for (auto& [name, view] : agg_views_) {
    if (view->base_view().tables().count(table) > 0) {
      Accumulate(name, view->OnUpdate(table, old_rows, applied_new));
    }
  }
  result.maintenance_micros += MicrosSince(start);
  if (in_transaction_ && !applied_new.empty()) {
    undo_log_.push_back(
        {UndoEntry::Kind::kReverseUpdate, table, applied_new, old_rows});
  }
  return result;
}

bool Database::BeginTransaction() {
  if (in_transaction_) return false;
  in_transaction_ = true;
  undo_log_.clear();
  return true;
}

Database::StatementResult Database::Commit() {
  StatementResult result;
  if (!in_transaction_) {
    result.error = "no open transaction";
    return result;
  }
  std::string violation;
  if (!catalog_.CheckForeignKeys(&violation)) {
    Rollback();
    result.error = "commit aborted: " + violation;
    return result;
  }
  in_transaction_ = false;
  undo_log_.clear();
  return result;
}

void Database::Rollback() {
  OJV_CHECK(in_transaction_, "no open transaction");
  // Replay inverses newest-first; maintenance stays constraint-free
  // (in_transaction_ remains set until we are done).
  StatementResult scratch;
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    Table* base = catalog_.GetTable(it->table);
    switch (it->kind) {
      case UndoEntry::Kind::kDeleteInserted: {
        std::vector<Row> keys;
        for (const Row& row : it->rows) {
          Row key;
          for (int p : base->key_positions()) {
            key.push_back(row[static_cast<size_t>(p)]);
          }
          keys.push_back(std::move(key));
        }
        std::vector<Row> deleted = ApplyBaseDelete(base, keys);
        OJV_CHECK(deleted.size() == keys.size(), "rollback delete mismatch");
        MaintainDelete(it->table, deleted, &scratch);
        break;
      }
      case UndoEntry::Kind::kReinsertDeleted: {
        std::vector<Row> inserted = ApplyBaseInsert(base, it->rows);
        OJV_CHECK(inserted.size() == it->rows.size(),
                  "rollback insert mismatch");
        MaintainInsert(it->table, inserted, &scratch);
        break;
      }
      case UndoEntry::Kind::kReverseUpdate: {
        std::vector<Row> keys;
        for (const Row& row : it->rows) {
          Row key;
          for (int p : base->key_positions()) {
            key.push_back(row[static_cast<size_t>(p)]);
          }
          keys.push_back(std::move(key));
        }
        std::vector<Row> current;
        ApplyBaseUpdate(base, keys, it->old_rows, &current);
        for (auto& [name, view] : views_) {
          if (view->view_def().tables().count(it->table) > 0) {
            view->OnUpdate(it->table, current, it->old_rows);
          }
        }
        for (auto& [name, view] : agg_views_) {
          if (view->base_view().tables().count(it->table) > 0) {
            view->OnUpdate(it->table, current, it->old_rows);
          }
        }
        break;
      }
    }
  }
  undo_log_.clear();
  in_transaction_ = false;
}

}  // namespace ojv
