#include "opt/heavy_hitters.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "obs/metrics.h"

namespace ojv {
namespace opt {

SpaceSavingSketch::SpaceSavingSketch(int capacity) : capacity_(capacity) {
  OJV_CHECK(capacity_ >= 1, "space-saving sketch needs at least one slot");
}

void SpaceSavingSketch::Add(const Value& v, int64_t delta) {
  auto it = slots_.find(v);
  if (it != slots_.end()) {
    it->second.count = std::max<int64_t>(0, it->second.count + delta);
    return;
  }
  if (delta <= 0) return;  // deletion of an untracked value: no signal
  if (static_cast<int>(slots_.size()) < capacity_) {
    slots_.emplace(v, Slot{delta, 0});
    return;
  }
  // Evict the minimum-count slot; the newcomer inherits its count as
  // possible overestimation (the space-saving replacement rule).
  auto min_it = slots_.begin();
  for (auto i = slots_.begin(); i != slots_.end(); ++i) {
    if (i->second.count < min_it->second.count) min_it = i;
  }
  const int64_t floor = min_it->second.count;
  slots_.erase(min_it);
  slots_.emplace(v, Slot{floor + delta, floor});
}

int64_t SpaceSavingSketch::EstimateCount(const Value& v) const {
  auto it = slots_.find(v);
  return it == slots_.end() ? 0 : it->second.count;
}

HeavyKeyTracker::HeavyKeyTracker(const HeavyHitterConfig& config)
    : config_(config), sketch_(config.sketch_capacity) {}

bool HeavyKeyTracker::IsHeavy(const Value& v, bool* demoted_now) {
  if (demoted_now != nullptr) *demoted_now = false;
  if (v.is_null()) return false;
  const int64_t count = sketch_.EstimateCount(v);
  if (promoted_.count(v) > 0) {
    const double low_water =
        static_cast<double>(config_.promote_threshold) *
        config_.demote_fraction;
    if (static_cast<double>(count) < low_water) {
      promoted_.erase(v);
      ++demotions_;
      if (demoted_now != nullptr) *demoted_now = true;
      return false;
    }
    return true;
  }
  if (count >= config_.promote_threshold) {
    promoted_.insert(v);
    return true;
  }
  return false;
}

int64_t HeavyKeyTracker::promoted_mass() const {
  int64_t mass = 0;
  for (const Value& v : promoted_) mass += sketch_.EstimateCount(v);
  return mass;
}

HeavyHitterCatalog::HeavyHitterCatalog(const Catalog* catalog,
                                       HeavyHitterConfig config)
    : catalog_(catalog), config_(config) {}

void HeavyHitterCatalog::Track(const std::string& table,
                               const std::string& column) {
  const Table* t = catalog_->GetTable(table);
  OJV_CHECK(t != nullptr, "tracking a column of an unknown table");
  const int pos = t->schema().IndexOf(column);  // aborts on unknown column
  Entry& entry = entries_[table];
  if (entry.columns.count(column) > 0) return;
  ColumnTracker tracker{pos, HeavyKeyTracker(config_)};
  entry.columns.emplace(column, std::move(tracker));
  entry.built = false;  // (re)scan picks up the new column
}

bool HeavyHitterCatalog::Tracks(const std::string& table) const {
  auto it = entries_.find(table);
  return it != entries_.end() && !it->second.columns.empty();
}

void HeavyHitterCatalog::Rebuild(const std::string& table, const Table& t,
                                 Entry* entry) {
  for (auto& [column, tracker] : entry->columns) {
    tracker.tracker = HeavyKeyTracker(config_);
  }
  t.ForEach([&](const Row& row) { Apply(entry, row, +1); });
  entry->expected_version = t.version();
  entry->built = true;
  ++rebuild_count_;
  PublishGauge(table, *entry);
}

void HeavyHitterCatalog::Apply(Entry* entry, const Row& row, int64_t sign) {
  for (auto& [column, tracker] : entry->columns) {
    const Value& v = row[static_cast<size_t>(tracker.position)];
    if (v.is_null()) continue;  // NULL joins nothing; don't sketch it
    tracker.tracker.Add(v, sign);
  }
}

HeavyHitterCatalog::Entry* HeavyHitterCatalog::EnsureBuilt(
    const std::string& table) {
  auto it = entries_.find(table);
  if (it == entries_.end() || it->second.columns.empty()) return nullptr;
  Entry& entry = it->second;
  const Table* t = catalog_->GetTable(table);
  OJV_CHECK(t != nullptr, "tracked table vanished from the catalog");
  if (!entry.built) Rebuild(table, *t, &entry);
  return &entry;
}

void HeavyHitterCatalog::OnInsert(const std::string& table,
                                  const std::vector<Row>& rows) {
  if (!Tracks(table)) return;
  Entry* entry = EnsureBuilt(table);
  const Table* t = catalog_->GetTable(table);
  if (entry->expected_version == t->version()) return;  // already accounted
  if (entry->expected_version + rows.size() != t->version()) {
    // The table moved in a way we did not see: rescan.
    Rebuild(table, *t, entry);
    return;
  }
  for (const Row& row : rows) Apply(entry, row, +1);
  entry->expected_version = t->version();
  PublishGauge(table, *entry);
}

void HeavyHitterCatalog::OnDelete(const std::string& table,
                                  const std::vector<Row>& rows) {
  if (!Tracks(table)) return;
  Entry* entry = EnsureBuilt(table);
  const Table* t = catalog_->GetTable(table);
  if (entry->expected_version == t->version()) return;
  if (entry->expected_version + rows.size() != t->version()) {
    Rebuild(table, *t, entry);
    return;
  }
  for (const Row& row : rows) Apply(entry, row, -1);
  entry->expected_version = t->version();
  PublishGauge(table, *entry);
}

void HeavyHitterCatalog::OnUpdate(const std::string& table,
                                  const std::vector<Row>& old_rows,
                                  const std::vector<Row>& new_rows) {
  if (!Tracks(table)) return;
  Entry* entry = EnsureBuilt(table);
  const Table* t = catalog_->GetTable(table);
  if (entry->expected_version == t->version()) return;
  if (entry->expected_version + old_rows.size() + new_rows.size() !=
      t->version()) {
    Rebuild(table, *t, entry);
    return;
  }
  for (const Row& row : old_rows) Apply(entry, row, -1);
  for (const Row& row : new_rows) Apply(entry, row, +1);
  entry->expected_version = t->version();
  PublishGauge(table, *entry);
}

bool HeavyHitterCatalog::IsHeavy(const std::string& table,
                                 const std::string& column, const Value& v,
                                 bool* demoted_now) {
  if (demoted_now != nullptr) *demoted_now = false;
  if (v.is_null()) return false;
  Entry* entry = EnsureBuilt(table);
  if (entry == nullptr) return false;
  auto it = entry->columns.find(column);
  if (it == entry->columns.end()) return false;
  bool demoted = false;
  const bool heavy = it->second.tracker.IsHeavy(v, &demoted);
  if (demoted) {
    if (demoted_now != nullptr) *demoted_now = true;
    PublishGauge(table, *entry);
  } else if (heavy) {
    PublishGauge(table, *entry);
  }
  return heavy;
}

int64_t HeavyHitterCatalog::EstimateCount(const std::string& table,
                                          const std::string& column,
                                          const Value& v) {
  Entry* entry = EnsureBuilt(table);
  if (entry == nullptr) return 0;
  auto it = entry->columns.find(column);
  return it == entry->columns.end() ? 0
                                    : it->second.tracker.EstimateCount(v);
}

int64_t HeavyHitterCatalog::PromotedKeys(const std::string& table) const {
  auto it = entries_.find(table);
  if (it == entries_.end()) return 0;
  int64_t keys = 0;
  for (const auto& [column, tracker] : it->second.columns) {
    keys += tracker.tracker.promoted_count();
  }
  return keys;
}

int64_t HeavyHitterCatalog::PromotedKeys(const std::string& table,
                                         const std::string& column) const {
  auto it = entries_.find(table);
  if (it == entries_.end()) return 0;
  auto cit = it->second.columns.find(column);
  return cit == it->second.columns.end()
             ? 0
             : cit->second.tracker.promoted_count();
}

int64_t HeavyHitterCatalog::PromotedMass(const std::string& table,
                                         const std::string& column) const {
  auto it = entries_.find(table);
  if (it == entries_.end()) return 0;
  auto cit = it->second.columns.find(column);
  return cit == it->second.columns.end() ? 0
                                         : cit->second.tracker.promoted_mass();
}

int64_t HeavyHitterCatalog::demotions() const {
  int64_t total = 0;
  for (const auto& [table, entry] : entries_) {
    for (const auto& [column, tracker] : entry.columns) {
      total += tracker.tracker.demotions();
    }
  }
  return total;
}

void HeavyHitterCatalog::InvalidateAll() {
  for (auto& [table, entry] : entries_) entry.built = false;
}

void HeavyHitterCatalog::PublishGauge(const std::string& table,
                                      const Entry& entry) {
  if constexpr (obs::kEnabled) {
    int64_t keys = 0;
    for (const auto& [column, tracker] : entry.columns) {
      keys += tracker.tracker.promoted_count();
    }
    const std::string label =
        scope_.empty() ? table : scope_ + "." + table;
    obs::Registry::Global()
        .GetGauge(obs::LabeledMetric("ojv.opt.heavy_keys", "table", label))
        .Set(keys);
  }
}

}  // namespace opt
}  // namespace ojv
