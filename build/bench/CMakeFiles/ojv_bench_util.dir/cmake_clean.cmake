file(REMOVE_RECURSE
  "CMakeFiles/ojv_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/ojv_bench_util.dir/bench_util.cc.o.d"
  "libojv_bench_util.a"
  "libojv_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ojv_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
