#ifndef OJV_TPCH_VIEWS_H_
#define OJV_TPCH_VIEWS_H_

#include "ivm/view_def.h"

namespace ojv {
namespace tpch {

/// The paper's introductory view (Example 1):
///
///   part FULL OUTER JOIN
///     (orders LEFT OUTER JOIN lineitem ON l_orderkey = o_orderkey)
///   ON p_partkey = l_partkey
///
/// Normal form (after FK pruning): {part,orders,lineitem}, {orders},
/// {part}. The paper's output list is extended with l_orderkey so the
/// view exposes lineitem's full key.
ViewDef MakeOjView(const Catalog& catalog);

/// Example 11's view V2 = σpc(C) fo (σpo(O) fo L), joined on
/// c_custkey = o_custkey and o_orderkey = l_orderkey. We instantiate
/// pc as c_acctbal >= 0 and po as o_orderdate >= 1995-01-01.
ViewDef MakeV2(const Catalog& catalog);

/// The experiment view V3 (§7):
///
///   ((lineitem JOIN orders ON l_orderkey = o_orderkey
///        AND o_orderdate BETWEEN 1994-06-01 AND 1994-12-31)
///     RIGHT OUTER JOIN customer ON c_custkey = o_custkey)
///   FULL OUTER JOIN part ON l_partkey = p_partkey
///        AND p_retailprice < 2000
///
/// Terms: {C,O,L,P}, {C,O,L}, {C}, {P} (Table 1).
ViewDef MakeV3(const Catalog& catalog);

}  // namespace tpch
}  // namespace ojv

#endif  // OJV_TPCH_VIEWS_H_
