#ifndef OJV_OBS_KERNEL_STATS_H_
#define OJV_OBS_KERNEL_STATS_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace ojv {
namespace obs {

/// Columnar-kernel counters, one family per kernel:
///   ojv.exec.columnar.<kernel>.rows_in   rows fed to the kernel
///   ojv.exec.columnar.<kernel>.rows_out  rows surviving it
///   ojv.exec.columnar.<kernel>.chunks    chunks processed
/// rows_out / rows_in is the kernel's observed selectivity. Called once
/// per operator invocation, not per row, so the registry lookup cost is
/// irrelevant (and compiled out entirely under OJV_OBS=OFF).
inline void RecordKernel(const char* kernel, int64_t rows_in, int64_t rows_out,
                         int64_t chunks) {
  if constexpr (kEnabled) {
    Registry& reg = Registry::Global();
    const std::string base = std::string("ojv.exec.columnar.") + kernel + ".";
    reg.GetCounter(base + "rows_in").Add(rows_in);
    reg.GetCounter(base + "rows_out").Add(rows_out);
    reg.GetCounter(base + "chunks").Add(chunks);
  }
}

/// SIMD-vs-scalar split: rows whose kernel loops dispatched to a vector
/// backend (AVX2/NEON) vs. the scalar fallback tree.
inline void RecordSimdRows(bool vector_backend, int64_t rows) {
  if constexpr (kEnabled) {
    static Counter& vec =
        Registry::Global().GetCounter("ojv.exec.columnar.rows_vector");
    static Counter& sca =
        Registry::Global().GetCounter("ojv.exec.columnar.rows_scalar");
    (vector_backend ? vec : sca).Add(rows);
  }
}

}  // namespace obs
}  // namespace ojv

#endif  // OJV_OBS_KERNEL_STATS_H_
