#include "exec/columnar/columnar_ops.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <limits>
#include <utility>

#include "common/check.h"
#include "exec/columnar/predicate.h"
#include "exec/columnar/simd.h"
#include "exec/join_table.h"
#include "obs/kernel_stats.h"

namespace ojv {
namespace columnar {
namespace {

static_assert(sizeof(size_t) == sizeof(uint64_t),
              "hash kernels assume 64-bit size_t");

constexpr uint64_t kHashBasis = 0xcbf29ce484222325ULL;
// Pre-image a NULL cell contributes when NULL keys participate in the
// hash (full-row dedup hashing; join hashing skips NULL keys instead).
constexpr int64_t kNullPre = static_cast<int64_t>(0x9e3779b97f4a7c15ULL);

int64_t ChunkRowsOf(const ExecConfig& config) {
  return config.chunk_rows >= 1 ? config.chunk_rows : 1;
}

int StaticWorkers(const ExecConfig& config, ThreadPool* pool, int64_t rows) {
  if (pool == nullptr || config.num_threads <= 1) return 1;
  if (rows < config.parallel_min_rows) return 1;
  return std::min(config.num_threads, pool->num_threads());
}

// Runs body(chunk, begin, end) over the chunks of an n-row input —
// chunks are the morsel unit, so chunk indexes line up with the
// ChunkedRelation's own chunking.
void ForEachChunk(const ExecConfig& config, ThreadPool* pool, int64_t n,
                  const std::function<void(int64_t, int64_t, int64_t)>& body) {
  if (n <= 0) return;
  const int64_t chunk_rows = ChunkRowsOf(config);
  const int workers = StaticWorkers(config, pool, n);
  if (workers == 1) {
    const int64_t chunks = (n + chunk_rows - 1) / chunk_rows;
    for (int64_t c = 0; c < chunks; ++c) {
      body(c, c * chunk_rows, std::min(n, (c + 1) * chunk_rows));
    }
    return;
  }
  pool->ParallelFor(n, chunk_rows, body, workers);
}

// Hash pre-image of a double, consistent with int64 columns so mixed
// int/float equality joins still collide: integral doubles contribute
// their integer value, others their bit pattern (no int64 can equal
// them anyway).
int64_t F64Pre(double d) {
  if (d >= -9223372036854775808.0 && d < 9223372036854775808.0) {
    const int64_t as_int = static_cast<int64_t>(d);
    if (d == static_cast<double>(as_int)) return as_int;
  }
  int64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

int64_t ValuePre(const Value& v) {
  if (v.is_null()) return kNullPre;
  if (v.is_int64()) return v.int64();
  if (v.is_float64()) return F64Pre(v.float64());
  return static_cast<int64_t>(std::hash<std::string>{}(v.string()));
}

enum class NullKeyPolicy { kSkip, kSentinel };

// Combined key hashes for rows [begin, end), written to out[0..n).
// kSkip gives any-NULL-key rows JoinTable::kSkipHash (SQL equality
// never matches them); kSentinel folds NULLs in as kNullPre (the
// NULL==NULL semantics dedup needs). All hashes are normalized.
void HashKeysRange(const ChunkedRelation& rel, const std::vector<int>& keys,
                   int64_t begin, int64_t end, NullKeyPolicy policy,
                   uint64_t* out) {
  const int64_t n = end - begin;
  std::fill(out, out + n, kHashBasis);
  std::vector<uint8_t> null_any;
  if (policy == NullKeyPolicy::kSkip) null_any.assign(static_cast<size_t>(n), 0);
  std::vector<int64_t> scratch;
  for (int key : keys) {
    const Column& col = rel.column(key);
    // Scan this column's validity over the range once (word-skipping).
    bool has_null = false;
    {
      int64_t i = begin;
      while (i < end) {
        const uint64_t bits = col.valid[static_cast<size_t>(i >> 6)];
        const int64_t word_end = std::min<int64_t>(end, (i | 63) + 1);
        if (bits == ~uint64_t{0}) {
          i = word_end;
          continue;
        }
        for (; i < word_end; ++i) {
          if (!((bits >> (i & 63)) & 1)) {
            has_null = true;
            if (policy == NullKeyPolicy::kSkip) {
              null_any[static_cast<size_t>(i - begin)] = 1;
            }
          }
        }
      }
    }
    if (col.cls == ColumnClass::kI64) {
      const int64_t* vals = col.i64.data() + begin;
      if (policy == NullKeyPolicy::kSentinel && has_null) {
        scratch.assign(vals, vals + n);
        for (int64_t i = 0; i < n; ++i) {
          if (!col.Valid(begin + i)) scratch[static_cast<size_t>(i)] = kNullPre;
        }
        simd::HashCombineI64(scratch.data(), n, out);
      } else {
        // Under kSkip, NULL slots contribute garbage (zeros) that the
        // final pass overwrites with kSkipHash.
        simd::HashCombineI64(vals, n, out);
      }
    } else if (col.cls == ColumnClass::kF64) {
      scratch.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        scratch[static_cast<size_t>(i)] =
            col.Valid(begin + i)
                ? F64Pre(col.f64[static_cast<size_t>(begin + i)])
                : kNullPre;
      }
      simd::HashCombineI64(scratch.data(), n, out);
    } else {
      scratch.resize(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        // Invalid slots hold default-constructed NULL Values, so
        // ValuePre already yields kNullPre for them.
        scratch[static_cast<size_t>(i)] =
            ValuePre(col.val[static_cast<size_t>(begin + i)]);
      }
      simd::HashCombineI64(scratch.data(), n, out);
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    if (policy == NullKeyPolicy::kSkip && null_any[static_cast<size_t>(i)]) {
      out[i] = JoinTable::kSkipHash;
    } else {
      out[i] = JoinTable::NormalizeHash(out[i]);
    }
  }
}

std::vector<size_t> HashAllRows(const ChunkedRelation& rel,
                                const std::vector<int>& keys,
                                NullKeyPolicy policy, const ExecConfig& config,
                                ThreadPool* pool) {
  std::vector<size_t> hashes(static_cast<size_t>(rel.num_rows()));
  ForEachChunk(config, pool, rel.num_rows(),
               [&](int64_t, int64_t begin, int64_t end) {
                 HashKeysRange(
                     rel, keys, begin, end, policy,
                     reinterpret_cast<uint64_t*>(hashes.data()) + begin);
               });
  return hashes;
}

// Combined hashes of an arbitrary row subset (given as gatherable int32
// indexes) over `proj` columns, all of which must be non-NULL at those
// rows (the subsumption kernel's invariant): gather + vectorized mix.
void HashRowsAt(const ChunkedRelation& rel, const std::vector<int>& proj,
                const std::vector<int32_t>& idx, std::vector<size_t>* out) {
  const int64_t n = static_cast<int64_t>(idx.size());
  out->assign(static_cast<size_t>(n), kHashBasis);
  uint64_t* h = reinterpret_cast<uint64_t*>(out->data());
  std::vector<int64_t> scratch(static_cast<size_t>(n));
  for (int p : proj) {
    const Column& col = rel.column(p);
    if (col.cls == ColumnClass::kI64) {
      simd::GatherI64(col.i64.data(), idx.data(), n, scratch.data());
    } else if (col.cls == ColumnClass::kF64) {
      for (int64_t i = 0; i < n; ++i) {
        scratch[static_cast<size_t>(i)] =
            F64Pre(col.f64[static_cast<size_t>(idx[static_cast<size_t>(i)])]);
      }
    } else {
      for (int64_t i = 0; i < n; ++i) {
        scratch[static_cast<size_t>(i)] =
            ValuePre(col.val[static_cast<size_t>(idx[static_cast<size_t>(i)])]);
      }
    }
    simd::HashCombineI64(scratch.data(), n, h);
  }
  for (int64_t i = 0; i < n; ++i) h[i] = JoinTable::NormalizeHash(h[i]);
}

// Packs 0/1 validity bytes into the packed bitmap (one word per 64
// bytes; runs serially — parallel writers would race on shared words
// when output ranges are not 64-aligned).
void PackValidity(const uint8_t* bytes, int64_t n,
                  std::vector<uint64_t>* valid) {
  for (int64_t i = 0; i < n; i += 64) {
    uint64_t w = 0;
    const int64_t m = std::min<int64_t>(64, n - i);
    for (int64_t j = 0; j < m; ++j) {
      w |= uint64_t{bytes[i + j]} << j;
    }
    (*valid)[static_cast<size_t>(i >> 6)] = w;
  }
}

// Gathers `n` cells of `src` at idx[0..n) into dst starting at
// dst_begin; validity lands in valid_bytes (indexed by dst position).
void GatherColumn(const Column& src, const int32_t* idx, int64_t n,
                  int64_t dst_begin, Column* dst, uint8_t* valid_bytes) {
  switch (src.cls) {
    case ColumnClass::kI64:
      simd::GatherI64(src.i64.data(), idx, n, dst->i64.data() + dst_begin);
      break;
    case ColumnClass::kF64:
      simd::GatherF64(src.f64.data(), idx, n, dst->f64.data() + dst_begin);
      break;
    case ColumnClass::kValue:
      for (int64_t i = 0; i < n; ++i) {
        dst->val[static_cast<size_t>(dst_begin + i)] =
            src.val[static_cast<size_t>(idx[i])];
      }
      break;
  }
  for (int64_t i = 0; i < n; ++i) {
    valid_bytes[dst_begin + i] = src.Valid(idx[i]) ? 1 : 0;
  }
}

// Same, but idx entries of -1 mean "NULL-extend this row": their cells
// stay invalid. Sentinels are clamped to 0 so the SIMD gather stays in
// bounds, then their validity bytes are cleared.
void GatherColumnNullable(const Column& src, int64_t src_rows,
                          const int32_t* idx, int64_t n, int64_t dst_begin,
                          Column* dst, uint8_t* valid_bytes,
                          std::vector<int32_t>* idx_scratch) {
  if (src_rows == 0) {
    // Allocate() zeroed the payload and validity; nothing to gather.
    return;
  }
  idx_scratch->resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    (*idx_scratch)[static_cast<size_t>(i)] = idx[i] < 0 ? 0 : idx[i];
  }
  GatherColumn(src, idx_scratch->data(), n, dst_begin, dst, valid_bytes);
  for (int64_t i = 0; i < n; ++i) {
    if (idx[i] < 0) valid_bytes[dst_begin + i] = 0;
  }
}

std::vector<ColumnClass> ClassesAt(const ChunkedRelation& rel,
                                   const std::vector<int>& positions) {
  std::vector<ColumnClass> classes;
  classes.reserve(positions.size());
  for (int p : positions) classes.push_back(rel.column(p).cls);
  return classes;
}

std::vector<int> IdentityPositions(int n) {
  std::vector<int> positions(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) positions[static_cast<size_t>(i)] = i;
  return positions;
}

// Materializes rows sel of src (columns `positions`, schema `schema`)
// as a new chunked relation, one parallel SIMD gather per column.
ChunkedRelation GatherRows(const ChunkedRelation& src,
                           const std::vector<int>& positions,
                           BoundSchema schema, const SelVector& sel,
                           const ExecConfig& config, ThreadPool* pool) {
  const int64_t n = static_cast<int64_t>(sel.size());
  ChunkedRelation out = ChunkedRelation::Allocate(
      std::move(schema), ClassesAt(src, positions), n, ChunkRowsOf(config));
  std::vector<uint8_t> bytes(static_cast<size_t>(n));
  for (size_t c = 0; c < positions.size(); ++c) {
    const Column& s = src.column(positions[c]);
    Column* d = out.mutable_column(static_cast<int>(c));
    ForEachChunk(config, pool, n, [&](int64_t, int64_t begin, int64_t end) {
      GatherColumn(s, sel.data() + begin, end - begin, begin, d, bytes.data());
    });
    PackValidity(bytes.data(), n, &d->valid);
  }
  out.RebuildNullMasks();
  return out;
}

void CheckAddressable(const Relation& rel) {
  OJV_CHECK(rel.size() <= std::numeric_limits<int32_t>::max(),
            "columnar engine addresses rows with int32 selection vectors");
}

}  // namespace

Relation Select(const Relation& in, const ScalarExprPtr& pred,
                const ExecConfig& config, ThreadPool* pool) {
  CheckAddressable(in);
  ChunkedRelation ch = ChunkedRelation::FromRelation(in, ChunkRowsOf(config));
  const int64_t n = ch.num_rows();
  if (n == 0) return Relation(in.schema());
  ColumnarPredicate compiled = ColumnarPredicate::Compile(pred, ch);
  const int64_t chunks = ch.num_chunks();
  std::vector<SelVector> sels(static_cast<size_t>(chunks));
  ForEachChunk(config, pool, n, [&](int64_t c, int64_t begin, int64_t end) {
    compiled.SelectInto(ch, begin, end, &sels[static_cast<size_t>(c)]);
  });
  size_t total = 0;
  for (const SelVector& s : sels) total += s.size();
  SelVector sel;
  sel.reserve(total);
  for (const SelVector& s : sels) sel.insert(sel.end(), s.begin(), s.end());
  ChunkedRelation out =
      GatherRows(ch, IdentityPositions(ch.num_columns()), in.schema(), sel,
                 config, pool);
  obs::RecordKernel("select", n, static_cast<int64_t>(total), chunks);
  obs::RecordSimdRows(simd::VectorBackendActive() && compiled.has_simd_leaf(),
                      n);
  return out.ToRelation();
}

Relation Project(const Relation& in, const std::vector<int>& positions,
                 BoundSchema schema, const ExecConfig& config,
                 ThreadPool* pool) {
  (void)pool;
  CheckAddressable(in);
  ChunkedRelation ch = ChunkedRelation::FromRelation(in, ChunkRowsOf(config));
  const int64_t n = ch.num_rows();
  ChunkedRelation out = ChunkedRelation::Allocate(
      std::move(schema), ClassesAt(ch, positions), n, ChunkRowsOf(config));
  // Projection is a whole-column copy in this representation.
  for (size_t c = 0; c < positions.size(); ++c) {
    *out.mutable_column(static_cast<int>(c)) = ch.column(positions[c]);
  }
  out.RebuildNullMasks();
  obs::RecordKernel("project", n, n, ch.num_chunks());
  return out.ToRelation();
}

Relation NullIf(const Relation& in, const ScalarExprPtr& pred,
                const std::set<std::string>& null_tables,
                const ExecConfig& config, ThreadPool* pool) {
  CheckAddressable(in);
  ChunkedRelation ch = ChunkedRelation::FromRelation(in, ChunkRowsOf(config));
  const int64_t n = ch.num_rows();
  if (n == 0) return Relation(in.schema());
  ColumnarPredicate compiled = ColumnarPredicate::Compile(pred, ch);
  std::vector<int> null_positions;
  for (int i = 0; i < ch.num_columns(); ++i) {
    if (null_tables.count(ch.schema().column(i).table) > 0) {
      null_positions.push_back(i);
    }
  }
  // Pass 1 (parallel): which rows fail the predicate (false or unknown).
  std::vector<uint8_t> nulled(static_cast<size_t>(n));
  ForEachChunk(config, pool, n, [&](int64_t, int64_t begin, int64_t end) {
    std::vector<int8_t> truth(static_cast<size_t>(end - begin));
    compiled.EvalTruth(ch, begin, end, truth.data());
    for (int64_t i = begin; i < end; ++i) {
      nulled[static_cast<size_t>(i)] = truth[static_cast<size_t>(i - begin)] != 1;
    }
  });
  // Pass 2 (serial, word-at-a-time): clear validity of the nulled
  // tables' columns on failing rows. Serial because distinct chunks can
  // share boundary words when chunk_rows is not a multiple of 64.
  for (int64_t w = 0; w * 64 < n; ++w) {
    uint64_t mask = 0;
    const int64_t m = std::min<int64_t>(64, n - w * 64);
    for (int64_t j = 0; j < m; ++j) {
      mask |= uint64_t{nulled[static_cast<size_t>(w * 64 + j)]} << j;
    }
    if (mask == 0) continue;
    for (int p : null_positions) {
      ch.mutable_column(p)->valid[static_cast<size_t>(w)] &= ~mask;
    }
  }
  ch.RebuildNullMasks();
  obs::RecordKernel("nullif", n, n, ch.num_chunks());
  obs::RecordSimdRows(simd::VectorBackendActive() && compiled.has_simd_leaf(),
                      n);
  return ch.ToRelation();
}

Relation HashJoin(JoinKind kind, const Relation& l, const Relation& r,
                  const std::vector<int>& left_keys,
                  const std::vector<int>& right_keys,
                  const BoundSchema& combined, const ExecConfig& config,
                  ThreadPool* pool, JoinStats* stats) {
  OJV_CHECK(!left_keys.empty(), "columnar join requires equality keys");
  CheckAddressable(l);
  CheckAddressable(r);
  const int64_t chunk_rows = ChunkRowsOf(config);
  ChunkedRelation lc = ChunkedRelation::FromRelation(l, chunk_rows);
  ChunkedRelation rc = ChunkedRelation::FromRelation(r, chunk_rows);
  const bool semi_or_anti =
      kind == JoinKind::kLeftSemi || kind == JoinKind::kLeftAnti;
  const bool track_right =
      kind == JoinKind::kRightOuter || kind == JoinKind::kFullOuter;
  const bool left_outer =
      kind == JoinKind::kLeftOuter || kind == JoinKind::kFullOuter;

  // Build on the right, probe the left (always: output order then only
  // depends on probe order, and bag equality is the engine contract).
  std::vector<size_t> build_hashes =
      HashAllRows(rc, right_keys, NullKeyPolicy::kSkip, config, pool);
  JoinTable table;
  table.Build(build_hashes, StaticWorkers(config, pool, rc.num_rows()), pool);
  std::vector<size_t> probe_hashes =
      HashAllRows(lc, left_keys, NullKeyPolicy::kSkip, config, pool);
  if (stats != nullptr) {
    stats->build_rows = table.size();
    stats->build_capacity = static_cast<int64_t>(table.capacity());
  }

  auto keys_equal = [&](int64_t li, int64_t ri) {
    for (size_t k = 0; k < left_keys.size(); ++k) {
      if (!ChunkedRelation::CellsEqual(lc, left_keys[k], li, rc,
                                       right_keys[k], ri)) {
        return false;
      }
    }
    return true;
  };

  // Probe chunk-at-a-time into per-chunk match lists (ridx -1 =
  // null-extended); concatenating them in chunk order keeps the output
  // deterministic at any worker count.
  const int64_t chunks = lc.num_chunks();
  struct ChunkMatches {
    SelVector lidx;
    SelVector ridx;
  };
  std::vector<ChunkMatches> match_chunks(static_cast<size_t>(chunks));
  std::vector<std::atomic<uint8_t>> right_matched(
      track_right ? static_cast<size_t>(rc.num_rows()) : 0);
  std::atomic<int64_t> probe_hits{0};
  ForEachChunk(config, pool, lc.num_rows(),
               [&](int64_t c, int64_t begin, int64_t end) {
    ChunkMatches& m = match_chunks[static_cast<size_t>(c)];
    m.lidx.reserve(static_cast<size_t>(end - begin));
    if (!semi_or_anti) m.ridx.reserve(static_cast<size_t>(end - begin));
    int64_t local_hits = 0;
    for (int64_t li = begin; li < end; ++li) {
      bool matched = false;
      const size_t h = probe_hashes[static_cast<size_t>(li)];
      if (h != JoinTable::kSkipHash) {
        table.ForEachMatch(h, [&](int64_t ri) {
          if (!keys_equal(li, ri)) return true;  // collision; keep probing
          matched = true;
          ++local_hits;
          if (track_right) {
            right_matched[static_cast<size_t>(ri)].store(
                1, std::memory_order_relaxed);
          }
          if (!semi_or_anti) {
            m.lidx.push_back(static_cast<int32_t>(li));
            m.ridx.push_back(static_cast<int32_t>(ri));
          }
          return !semi_or_anti;  // semi/anti: first match settles the row
        });
      }
      if (left_outer) {
        if (!matched) {
          m.lidx.push_back(static_cast<int32_t>(li));
          m.ridx.push_back(-1);
        }
      } else if (kind == JoinKind::kLeftSemi) {
        if (matched) m.lidx.push_back(static_cast<int32_t>(li));
      } else if (kind == JoinKind::kLeftAnti) {
        if (!matched) m.lidx.push_back(static_cast<int32_t>(li));
      }
    }
    probe_hits.fetch_add(local_hits, std::memory_order_relaxed);
  });
  if (stats != nullptr) {
    stats->probe_hits = probe_hits.load(std::memory_order_relaxed);
  }

  size_t num_matches = 0;
  for (const ChunkMatches& m : match_chunks) num_matches += m.lidx.size();
  SelVector all_l;
  all_l.reserve(num_matches);
  for (const ChunkMatches& m : match_chunks) {
    all_l.insert(all_l.end(), m.lidx.begin(), m.lidx.end());
  }

  if (semi_or_anti) {
    ChunkedRelation out =
        GatherRows(lc, IdentityPositions(lc.num_columns()), l.schema(), all_l,
                   config, pool);
    obs::RecordKernel("join", lc.num_rows() + rc.num_rows(), out.num_rows(),
                      chunks);
    obs::RecordSimdRows(simd::VectorBackendActive(),
                        lc.num_rows() + rc.num_rows());
    return out.ToRelation();
  }

  SelVector all_r;
  all_r.reserve(num_matches);
  for (const ChunkMatches& m : match_chunks) {
    all_r.insert(all_r.end(), m.ridx.begin(), m.ridx.end());
  }

  // Unmatched build rows surface after the probe output (right/full
  // outer), mirroring the row engine's trailing pass.
  SelVector unmatched_r;
  if (track_right) {
    for (int64_t ri = 0; ri < rc.num_rows(); ++ri) {
      if (!right_matched[static_cast<size_t>(ri)].load(
              std::memory_order_relaxed)) {
        unmatched_r.push_back(static_cast<int32_t>(ri));
      }
    }
  }

  const int lcols = lc.num_columns();
  const int rcols = rc.num_columns();
  const int64_t probe_out = static_cast<int64_t>(all_l.size());
  const int64_t total = probe_out + static_cast<int64_t>(unmatched_r.size());
  std::vector<ColumnClass> classes =
      ClassesAt(lc, IdentityPositions(lcols));
  for (ColumnClass cls : ClassesAt(rc, IdentityPositions(rcols))) {
    classes.push_back(cls);
  }
  ChunkedRelation out =
      ChunkedRelation::Allocate(combined, classes, total, chunk_rows);
  std::vector<uint8_t> bytes(static_cast<size_t>(total), 0);
  // Left columns: gathered for the probe region, NULL in the trailing
  // right-unmatched region (validity bytes stay 0 there).
  for (int c = 0; c < lcols; ++c) {
    const Column& s = lc.column(c);
    Column* d = out.mutable_column(c);
    std::fill(bytes.begin(), bytes.end(), 0);
    ForEachChunk(config, pool, probe_out,
                 [&](int64_t, int64_t begin, int64_t end) {
                   GatherColumn(s, all_l.data() + begin, end - begin, begin, d,
                                bytes.data());
                 });
    PackValidity(bytes.data(), total, &d->valid);
  }
  // Right columns: nullable gather over the probe region (-1 = null
  // extension), then a plain gather of the unmatched build rows.
  for (int c = 0; c < rcols; ++c) {
    const Column& s = rc.column(c);
    Column* d = out.mutable_column(lcols + c);
    std::fill(bytes.begin(), bytes.end(), 0);
    ForEachChunk(config, pool, probe_out,
                 [&](int64_t, int64_t begin, int64_t end) {
                   std::vector<int32_t> idx_scratch;
                   GatherColumnNullable(s, rc.num_rows(),
                                        all_r.data() + begin, end - begin,
                                        begin, d, bytes.data(), &idx_scratch);
                 });
    if (!unmatched_r.empty()) {
      GatherColumn(s, unmatched_r.data(),
                   static_cast<int64_t>(unmatched_r.size()), probe_out, d,
                   bytes.data());
    }
    PackValidity(bytes.data(), total, &d->valid);
  }
  out.RebuildNullMasks();
  obs::RecordKernel("join", lc.num_rows() + rc.num_rows(), total, chunks);
  obs::RecordSimdRows(simd::VectorBackendActive(),
                      lc.num_rows() + rc.num_rows());
  return out.ToRelation();
}

Relation Dedup(const Relation& in, const ExecConfig& config,
               ThreadPool* pool) {
  if (in.size() <= 1) return in;
  CheckAddressable(in);
  ChunkedRelation ch = ChunkedRelation::FromRelation(in, ChunkRowsOf(config));
  const int64_t n = ch.num_rows();
  const std::vector<int> all_cols = IdentityPositions(ch.num_columns());
  std::vector<size_t> hashes =
      HashAllRows(ch, all_cols, NullKeyPolicy::kSentinel, config, pool);
  JoinTable table;
  table.Build(hashes, StaticWorkers(config, pool, n), pool);

  auto rows_equal = [&](int64_t a, int64_t b) {
    for (int c : all_cols) {
      if (!ChunkedRelation::CellsEqual(ch, c, a, ch, c, b)) return false;
    }
    return true;
  };
  // A row is a duplicate iff some earlier row equals it (ForEachMatch
  // enumerates ascending), same as the row engine.
  std::vector<uint8_t> drop(static_cast<size_t>(n), 0);
  ForEachChunk(config, pool, n, [&](int64_t, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      table.ForEachMatch(hashes[static_cast<size_t>(i)], [&](int64_t j) {
        if (j >= i) return false;
        if (rows_equal(i, j)) {
          drop[static_cast<size_t>(i)] = 1;
          return false;
        }
        return true;
      });
    }
  });
  SelVector kept;
  kept.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    if (!drop[static_cast<size_t>(i)]) kept.push_back(static_cast<int32_t>(i));
  }
  ChunkedRelation out =
      GatherRows(ch, all_cols, in.schema(), kept, config, pool);
  obs::RecordKernel("dedup", n, out.num_rows(), ch.num_chunks());
  obs::RecordSimdRows(simd::VectorBackendActive(), n);
  return out.ToRelation();
}

Relation RemoveSubsumed(const Relation& in, const ExecConfig& config,
                        ThreadPool* pool) {
  if (in.empty()) return in;
  CheckAddressable(in);
  ChunkedRelation ch = ChunkedRelation::FromRelation(in, ChunkRowsOf(config));
  const int64_t n = ch.num_rows();
  const int cols = ch.num_columns();
  const size_t words = (static_cast<size_t>(cols) + 63) / 64;

  // Row-major non-null masks, read straight off the validity bitmaps.
  std::vector<uint64_t> masks(static_cast<size_t>(n) * words, 0);
  ForEachChunk(config, pool, n, [&](int64_t, int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      uint64_t* mask = &masks[static_cast<size_t>(i) * words];
      for (int c = 0; c < cols; ++c) {
        if (ch.column(c).Valid(i)) {
          mask[static_cast<size_t>(c) / 64] |= uint64_t{1} << (c % 64);
        }
      }
    }
  });

  // Group rows by mask (few distinct masks: one per term shape).
  struct Group {
    const uint64_t* mask;
    std::vector<int32_t> rows;
  };
  std::vector<Group> groups;
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t* mask = &masks[static_cast<size_t>(i) * words];
    Group* group = nullptr;
    for (Group& g : groups) {
      if (std::equal(mask, mask + words, g.mask)) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(Group{mask, {}});
      group = &groups.back();
    }
    group->rows.push_back(static_cast<int32_t>(i));
  }
  if (groups.size() == 1) return in;  // identical masks cannot subsume

  auto strict_subset = [&](const uint64_t* small, const uint64_t* big) {
    bool strict = false;
    for (size_t w = 0; w < words; ++w) {
      if ((small[w] & ~big[w]) != 0) return false;
      if ((big[w] & ~small[w]) != 0) strict = true;
    }
    return strict;
  };

  std::vector<uint8_t> drop(static_cast<size_t>(n), 0);
  JoinTable table;
  std::vector<size_t> sup_hashes;
  std::vector<size_t> sub_hashes;
  std::vector<int> proj;
  for (const Group& sub : groups) {
    proj.clear();
    for (int c = 0; c < cols; ++c) {
      if ((sub.mask[static_cast<size_t>(c) / 64] >> (c % 64)) & 1) {
        proj.push_back(c);
      }
    }
    // The projection depends only on the subset group; hash its rows
    // once and reuse across every superset group.
    bool sub_hashed = false;
    for (const Group& sup : groups) {
      if (!strict_subset(sub.mask, sup.mask)) continue;
      if (!sub_hashed) {
        HashRowsAt(ch, proj, sub.rows, &sub_hashes);
        sub_hashed = true;
      }
      HashRowsAt(ch, proj, sup.rows, &sup_hashes);
      table.Build(sup_hashes,
                  StaticWorkers(config, pool,
                                static_cast<int64_t>(sup.rows.size())),
                  pool);
      ForEachChunk(
          config, pool, static_cast<int64_t>(sub.rows.size()),
          [&](int64_t, int64_t begin, int64_t end) {
            for (int64_t k = begin; k < end; ++k) {
              const int32_t i = sub.rows[static_cast<size_t>(k)];
              if (drop[static_cast<size_t>(i)]) continue;
              table.ForEachMatch(
                  sub_hashes[static_cast<size_t>(k)], [&](int64_t t) {
                    const int32_t j = sup.rows[static_cast<size_t>(t)];
                    for (int p : proj) {
                      if (!ChunkedRelation::CellsEqual(ch, p, i, ch, p, j)) {
                        return true;
                      }
                    }
                    drop[static_cast<size_t>(i)] = 1;
                    return false;
                  });
            }
          });
    }
  }
  SelVector kept;
  kept.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    if (!drop[static_cast<size_t>(i)]) kept.push_back(static_cast<int32_t>(i));
  }
  ChunkedRelation out = GatherRows(ch, IdentityPositions(cols), in.schema(),
                                   kept, config, pool);
  obs::RecordKernel("subsume", n, out.num_rows(), ch.num_chunks());
  obs::RecordSimdRows(simd::VectorBackendActive(), n);
  return out.ToRelation();
}

}  // namespace columnar
}  // namespace ojv
