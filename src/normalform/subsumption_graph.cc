#include "normalform/subsumption_graph.h"

#include <algorithm>

namespace ojv {

SubsumptionGraph::SubsumptionGraph(const std::vector<Term>& terms) {
  const int n = static_cast<int>(terms.size());
  parents_.resize(static_cast<size_t>(n));
  children_.resize(static_cast<size_t>(n));
  for (int child = 0; child < n; ++child) {
    for (int parent = 0; parent < n; ++parent) {
      if (!terms[static_cast<size_t>(child)].IsStrictSubsetOf(
              terms[static_cast<size_t>(parent)])) {
        continue;
      }
      // Minimality: no intermediate term strictly between them.
      bool minimal = true;
      for (int mid = 0; mid < n && minimal; ++mid) {
        if (mid == child || mid == parent) continue;
        if (terms[static_cast<size_t>(child)].IsStrictSubsetOf(
                terms[static_cast<size_t>(mid)]) &&
            terms[static_cast<size_t>(mid)].IsStrictSubsetOf(
                terms[static_cast<size_t>(parent)])) {
          minimal = false;
        }
      }
      if (minimal) {
        parents_[static_cast<size_t>(child)].push_back(parent);
        children_[static_cast<size_t>(parent)].push_back(child);
      }
    }
  }
}

std::string SubsumptionGraph::ToString(const std::vector<Term>& terms) const {
  std::vector<std::string> lines;
  for (int child = 0; child < num_nodes(); ++child) {
    for (int parent : Parents(child)) {
      lines.push_back(terms[static_cast<size_t>(parent)].Label() + " -> " +
                      terms[static_cast<size_t>(child)].Label());
    }
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

}  // namespace ojv
