#include "multiview/view_group.h"

#include <algorithm>

#include "obs/metrics.h"

namespace ojv {
namespace multiview {

void ViewGroupCatalog::Register(const std::string& view,
                                MemberFingerprints fingerprints) {
  registered_[view] = std::move(fingerprints);
  Rebuild();
}

void ViewGroupCatalog::Remove(const std::string& view) {
  if (registered_.erase(view) == 0) return;
  Rebuild();
}

const MemberFingerprints* ViewGroupCatalog::FingerprintsOf(
    const std::string& view) const {
  auto it = registered_.find(view);
  return it == registered_.end() ? nullptr : &it->second;
}

const ViewGroup* ViewGroupCatalog::GroupOf(const std::string& view) const {
  auto it = member_to_group_.find(view);
  return it == member_to_group_.end() ? nullptr : &groups_[it->second];
}

void ViewGroupCatalog::Rebuild() {
  groups_.clear();
  member_to_group_.clear();

  // Bucket views by (ΔT table, signature of the first delta step). A
  // view appears in one bucket per table it references with a
  // decomposable, non-trivial delta plan; plans with no steps share
  // nothing beyond ΔT itself, which every member already has.
  struct Bucket {
    std::string table;
    std::string signature;
    std::vector<std::string> views;
  };
  std::map<std::string, Bucket> buckets;  // key = table + '\x1f' + sig
  for (const auto& [view, fps] : registered_) {
    for (const auto& [table, fp] : fps.prints) {
      if (!fp.ok || fp.steps.empty()) continue;
      std::string sig = fp.Signature(1);
      Bucket& b = buckets[table + '\x1f' + sig];
      b.table = table;
      b.signature = sig;
      b.views.push_back(view);
    }
  }

  // Greedily assign each view to its largest bucket: biggest buckets
  // first (ties broken by key order), a view joins the first bucket
  // that claims it. Buckets left with fewer than two unclaimed members
  // form no group — singletons maintain independently.
  std::vector<const Bucket*> ordered;
  ordered.reserve(buckets.size());
  for (const auto& [key, b] : buckets) ordered.push_back(&b);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Bucket* a, const Bucket* b) {
                     return a->views.size() > b->views.size();
                   });

  std::map<std::string, bool> assigned;
  for (const Bucket* b : ordered) {
    std::vector<std::string> members;
    for (const std::string& view : b->views) {
      if (!assigned[view]) members.push_back(view);
    }
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end());
    for (const std::string& view : members) {
      assigned[view] = true;
      member_to_group_[view] = groups_.size();
    }
    ViewGroup group;
    group.id = "g" + std::to_string(next_id_++);
    group.anchor_table = b->table;
    group.anchor_signature = b->signature;
    group.members = std::move(members);
    groups_.push_back(std::move(group));
  }

  ++version_;
  if constexpr (obs::kEnabled) {
    obs::Registry& reg = obs::Registry::Global();
    static obs::Gauge& groups_gauge = reg.GetGauge("ojv.multiview.groups");
    groups_gauge.Set(static_cast<int64_t>(groups_.size()));
    // Per-group membership. Zero the gauges of ids from the previous
    // rebuild first: ids are regenerated every rebuild, so without this
    // a vanished group would keep its last member count forever.
    for (const std::string& id : published_gauge_ids_) {
      reg.GetGauge(obs::LabeledMetric("ojv.multiview.group_members", "group",
                                      id))
          .Set(0);
    }
    published_gauge_ids_.clear();
    for (const ViewGroup& group : groups_) {
      reg.GetGauge(obs::LabeledMetric("ojv.multiview.group_members", "group",
                                      group.id))
          .Set(static_cast<int64_t>(group.members.size()));
      published_gauge_ids_.push_back(group.id);
    }
  }
}

}  // namespace multiview
}  // namespace ojv
