# Empty compiler generated dependencies file for ojv_catalog.
# This may be replaced when dependencies are built.
