// Initial materialization cost: full computation of the paper's views
// (outer-join view, its inner-join core, and the aggregated dashboard).
// Not a paper figure, but the baseline every incremental number in
// EXPERIMENTS.md is implicitly compared against: maintenance only pays
// off if it beats re-running this.

#include "bench_util.h"
#include "ivm/aggregate_view.h"
#include "ivm/maintainer.h"
#include "tpch/views.h"

namespace ojv {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("TPC-H SF=%.3f\n", options.scale_factor);
  TpchInstance instance(options);

  JsonReport report("view_init", options);
  MaintenanceOptions par_options;
  par_options.exec.num_threads = options.threads;
  char par_col[32];
  std::snprintf(par_col, sizeof(par_col), "Time(par%d)", options.threads);
  PrintHeader("Initial materialization",
              {"View", "Rows", "Time", par_col});

  auto run_view = [&](const std::string& label, const ViewDef& def) {
    ViewMaintainer maintainer(&instance.catalog, def, MaintenanceOptions());
    ViewMaintainer par(&instance.catalog, def, par_options);
    double ms = TimeMs([&] { maintainer.InitializeView(); });
    double par_ms = TimeMs([&] { par.InitializeView(); });
    PrintRow({label, FormatCount(maintainer.view().size()), FormatMs(ms),
              FormatMs(par_ms)});
    report.BeginRow();
    report.Str("view", label);
    report.Count("rows", maintainer.view().size());
    report.Num("init_ms", ms);
    report.Num("init_parallel_ms", par_ms);
  };

  run_view("v3", tpch::MakeV3(instance.catalog));
  run_view("v3_core", tpch::MakeV3(instance.catalog).CoreView(instance.catalog));
  run_view("oj_view", tpch::MakeOjView(instance.catalog));
  {
    std::vector<ColumnRef> group_by = {{"customer", "c_mktsegment"}};
    std::vector<AggregateSpec> aggs = {
        {AggregateSpec::Kind::kCountStar, {}, "rows"},
        {AggregateSpec::Kind::kSum, {"lineitem", "l_extendedprice"},
         "revenue"}};
    AggViewMaintainer agg(&instance.catalog, tpch::MakeV3(instance.catalog),
                          group_by, aggs);
    double ms = TimeMs([&] { agg.InitializeView(); });
    PrintRow({"v3_by_segment", FormatCount(agg.num_groups()), FormatMs(ms),
              "-"});
    report.BeginRow();
    report.Str("view", "v3_by_segment");
    report.Count("rows", agg.num_groups());
    report.Num("init_ms", ms);
  }
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
