#ifndef OJV_EXEC_COLUMNAR_PREDICATE_H_
#define OJV_EXEC_COLUMNAR_PREDICATE_H_

#include <cstdint>
#include <vector>

#include "algebra/scalar_expr.h"
#include "exec/columnar/chunked_relation.h"

namespace ojv {
namespace columnar {

/// A scalar predicate compiled against one ChunkedRelation: column
/// references resolve to positions once, and each node is tagged at
/// compile time with the SIMD fast path its operand classes admit.
/// Evaluation is vector-at-a-time over a row range and produces SQL
/// tri-state bytes: 1 = true, 0 = false, -1 = unknown — exactly the
/// truth table BoundScalar implements row-at-a-time (NULL-in-compare =
/// unknown, AND/OR Kleene logic).
///
/// A compiled predicate is immutable and safe to evaluate from multiple
/// threads concurrently.
class ColumnarPredicate {
 public:
  /// Compiles against rel's schema and column classes. expr != nullptr.
  static ColumnarPredicate Compile(const ScalarExprPtr& expr,
                                   const ChunkedRelation& rel);

  /// Writes tri-state bytes for rows [begin, end) to out[0..end-begin).
  void EvalTruth(const ChunkedRelation& rel, int64_t begin, int64_t end,
                 int8_t* out) const;

  /// Appends row ids of [begin, end) whose truth value is exactly 1.
  void SelectInto(const ChunkedRelation& rel, int64_t begin, int64_t end,
                  SelVector* sel) const;

  /// True when the root or any descendant evaluates through a SIMD
  /// kernel (as opposed to the per-row Value fallback).
  bool has_simd_leaf() const { return has_simd_leaf_; }

 private:
  // Fast-path tag resolved at compile time from operand classes.
  enum class Fast : uint8_t {
    kNone,       // per-row Value evaluation
    kI64ColLit,  // i64 column <op> int64 literal
    kI64ColCol,  // i64 column <op> i64 column
    kF64ColLit,  // f64 column <op> numeric literal (AsDouble)
    kBoolI64Col, // i64 column used as a truth value (v != 0)
    kIsNullCol,  // IS NULL over a direct column: read the validity bitmap
  };

  struct Node {
    ScalarKind kind = ScalarKind::kLiteral;
    int position = -1;          // kColumn
    Value literal;              // kLiteral
    CompareOp op = CompareOp::kEq;
    Fast fast = Fast::kNone;
    int fast_col = -1;
    int fast_col2 = -1;
    int64_t fast_i64 = 0;
    double fast_f64 = 0;
    std::vector<Node> children;
  };

  static Node CompileNode(const ScalarExprPtr& expr,
                          const ChunkedRelation& rel, bool* has_simd_leaf);
  static void EvalTruthNode(const Node& node, const ChunkedRelation& rel,
                            int64_t begin, int64_t end, int8_t* out);
  static void EvalValueNode(const Node& node, const ChunkedRelation& rel,
                            int64_t begin, int64_t end, Value* out);

  Node root_;
  bool has_simd_leaf_ = false;
};

}  // namespace columnar
}  // namespace ojv

#endif  // OJV_EXEC_COLUMNAR_PREDICATE_H_
