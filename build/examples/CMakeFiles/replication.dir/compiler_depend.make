# Empty compiler generated dependencies file for replication.
# This may be replaced when dependencies are built.
