#ifndef OJV_NORMALFORM_TERM_H_
#define OJV_NORMALFORM_TERM_H_

#include <set>
#include <string>
#include <vector>

#include "algebra/rel_expr.h"
#include "algebra/scalar_expr.h"

namespace ojv {

/// One term of the join-disjunctive normal form: a select-inner-join
/// expression  σ_{p1 ∧ ... ∧ pk}(T1 × ... × Tm)  identified by its source
/// table set (unique within a view) and carrying the applicable
/// predicate conjuncts.
struct Term {
  /// Source tables Ti. Tuples of this term are null-extended on every
  /// other view table.
  std::set<std::string> source;
  /// Conjuncts applicable to this term (each references only tables in
  /// `source`).
  std::vector<ScalarExprPtr> predicates;

  /// "{R,S,T}"-style label as used in the paper's figures.
  std::string Label() const;

  /// True when `other.source` is a strict superset of `source`.
  bool IsStrictSubsetOf(const Term& other) const;

  /// Builds the evaluable expression σ_p(T1 join T2 join ... join Tm).
  /// The joins are inner joins over a cross-product chain; predicates are
  /// applied in a single selection on top, which the evaluator's
  /// conjunct-splitting turns back into hash joins where possible.
  RelExprPtr ToRelExpr() const;

  /// ToRelExpr with an explicit join order. `order` must be a
  /// permutation of `source`; each conjunct still attaches at the first
  /// join where all its tables are bound (inner joins and conjunctive
  /// predicates make every order equivalent). Cost-based planning feeds
  /// an order sorted by estimated cardinality here.
  RelExprPtr ToRelExprOrdered(const std::vector<std::string>& order) const;
};

/// Evaluable expression for the minimum union E1 ⊕ E2 ⊕ ... ⊕ En of all
/// terms — the normal form itself. Used in tests to validate JDNF
/// equivalence against the original view tree.
RelExprPtr NormalFormRelExpr(const std::vector<Term>& terms);

}  // namespace ojv

#endif  // OJV_NORMALFORM_TERM_H_
