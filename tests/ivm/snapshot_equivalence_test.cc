// Snapshot-read equivalence property (DESIGN.md §17): at every
// generation boundary — an explicit Refresh, a kFresh read, or the
// opportunistic catch-up a kSnapshot read performs on an eager view —
// the pinned snapshot must equal what a single-threaded database
// (all-immediate, kUniform, kIndependent: the oracle) holds after the
// same statement stream. Between boundaries, a deferred view's
// kSnapshot reads must keep returning exactly the contents published at
// the last boundary.
//
// The property is pinned across the four policy quadrants:
// SkewMode::{kUniform, kHeavyLight} × MultiviewMode::{kIndependent,
// kShared}. Under kShared a refresh of either deferred view drains the
// whole group and must publish a generation for *every* member.

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ivm/database.h"

namespace ojv {
namespace {

using deferred::RefreshPolicy;

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

void CreateSchema(Database* db) {
  db->catalog()->CreateTable(
      "dept",
      Schema({ColumnDef{"d_id", ValueType::kInt64, false},
              ColumnDef{"d_name", ValueType::kString, false}}),
      {"d_id"});
  db->catalog()->CreateTable(
      "emp",
      Schema({ColumnDef{"e_id", ValueType::kInt64, false},
              ColumnDef{"e_dept", ValueType::kInt64, false},
              ColumnDef{"e_salary", ValueType::kFloat64, true}}),
      {"e_id"});
}

ViewDef MakeView(const Catalog& catalog, const char* name) {
  RelExprPtr tree = RelExpr::Join(
      JoinKind::kFullOuter, RelExpr::Scan("dept"), RelExpr::Scan("emp"),
      Eq("dept", "d_id", "emp", "e_dept"));
  return ViewDef(name, tree,
                 {{"dept", "d_id"},
                  {"dept", "d_name"},
                  {"emp", "e_id"},
                  {"emp", "e_dept"},
                  {"emp", "e_salary"}},
                 catalog);
}

class SnapshotEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int, uint64_t>> {};

TEST_P(SnapshotEquivalenceTest, SnapshotsMatchSingleThreadedAtBoundaries) {
  const SkewMode skew =
      std::get<0>(GetParam()) != 0 ? SkewMode::kHeavyLight : SkewMode::kUniform;
  const MultiviewMode mv = std::get<1>(GetParam()) != 0
                               ? MultiviewMode::kShared
                               : MultiviewMode::kIndependent;
  const uint64_t seed = std::get<2>(GetParam());
  const bool shared = mv == MultiviewMode::kShared;

  MaintenanceOptions options;
  options.skew = skew;
  options.heavy.promote_threshold = 4;  // a few repeats promote a key
  options.heavy.sketch_capacity = 16;
  options.multiview = mv;
  Database subject(options);
  Database oracle;  // all-immediate, kUniform, kIndependent reference
  CreateSchema(&subject);
  CreateSchema(&oracle);

  // v1 and v2 share the delta-join prefix (one group under kShared);
  // both run deferred in the subject. v3 is the same shape but stays
  // eager, so kSnapshot reads exercise the opportunistic rebuild.
  for (Database* db : {&subject, &oracle}) {
    db->CreateMaterializedView(MakeView(*db->catalog(), "v1"));
    db->CreateMaterializedView(MakeView(*db->catalog(), "v2"));
    db->CreateMaterializedView(MakeView(*db->catalog(), "v3"));
  }
  subject.SetRefreshPolicy("v1", RefreshPolicy::kOnDemand);
  subject.SetRefreshPolicy("v2", RefreshPolicy::kOnDemand);
  if (shared) {
    // The kShared path is only exercised if the views really grouped.
    bool grouped = false;
    for (const multiview::ViewGroup& g : subject.ViewGroups()) {
      grouped |= g.members.size() >= 2;
    }
    ASSERT_TRUE(grouped) << "v1/v2/v3 should share a delta-plan group";
  }

  auto oracle_rel = [&](const std::string& view) {
    return oracle.GetView(view)->view().AsRelation();
  };
  // Contents at each view's last generation boundary, in oracle terms.
  std::map<std::string, Relation> published;
  for (const char* v : {"v1", "v2"}) published[v] = oracle_rel(v);

  Rng rng(seed);
  int64_t next_emp = 0;
  int64_t next_dept = 0;
  std::vector<int64_t> live_emps;
  auto random_statement = [&] {
    const double dice = rng.NextDouble();
    if (dice < 0.15 || next_dept == 0) {
      Row dept{Value::Int64(next_dept++), Value::String(rng.Text(3, 8))};
      ASSERT_TRUE(subject.Insert("dept", {dept}).ok());
      ASSERT_TRUE(oracle.Insert("dept", {dept}).ok());
    } else if (dice < 0.55 || live_emps.empty()) {
      // Skewed dept references: a hot dept promotes under kHeavyLight.
      std::vector<Row> rows;
      for (int i = 0; i < 3; ++i) {
        const int64_t dept =
            rng.Chance(0.7) ? 0 : rng.Uniform(0, next_dept - 1);
        rows.push_back(Row{Value::Int64(next_emp), Value::Int64(dept),
                           Value::Float64(rng.NextDouble() * 100.0)});
        live_emps.push_back(next_emp++);
      }
      ASSERT_TRUE(subject.Insert("emp", rows).ok());
      ASSERT_TRUE(oracle.Insert("emp", rows).ok());
    } else if (dice < 0.8) {
      const size_t pick =
          static_cast<size_t>(rng.Uniform(0, live_emps.size() - 1));
      const int64_t e = live_emps[pick];
      const int64_t dept = rng.Chance(0.7) ? 0 : rng.Uniform(0, next_dept - 1);
      Row updated{Value::Int64(e), Value::Int64(dept),
                  Value::Float64(rng.NextDouble() * 100.0)};
      ASSERT_TRUE(
          subject.Update("emp", {{Value::Int64(e)}}, {updated}).ok());
      ASSERT_TRUE(oracle.Update("emp", {{Value::Int64(e)}}, {updated}).ok());
    } else {
      const size_t pick =
          static_cast<size_t>(rng.Uniform(0, live_emps.size() - 1));
      const int64_t e = live_emps[pick];
      live_emps.erase(live_emps.begin() + static_cast<ptrdiff_t>(pick));
      ASSERT_TRUE(subject.Delete("emp", {{Value::Int64(e)}}).ok());
      ASSERT_TRUE(oracle.Delete("emp", {{Value::Int64(e)}}).ok());
    }
  };

  for (int op = 0; op < 50; ++op) {
    random_statement();
    if (HasFatalFailure()) return;

    // Between boundaries: a deferred view's snapshot is exactly the
    // last published generation — never a partially-applied batch.
    for (const char* v : {"v1", "v2"}) {
      ViewSnapshot snap = subject.AcquireSnapshot(v);
      ASSERT_TRUE(snap.valid());
      ASSERT_TRUE(snap.relation().Equals(published[v]))
          << "op " << op << ": " << v
          << " snapshot diverged from its last boundary";
    }
    // The eager view's kSnapshot read catches up opportunistically
    // (nothing else holds the mutex here), creating a boundary that
    // must equal the oracle's current contents.
    ViewSnapshot eager = subject.AcquireSnapshot("v3");
    ASSERT_TRUE(eager.valid());
    ASSERT_TRUE(eager.relation().Equals(oracle_rel("v3")))
        << "op " << op << ": eager snapshot diverged from single-threaded";

    if (op % 5 == 4) {
      // Explicit refresh boundary for v1 — and, under kShared, for the
      // whole group: every member must get its generation published.
      subject.Refresh("v1");
      published["v1"] = oracle_rel("v1");
      if (shared) published["v2"] = oracle_rel("v2");
      for (const char* v : {"v1", "v2"}) {
        ViewSnapshot snap = subject.AcquireSnapshot(v);
        ASSERT_TRUE(snap.relation().Equals(published[v]))
            << "op " << op << ": " << v << " wrong right after refresh";
      }
    }
    if (op % 10 == 9) {
      // kFresh read boundary for v2 (drains v2 — and its group).
      ViewSnapshot fresh = subject.ReadView("v2");
      ASSERT_TRUE(fresh.relation().Equals(oracle_rel("v2")))
          << "op " << op << ": kFresh read diverged from single-threaded";
      published["v2"] = oracle_rel("v2");
      if (shared) published["v1"] = oracle_rel("v1");
    }
  }

  // Final boundary: everything drained, all three equal the oracle.
  for (const char* v : {"v1", "v2", "v3"}) {
    ViewSnapshot fin = subject.ReadView(v);
    ASSERT_TRUE(fin.relation().Equals(oracle.GetView(v)->view().AsRelation()))
        << v << " final contents diverged";
    ASSERT_EQ(subject.PendingRows(v), 0);
    ASSERT_EQ(subject.HeavyPendingRows(v), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Quadrants, SnapshotEquivalenceTest,
    ::testing::Combine(::testing::Values(0, 1),  // kUniform / kHeavyLight
                       ::testing::Values(0, 1),  // kIndependent / kShared
                       ::testing::Values(7u, 1234u)));

}  // namespace
}  // namespace ojv
