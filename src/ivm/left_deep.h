#ifndef OJV_IVM_LEFT_DEEP_H_
#define OJV_IVM_LEFT_DEEP_H_

#include "algebra/rel_expr.h"

namespace ojv {

/// Converts a ΔV^D expression (output of BuildPrimaryDeltaExpr: leftmost
/// path of selects / inner joins / left outer joins over a delta leaf)
/// into a left-deep tree: the right operand of every join is a single
/// base-table scan, possibly under a selection (paper §4.1).
///
/// The rewrite repeatedly pulls the top operator of a complex right
/// operand onto the main path using the paper's associativity rules,
/// assuming — as the paper does — that all predicates are binary and
/// null-rejecting:
///
///   main op  right top        result
///   -------  ---------        ------------------------------------------
///   lo       σp2(e2) complex  rule 1: λ + δ fix-up after pulling σ
///   lo       e2 fo e3         rule 2: (e1 lo e2) lo e3
///   lo       e2 lo e3         rule 3: (e1 lo e2) lo e3
///   lo       e2 ro e3         rule 4: λ^{e2,e3}_{¬p23} + δ over lo-lo
///   lo       e2 join e3       rule 5: λ^{e2,e3}_{¬p23} + δ over lo-lo
///   join     σp2(e2) complex  hoist the selection above the join
///   join     e2 fo e3         (e1 join e2) lo e3
///   join     e2 lo e3         (e1 join e2) lo e3
///   join     e2 ro e3         (e1 join e2) join e3
///   join     e2 join e3       (e1 join e2) join e3
///
/// The λ (null-if) operator nulls the pulled tables on rows where the
/// pulled predicate is not true; the fix-up δ here is duplicate
/// elimination followed by removal of subsumed tuples, which restores
/// minimum-union semantics (a row null-extended by λ may coexist with a
/// surviving match for the same left tuple, and multiple failing matches
/// produce identical rows).
RelExprPtr ToLeftDeep(const RelExprPtr& delta_expr);

/// True if every join in the tree has a scan / delta-scan / select-over-
/// scan right operand (i.e. the tree is left-deep).
bool IsLeftDeep(const RelExprPtr& expr);

}  // namespace ojv

#endif  // OJV_IVM_LEFT_DEEP_H_
