file(REMOVE_RECURSE
  "CMakeFiles/ojv_matching.dir/view_matching.cc.o"
  "CMakeFiles/ojv_matching.dir/view_matching.cc.o.d"
  "libojv_matching.a"
  "libojv_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ojv_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
