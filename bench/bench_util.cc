#include "bench_util.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace ojv {
namespace bench {

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--sf=", 5) == 0) {
      options.scale_factor = std::atof(arg + 5);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--batches=", 10) == 0) {
      options.batches.clear();
      const char* p = arg + 10;
      while (*p != '\0') {
        options.batches.push_back(std::atoll(p));
        const char* comma = std::strchr(p, ',');
        if (comma == nullptr) break;
        p = comma + 1;
      }
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      options.threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      options.json_path = arg + 7;
    } else if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      options.json_path = argv[++i];
    }
  }
  return options;
}

TpchInstance::TpchInstance(const BenchOptions& options) {
  tpch::CreateSchema(&catalog);
  tpch::DbgenOptions dbgen_options;
  dbgen_options.scale_factor = options.scale_factor;
  dbgen_options.seed = options.seed;
  dbgen = std::make_unique<tpch::Dbgen>(dbgen_options);
  dbgen->Populate(&catalog);
  refresh = std::make_unique<tpch::RefreshStream>(&catalog, dbgen.get(),
                                                  options.seed + 1);
}

double TimeMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const std::string& c : columns) {
    std::printf("%16s", c.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%16s", "---------------");
  }
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& c : cells) {
    std::printf("%16s", c.c_str());
  }
  std::printf("\n");
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f ms", ms);
  return buf;
}

std::string FormatCount(int64_t n) { return std::to_string(n); }

JsonReport::JsonReport(std::string benchmark, const BenchOptions& options)
    : benchmark_(std::move(benchmark)), options_(options) {}

void JsonReport::BeginRow() { rows_.emplace_back(); }

void JsonReport::Num(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  std::string& row = rows_.back();
  if (!row.empty()) row += ", ";
  row += "\"" + key + "\": " + buf;
}

void JsonReport::Count(const std::string& key, int64_t value) {
  std::string& row = rows_.back();
  if (!row.empty()) row += ", ";
  row += "\"" + key + "\": " + std::to_string(value);
}

void JsonReport::Str(const std::string& key, const std::string& value) {
  std::string& row = rows_.back();
  if (!row.empty()) row += ", ";
  row += "\"" + key + "\": \"" + value + "\"";
}

bool JsonReport::Write() const {
  if (options_.json_path.empty()) return false;
  std::FILE* f = std::fopen(options_.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", options_.json_path.c_str());
    std::abort();
  }
  std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n", benchmark_.c_str());
  std::fprintf(f, "  \"scale_factor\": %.6g,\n", options_.scale_factor);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(options_.seed));
  std::fprintf(f, "  \"threads\": %d,\n", options_.threads);
  std::fprintf(f, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows_.size(); ++i) {
    std::fprintf(f, "    {%s}%s\n", rows_[i].c_str(),
                 i + 1 < rows_.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", options_.json_path.c_str());
  return true;
}

}  // namespace bench
}  // namespace ojv
