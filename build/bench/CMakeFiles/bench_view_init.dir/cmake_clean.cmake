file(REMOVE_RECURSE
  "CMakeFiles/bench_view_init.dir/bench_view_init.cc.o"
  "CMakeFiles/bench_view_init.dir/bench_view_init.cc.o.d"
  "bench_view_init"
  "bench_view_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_view_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
