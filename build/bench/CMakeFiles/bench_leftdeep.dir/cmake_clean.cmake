file(REMOVE_RECURSE
  "CMakeFiles/bench_leftdeep.dir/bench_leftdeep.cc.o"
  "CMakeFiles/bench_leftdeep.dir/bench_leftdeep.cc.o.d"
  "bench_leftdeep"
  "bench_leftdeep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leftdeep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
