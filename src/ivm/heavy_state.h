#ifndef OJV_IVM_HEAVY_STATE_H_
#define OJV_IVM_HEAVY_STATE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "deferred/consolidate.h"
#include "exec/partition_split.h"
#include "ivm/view_def.h"
#include "opt/cardinality.h"
#include "opt/heavy_hitters.h"

namespace ojv {

/// Per-heavy-key lazy delta state for skew-adaptive maintenance
/// (DESIGN.md §16): delta rows touching heavy join keys are diverted
/// here instead of running the eager delta pipeline, netted per primary
/// key through the same fold as deferred batch consolidation
/// (deferred::NetFold), and folded into the view at drain points. A key
/// touched a thousand times between drains replays as one consolidated
/// statement whose join fanout is paid once.
///
/// Invariants the maintainer relies on:
///   - pending state covers exactly one base table (an op on any other
///     table forces a drain first — cross-table interleavings could
///     otherwise produce duplicate view rows at drain);
///   - every join-key value with pending state is "pinned": later rows
///     carrying it keep diverting until the drain clears the pins, even
///     if the sketch demotes the key meanwhile (an eager op on a pinned
///     key would touch view rows the lazy state still owes).
class HeavyState {
 public:
  explicit HeavyState(int64_t max_pending_rows);

  bool empty() const { return fold_ == nullptr || fold_->empty(); }
  /// Raw diverted rows since the last drain (the netting may fold them
  /// into fewer at drain time).
  int64_t pending_rows() const { return pending_rows_; }
  bool AtCapacity() const { return pending_rows_ >= max_pending_rows_; }
  /// Table the pending state belongs to; empty when nothing pends.
  const std::string& table() const { return table_; }

  void DivertInsert(const std::string& table,
                    const std::vector<int>& key_positions, const Row& row);
  void DivertDelete(const std::string& table,
                    const std::vector<int>& key_positions, const Row& row);

  void Pin(int column_pos, const Value& v);
  bool IsPinned(int column_pos, const Value& v) const;

  struct DrainBatch {
    std::string table;
    std::vector<Row> deletes;  // net pre-images, key order
    std::vector<Row> inserts;  // net post-images, key order
    int64_t update_pairs = 0;
    int64_t raw_entries = 0;
  };

  /// Extracts the consolidated pending batch and clears state and pins.
  DrainBatch Take();

 private:
  void EnsureTable(const std::string& table,
                   const std::vector<int>& key_positions);

  int64_t max_pending_rows_;
  int64_t pending_rows_ = 0;
  std::string table_;
  std::unique_ptr<deferred::NetFold> fold_;
  std::unordered_map<int, std::unordered_set<Value, ValueHash>> pinned_;
};

/// Glue shared by ViewMaintainer and AggViewMaintainer under
/// MaintenanceOptions::skew = kHeavyLight: owns the heavy-hitter
/// catalog, the lazy state, and the per-table join-edge map extracted
/// from the view definition; classifies and splits delta batches. The
/// owner installs a drain hook that replays the taken batch through its
/// own maintenance entry points (the controller cannot: drain policy and
/// apply paths are the owner's).
class HeavyLightController {
 public:
  HeavyLightController(const Catalog* catalog, const ViewDef& view,
                       opt::HeavyHitterConfig config);

  /// Hook invoked when a split discovers it must fold pending state in
  /// first (key demotion with pending rows, or the capacity cap).
  void set_drain_hook(std::function<void()> hook) {
    drain_hook_ = std::move(hook);
  }

  opt::HeavyHitterCatalog* hitters() { return &hitters_; }

  /// True when `table` participates in at least one cross-table equality
  /// join — the only case where heaviness is defined (a table with no
  /// join edges has fanout 1 per delta row).
  bool HasEdges(const std::string& table) const {
    return edges_.count(table) > 0;
  }

  bool HasPending() const { return !state_.empty(); }
  int64_t pending_rows() const { return state_.pending_rows(); }
  const std::string& pending_table() const { return state_.table(); }

  /// True when an op on `table` must drain pending state before running.
  /// `can_divert` is false for constraint-free / shared-plan ops, which
  /// always run eagerly and therefore may not overlap pending state.
  bool NeedsDrainBefore(const std::string& table, bool can_divert) const {
    return HasPending() && (!can_divert || state_.table() != table);
  }

  /// Feed passthrough (same contract as opt::StatsCatalog).
  void OnInsert(const std::string& table, const std::vector<Row>& rows) {
    hitters_.OnInsert(table, rows);
  }
  void OnDelete(const std::string& table, const std::vector<Row>& rows) {
    hitters_.OnDelete(table, rows);
  }
  void OnUpdate(const std::string& table, const std::vector<Row>& old_rows,
                const std::vector<Row>& new_rows) {
    hitters_.OnUpdate(table, old_rows, new_rows);
  }

  /// Splits `rows`, diverting the heavy partition into the lazy state;
  /// returns the light partition. May invoke the drain hook. Call only
  /// when HasEdges(table).
  std::vector<Row> SplitBatch(const std::string& table,
                              const std::vector<Row>& rows, bool is_insert);

  /// UPDATE-pair variant: heavy pairs (either half heavy) divert as
  /// delete(old)+insert(new); the light pairs are returned aligned.
  void SplitPairs(const std::string& table, const std::vector<Row>& old_rows,
                  const std::vector<Row>& new_rows,
                  std::vector<Row>* light_old, std::vector<Row>* light_new);

  HeavyState::DrainBatch Take() { return state_.Take(); }

  /// Partitioned-cardinality exclusions for planning ΔT's light batch:
  /// per counterpart table, the promoted keys' row mass and count — the
  /// heavy partition the light rows will never join.
  std::unordered_map<std::string, opt::PartitionExclusion> Exclusions(
      const std::string& delta_table);

 private:
  struct JoinEdge {
    int position = -1;          // column ordinal in this table's schema
    std::string other_table;    // counterpart side of the equality
    std::string other_column;
  };

  /// Classification of one value of `table` at `edge`: pinned values
  /// stay heavy until drain; otherwise the counterpart column's tracker
  /// decides with hysteresis. Sets *demoted when the probe demoted the
  /// key just now.
  bool ProbeHeavy(const JoinEdge& edge, int pos, const Value& v,
                  bool* demoted);

  /// Pins every non-null probed value of a diverted row so the key keeps
  /// diverting until the next drain clears the pins.
  void PinRow(const std::string& table, const Row& row);

  const Catalog* catalog_;
  opt::HeavyHitterCatalog hitters_;
  HeavyState state_;
  std::function<void()> drain_hook_;
  std::unordered_map<std::string, std::vector<JoinEdge>> edges_;
  std::unordered_map<std::string, std::vector<int>> probe_positions_;
};

}  // namespace ojv

#endif  // OJV_IVM_HEAVY_STATE_H_
