// Equivalence of every physical execution strategy over the TPC-H
// views: serial hash joins (the reference), sort-merge joins, and the
// morsel-parallel operators at 1 / 2 / 8 threads must produce
// Relation::Equals view contents for the full maintenance pipeline —
// initialization, primary delta, secondary delta (both the §5.2
// view-based and §5.3 base-table strategies), and the deferred
// consolidated-batch replay through the Database facade.
//
// The parallel variants force parallel_min_rows down to 1 with tiny
// morsels so every operator takes the parallel path even on test-sized
// inputs; thread counts beyond the host's cores are deliberate (the
// scheduling degenerates but the results may not).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ivm/database.h"
#include "ivm/maintainer.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace {

struct Variant {
  std::string name;
  MaintenanceOptions options;
};

std::vector<Variant> Variants() {
  std::vector<Variant> variants;
  variants.push_back({"serial-hash", MaintenanceOptions()});

  Variant sort_merge{"sort-merge", MaintenanceOptions()};
  sort_merge.options.join_algorithm = Evaluator::JoinAlgorithm::kSortMerge;
  variants.push_back(sort_merge);

  for (int threads : {1, 2, 8}) {
    Variant parallel{"parallel-" + std::to_string(threads),
                     MaintenanceOptions()};
    parallel.options.exec.num_threads = threads;
    parallel.options.exec.parallel_min_rows = 1;
    parallel.options.exec.morsel_rows = 64;
    variants.push_back(parallel);
  }

  // §5.3 secondary deltas evaluate full expressions over base tables —
  // the heaviest evaluator use in the pipeline — so cover that strategy
  // under the parallel executor too.
  Variant from_base{"parallel-4-from-base", MaintenanceOptions()};
  from_base.options.exec.num_threads = 4;
  from_base.options.exec.parallel_min_rows = 1;
  from_base.options.exec.morsel_rows = 64;
  from_base.options.secondary_strategy = SecondaryStrategy::kFromBaseTables;
  variants.push_back(from_base);

  return variants;
}

class ParallelExecutorFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::CreateSchema(&catalog_);
    tpch::DbgenOptions options;
    options.scale_factor = 0.002;
    dbgen_ = std::make_unique<tpch::Dbgen>(options);
    dbgen_->Populate(&catalog_);
    refresh_ = std::make_unique<tpch::RefreshStream>(&catalog_, dbgen_.get(),
                                                     /*seed=*/20260806);
  }

  std::vector<Row> NewRowsFor(const std::string& table, int64_t n) {
    if (table == "lineitem") return refresh_->NewLineitems(n);
    if (table == "orders") return refresh_->NewOrders(n);
    if (table == "part") return refresh_->NewParts(n);
    if (table == "customer") return refresh_->NewCustomers(n);
    return {};
  }

  // Builds one maintainer per variant, initializes all of them, and
  // runs randomized insert/delete rounds against every base table of
  // the view, comparing each variant's contents to the serial-hash
  // reference after every operation.
  void CheckView(const ViewDef& view) {
    std::vector<Variant> variants = Variants();
    std::vector<std::unique_ptr<ViewMaintainer>> maintainers;
    for (const Variant& variant : variants) {
      maintainers.push_back(std::make_unique<ViewMaintainer>(
          &catalog_, view, variant.options));
      maintainers.back()->InitializeView();
    }
    Relation reference = maintainers[0]->view().AsRelation();
    for (size_t i = 1; i < maintainers.size(); ++i) {
      EXPECT_TRUE(reference.Equals(maintainers[i]->view().AsRelation()))
          << view.name() << " init diverges under " << variants[i].name;
    }

    auto compare_all = [&](const std::string& when) {
      Relation expected = maintainers[0]->view().AsRelation();
      for (size_t i = 1; i < maintainers.size(); ++i) {
        EXPECT_TRUE(expected.Equals(maintainers[i]->view().AsRelation()))
            << view.name() << " diverges under " << variants[i].name
            << " after " << when;
      }
    };

    for (const std::string& table : view.tables()) {
      std::vector<Row> rows = NewRowsFor(table, 200);
      if (rows.empty()) continue;
      Table* base = catalog_.GetTable(table);
      std::vector<Row> inserted = ApplyBaseInsert(base, rows);
      for (auto& maintainer : maintainers) {
        maintainer->OnInsert(table, inserted);
      }
      compare_all("insert into " + table);

      // Delete the same rows again: exercises the deletion pipeline
      // (new orphans via the secondary delta) and restores the state
      // for the next table's round.
      std::vector<Row> keys;
      keys.reserve(inserted.size());
      for (const Row& row : inserted) {
        Row key;
        for (int p : base->key_positions()) {
          key.push_back(row[static_cast<size_t>(p)]);
        }
        keys.push_back(std::move(key));
      }
      std::vector<Row> deleted = ApplyBaseDelete(base, keys);
      for (auto& maintainer : maintainers) {
        maintainer->OnDelete(table, deleted);
      }
      compare_all("delete from " + table);
    }
  }

  Catalog catalog_;
  std::unique_ptr<tpch::Dbgen> dbgen_;
  std::unique_ptr<tpch::RefreshStream> refresh_;
};

TEST_F(ParallelExecutorFixture, OjViewAllStrategiesAgree) {
  CheckView(tpch::MakeOjView(catalog_));
}

TEST_F(ParallelExecutorFixture, V2AllStrategiesAgree) {
  CheckView(tpch::MakeV2(catalog_));
}

TEST_F(ParallelExecutorFixture, V3AllStrategiesAgree) {
  CheckView(tpch::MakeV3(catalog_));
}

// Deferred consolidated replay: a deferred database whose refreshes run
// with refresh_threads=8 must converge to the same view contents as an
// immediate serial database fed the identical statement stream —
// including churn rows that consolidate away entirely.
TEST(ParallelExecutorDeferredTest, ConsolidatedReplayMatchesImmediate) {
  tpch::DbgenOptions gen_options;
  gen_options.scale_factor = 0.002;
  tpch::Dbgen dbgen(gen_options);

  Database immediate;
  tpch::CreateSchema(immediate.catalog());
  dbgen.Populate(immediate.catalog());
  immediate.CreateMaterializedView(tpch::MakeV3(*immediate.catalog()));

  Database deferred;
  tpch::CreateSchema(deferred.catalog());
  dbgen.Populate(deferred.catalog());
  MaintenanceOptions parallel_options;
  parallel_options.exec.parallel_min_rows = 1;
  parallel_options.exec.morsel_rows = 64;
  deferred.CreateMaterializedView(tpch::MakeV3(*deferred.catalog()),
                                  &parallel_options);
  deferred::ThresholdConfig config;
  config.refresh_threads = 8;
  deferred.SetRefreshPolicy("v3", deferred::RefreshPolicy::kOnDemand, config);

  tpch::RefreshStream stream(immediate.catalog(), &dbgen, /*seed=*/7);
  for (int round = 0; round < 3; ++round) {
    std::vector<Row> rows = stream.NewLineitems(150);
    for (const Row& row : rows) {
      immediate.Insert("lineitem", {row});
      deferred.Insert("lineitem", {row});
    }
    // Churn: delete a third of them again before the refresh, so the
    // consolidation cancels those entries outright.
    std::vector<Row> churn_keys;
    for (size_t i = 0; i < rows.size(); i += 3) {
      churn_keys.push_back(Row{rows[i][0], rows[i][3]});
    }
    immediate.Delete("lineitem", churn_keys);
    deferred.Delete("lineitem", churn_keys);
    deferred.Refresh("v3");

    Relation expected = immediate.ReadView("v3")->AsRelation();
    Relation actual = deferred.ReadView("v3")->AsRelation();
    EXPECT_TRUE(expected.Equals(actual))
        << "deferred parallel replay diverges in round " << round;
  }
}

}  // namespace
}  // namespace ojv
