// Cost of the always-on telemetry layer on the V3 maintenance path.
//
// The same batched lineitem insert (one statement per batch, so the
// evaluator runs thousands of per-node evaluations) is timed in three
// instrumentation modes:
//
//   baseline    flight recorder off, no TraceContext — the bare
//               maintenance pipeline
//   recorder    flight recorder on at sample_every=1 (the always-on
//               default): every span pays the sampling check plus four
//               relaxed stores into the per-thread ring
//   ours        recorder on + a TraceContext attached + one full
//               exporter scrape (Prometheus text + JSON snapshot
//               serialized to memory) per batch — everything the live
//               telemetry endpoint costs while being polled
//
// Each mode runs kReps times per batch size and reports the minimum,
// which is the right statistic for an overhead question on a noisy
// 1-core container. `ours_ms` is the gated column (check.sh bench-gate,
// sections obs_overhead / obs_overhead_off in BENCH_pipeline.json); the
// overhead percentages are what DESIGN.md §15 quotes. Under
// -DOJV_OBS=OFF all three modes compile to the same uninstrumented
// loop, and the table pins that: the OFF build's three columns must
// agree to within timer noise.

#include <algorithm>
#include <sstream>

#include "bench_util.h"
#include "ivm/database.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tpch/views.h"

namespace ojv {
namespace bench {
namespace {

constexpr int kReps = 3;

std::vector<Row> LineitemKeys(const std::vector<Row>& rows) {
  std::vector<Row> keys;
  keys.reserve(rows.size());
  for (const Row& row : rows) {
    keys.push_back(Row{row[0], row[3]});  // (l_orderkey, l_linenumber)
  }
  return keys;
}

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("TPC-H SF=%.3f, obs_enabled=%s, %d reps/mode (min reported)\n",
              options.scale_factor, obs::kEnabled ? "true" : "false", kReps);

  Database db;
  tpch::CreateSchema(db.catalog());
  tpch::DbgenOptions gen_options;
  gen_options.scale_factor = options.scale_factor;
  gen_options.seed = options.seed;
  tpch::Dbgen dbgen(gen_options);
  dbgen.Populate(db.catalog());
  db.CreateMaterializedView(tpch::MakeV3(*db.catalog()));
  tpch::RefreshStream stream(db.catalog(), &dbgen, options.seed);

  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  const bool recorder_was_enabled = recorder.enabled();

  JsonReport report("obs_overhead", options);
  PrintHeader("Telemetry overhead on batched V3 maintenance",
              {"Rows", "Baseline", "Recorder", "Ours", "Rec%", "Ours%"});
  for (int64_t batch : options.batches) {
    // One insert+restore cycle, maintenance timed; `trace` non-null
    // attaches a TraceContext, `scrape` additionally serializes one
    // exporter snapshot inside the timed region.
    auto measure = [&](bool trace, bool scrape) {
      double best = 1e18;
      for (int rep = 0; rep < kReps; ++rep) {
        std::vector<Row> rows = stream.NewLineitems(batch);
        obs::TraceContext ctx;
        if (trace) db.set_trace(&ctx);
        double ms = TimeMs([&] {
          db.Insert("lineitem", rows);
          if (scrape) {
            std::ostringstream prom;
            obs::WritePrometheus(obs::Registry::Global(), prom);
            std::ostringstream json;
            obs::WriteSnapshotJson(obs::Registry::Global(), json);
          }
        });
        if (trace) db.set_trace(nullptr);
        best = std::min(best, ms);
        db.Delete("lineitem", LineitemKeys(rows));
      }
      return best;
    };

    recorder.SetEnabled(false);
    double baseline_ms = measure(/*trace=*/false, /*scrape=*/false);
    recorder.SetEnabled(true);
    recorder.SetSampleEvery(1);
    double recorder_ms = measure(/*trace=*/false, /*scrape=*/false);
    double ours_ms = measure(/*trace=*/true, /*scrape=*/true);

    auto pct = [&](double ms) {
      return baseline_ms > 0 ? (ms / baseline_ms - 1.0) * 100.0 : 0.0;
    };
    char rec_pct[32], ours_pct[32];
    std::snprintf(rec_pct, sizeof(rec_pct), "%+.1f%%", pct(recorder_ms));
    std::snprintf(ours_pct, sizeof(ours_pct), "%+.1f%%", pct(ours_ms));
    PrintRow({FormatCount(batch), FormatMs(baseline_ms), FormatMs(recorder_ms),
              FormatMs(ours_ms), rec_pct, ours_pct});
    report.BeginRow();
    report.Count("batch_rows", batch);
    report.Num("baseline_ms", baseline_ms);
    report.Num("recorder_ms", recorder_ms);
    report.Num("ours_ms", ours_ms);
    report.Num("recorder_overhead_pct", pct(recorder_ms));
    report.Num("ours_overhead_pct", pct(ours_ms));
  }

  recorder.SetEnabled(recorder_was_enabled);
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
