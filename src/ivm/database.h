#ifndef OJV_IVM_DATABASE_H_
#define OJV_IVM_DATABASE_H_

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "deferred/admission.h"
#include "deferred/delta_log.h"
#include "deferred/scheduler.h"
#include "ivm/aggregate_view.h"
#include "ivm/maintainer.h"
#include "ivm/view_def.h"
#include "ivm/view_snapshot.h"
#include "multiview/shared_plan.h"
#include "multiview/view_group.h"

namespace ojv {

/// Statement-level facade over a catalog and its materialized views —
/// the moral equivalent of the paper's trigger + stored-procedure setup
/// on SQL Server: every insert/delete/update statement checks foreign
/// keys and applies the change to the base table. View maintenance is
/// governed per view by a refresh policy (src/deferred/):
///
///   - kImmediate (default): maintained inside the statement, exactly
///     the paper's setup and the seed behavior;
///   - kOnDemand: statements stage their changes in an append-only delta
///     log; the view catches up at read time or on an explicit Refresh;
///   - kThreshold: like kOnDemand, but the view auto-refreshes when its
///     pending rows or staleness exceed configured limits — inline after
///     the offending statement or, with StartBackgroundRefresh, on a
///     worker thread.
///
/// Deferred refresh consolidates the pending batch to its net effect
/// (insert+delete of a key cancels; delete+reinsert folds to an update
/// pair) before invoking the incremental maintainers, so the ΔT the
/// paper's left-deep pipeline (§4) sees is minimal.
///
/// Thread-safety: all statement, refresh, and read entry points lock one
/// recursive mutex, which is what the background worker synchronizes on.
/// Raw pointers obtained from GetView/catalog() are not protected.
class Database {
 public:
  explicit Database(MaintenanceOptions default_options = MaintenanceOptions())
      : default_options_(default_options) {}
  ~Database() { StopBackgroundRefresh(); }

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Attaches a trace context (null detaches) to every statement entry
  /// point and to all current and future views: db.* statement spans,
  /// deferred.refresh spans, and the nested ivm.*/exec.* spans of the
  /// maintainers all land in `trace`.
  void set_trace(obs::TraceContext* trace);
  obs::TraceContext* trace() const { return default_options_.trace; }

  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }

  /// Creates and materializes a view; returns its maintainer. The view
  /// is maintained by every subsequent statement.
  ViewMaintainer* CreateMaterializedView(
      ViewDef view, const MaintenanceOptions* options = nullptr);

  /// Creates and materializes an aggregation view.
  AggViewMaintainer* CreateAggregateView(
      ViewDef base, std::vector<ColumnRef> group_by,
      std::vector<AggregateSpec> aggregates,
      const MaintenanceOptions* options = nullptr);

  ViewMaintainer* GetView(const std::string& name);
  AggViewMaintainer* GetAggregateView(const std::string& name);

  /// Drops a registered view. Returns false if unknown.
  bool DropView(const std::string& name);

  /// Outcome of one statement.
  struct StatementResult {
    int64_t rows_affected = 0;        // base-table rows
    int64_t rows_rejected = 0;        // duplicates / missing keys / FK
    double maintenance_micros = 0;    // summed over all views
    /// Per-view maintenance cost of this statement (deferred views show
    /// up when their refresh runs inline, e.g. a threshold trip). Each
    /// entry accumulates MaintenanceStats::total_micros — the exact
    /// number the maintainer also records as the duration of its
    /// ivm.maintain root span, so this legacy figure and the trace can
    /// never disagree.
    std::map<std::string, double> view_micros;
    std::string error;                // non-empty => statement rejected
    bool ok() const { return error.empty(); }
  };

  /// Inserts rows, enforcing declared foreign keys (rows referencing
  /// missing parents are rejected row-by-row), then maintains all views.
  StatementResult Insert(const std::string& table,
                         const std::vector<Row>& rows);

  /// Deletes rows by key. Rejects the whole statement if a deletion
  /// would break a (non-cascading) foreign key; with cascading
  /// constraints, referencing rows are deleted too — and their views
  /// maintained — before the parent rows.
  StatementResult Delete(const std::string& table,
                         const std::vector<Row>& keys);

  /// Updates rows by key (delete+insert pair, §6 caveat 1 honored by
  /// the maintainers). Key columns must be unchanged.
  StatementResult Update(const std::string& table,
                         const std::vector<Row>& keys,
                         const std::vector<Row>& new_rows);

  /// Registered row-level views, for planners (e.g. view matching) that
  /// want to scan candidates.
  std::vector<ViewMaintainer*> Views();

  // --- deferred maintenance (src/deferred/) ---

  /// Sets a view's refresh policy. Switching away from kImmediate
  /// registers the view on the delta log (it is up to date at that
  /// point); switching back drains it first. `config`'s thresholds only
  /// matter for kThreshold; config.refresh_threads applies to the
  /// consolidated replays of every deferred policy.
  void SetRefreshPolicy(
      const std::string& view, deferred::RefreshPolicy policy,
      deferred::ThresholdConfig config = deferred::ThresholdConfig());
  deferred::RefreshPolicy GetRefreshPolicy(const std::string& view) const;

  /// Drains the view's pending deltas into its contents. A no-op (zero
  /// stats) for kImmediate views, which are never stale.
  deferred::RefreshStats Refresh(const std::string& view);

  /// Refreshes every deferred view; returns per-view stats.
  std::map<std::string, deferred::RefreshStats> RefreshAll();

  /// Pending (not yet applied) log rows relevant to the view.
  int64_t PendingRows(const std::string& view) const;

  /// Entries currently held in the staging log across all tables (drops
  /// to 0 once every deferred consumer has refreshed past them).
  int64_t DeltaLogSize() const;

  /// Cumulative refresh bookkeeping (zero-valued for unknown views).
  /// Returned by value: the scheduler's state is assembled under `mu_`
  /// and keeps changing after this call returns, so a reference or
  /// pointer into it would be the same torn-read hazard the old
  /// ReadView had.
  deferred::ViewRefreshState RefreshState(const std::string& view) const;

  /// Read access to a view's contents, returned as a refcounted
  /// ViewSnapshot pinned to one published generation (see
  /// ivm/view_snapshot.h and DESIGN.md §17). The defaults keep the
  /// historical contract — ReadOptions::Fresh() read-your-writes: a
  /// deferred view catches up first and, under skew = kHeavyLight, any
  /// pending heavy-key lazy state folds, so the read observes the full
  /// view. Pass ReadOptions::Snapshot()/Bounded() for the non-blocking
  /// serving path. An invalid snapshot (== nullptr) means unknown view
  /// (ReadAggregateRelation aborts instead, as it always has).
  ViewSnapshot ReadView(const std::string& name,
                        const ReadOptions& options = ReadOptions::Fresh());
  ViewSnapshot ReadAggregateRelation(
      const std::string& name,
      const ReadOptions& options = ReadOptions::Fresh());

  /// The serving-path read: pins a generation of any registered view
  /// (row or aggregate) under `options`, defaulting to kSnapshot —
  /// return the last published generation without waiting on statements
  /// or refreshes. kSnapshot never blocks: if the statement mutex is
  /// free it opportunistically folds pending work and publishes a
  /// fresher generation first; if maintenance holds the lock it pins
  /// what is already published. kBounded blocks only when the published
  /// generation's staleness exceeds options.max_staleness_micros.
  /// Invalid snapshot (== nullptr) for unknown views.
  ViewSnapshot AcquireSnapshot(const std::string& name,
                               const ReadOptions& options = ReadOptions());

  /// Rows diverted into the view's heavy-key lazy state and not yet
  /// folded into its contents (0 for kUniform views). Reads fold the
  /// backlog first, so only out-of-band inspection ever observes > 0.
  int64_t HeavyPendingRows(const std::string& view) const;

  /// Starts/stops the background worker that drains kThreshold views.
  /// While running, threshold trips ping the worker instead of
  /// refreshing inline.
  void StartBackgroundRefresh(std::chrono::milliseconds interval);
  void StopBackgroundRefresh();
  bool background_refresh_running() const { return refresher_.running(); }

  /// Installs (enabled=true) or removes (enabled=false, the default)
  /// the refresh admission controller. Without one, the due-view scan
  /// behaves exactly as it always has: every due kThreshold view is
  /// refreshed on the spot. With one, statement/refresh latencies and
  /// delta-log depth feed a load score; when hot, due refreshes are
  /// deferred with bounded backoff and drained staleness-debt-first in
  /// capped slices, and views past their staleness ceiling are promoted
  /// past the load gate (see deferred::AdmissionConfig).
  void SetAdmissionControl(const deferred::AdmissionConfig& config);

  /// Point-in-time admission counters (zero-valued when no controller
  /// is installed). Locked, so safe against the background worker.
  struct AdmissionStats {
    bool enabled = false;
    bool hot = false;
    double load_score = 0;
    int64_t deferred = 0;
    int64_t promoted = 0;
    int64_t hot_transitions = 0;
  };
  AdmissionStats GetAdmissionStats() const;

  /// The view's staleness percentile over the admission window, in
  /// microseconds (0 when no controller is installed or the view has
  /// not been observed). Benches compare this against the configured
  /// staleness ceiling.
  int64_t AdmissionStalenessPercentile(const std::string& view,
                                       double p) const;

  // --- multi-view maintenance (src/multiview/) ---

  /// Switches between independent per-view refresh (the default, the
  /// paper's behavior) and grouped refresh with shared delta-plan
  /// prefixes. Under kShared, refreshing any member of a view group
  /// drains the whole group: cohorts of members with equal delta-log
  /// high-water marks replay the consolidated batch together, the
  /// group's common plan prefix is evaluated once per (table, batch),
  /// and per-view suffixes fan out from the cached prefix relation.
  /// View contents are identical in both modes.
  void SetMultiviewMode(MultiviewMode mode);
  MultiviewMode multiview_mode() const;

  /// The current view groups (views clustered by ΔT source table and
  /// longest common delta-join prefix). Groups form as views are
  /// created regardless of mode; they only drive refresh under kShared.
  std::vector<multiview::ViewGroup> ViewGroups() const;

  // --- multi-statement transactions (§6 caveat 3) ---
  //
  // Inside a transaction, foreign-key checking is deferred: statements
  // skip per-row enforcement and view maintenance runs on the
  // constraint-free plan sets (a deferrable constraint may be violated
  // between statements, so the FK optimizations are off). Commit()
  // validates every declared constraint; a violation rolls the whole
  // transaction back — base tables and views — via inverse statements.
  // Deferred views are drained at BeginTransaction and maintained
  // eagerly until the transaction ends, so the undo log's inverse
  // statements always see up-to-date views.

  /// Starts a transaction. Returns false if one is already open.
  bool BeginTransaction();

  /// Validates deferred constraints and finishes the transaction. On
  /// violation the transaction is rolled back and the result carries
  /// the error.
  StatementResult Commit();

  /// Reverts every statement of the open transaction (inverse order).
  void Rollback();

  bool in_transaction() const { return in_transaction_; }

  /// Cumulative maintenance counters per view since creation, rendered
  /// as a table: statements observed, delta/primary/secondary row
  /// totals, and total maintenance time.
  std::string StatsReport() const;

  /// Per-view refresh-policy counters (refreshes, raw vs consolidated
  /// rows, cancelled rows, refresh time).
  std::string RefreshReport() const;

 private:
  // FK child check for inserted rows of `table`; true if row valid.
  bool RowSatisfiesForeignKeys(const std::string& table, const Row& row);
  // Referencing child rows that block / cascade a parent delete.
  std::vector<std::pair<const ForeignKey*, std::vector<Row>>>
  ReferencingRows(const std::string& table, const std::vector<Row>& keys);

  void MaintainInsert(const std::string& table, const std::vector<Row>& rows,
                      StatementResult* result);
  void MaintainDelete(const std::string& table, const std::vector<Row>& rows,
                      StatementResult* result);

  /// True when `view`'s maintenance is being staged rather than run
  /// inside the current statement.
  bool DeferredNow(const std::string& view) const {
    return !in_transaction_ && scheduler_.IsDeferred(view);
  }

  // --- skew-adaptive (heavy-light) internals ---

  /// Pre-apply heavy-state hook (see ViewMaintainer::PrepareHeavyForOp):
  /// called BEFORE a statement mutates `table`, so every eager view that
  /// references the table folds conflicting heavy-key lazy state while
  /// the base still matches the state the rows were diverted under.
  void PrepareHeavyViews(const std::string& table, bool is_update);
  /// Folds one view's heavy-key backlog into its contents (no-op when
  /// nothing pends or the view runs kUniform); stats are accumulated.
  MaintenanceStats DrainHeavyView(const std::string& name);
  /// Opportunistically folds every view's heavy-key backlog (background
  /// refresher tick, gated off while the admission controller is hot).
  void DrainHeavyBacklog();
  /// Tables referenced by the (row or aggregate) view.
  const std::set<std::string>& TablesOf(const std::string& view) const;
  /// Stages a statement's rows for the deferred views that reference
  /// `table`; no-op when none do.
  void StageDeferred(const std::string& table, deferred::DeltaOp op,
                     const std::vector<Row>& rows, bool update_pair);
  /// Threshold check after a statement: refreshes due views inline, or
  /// pings the background worker when one is running.
  void MaybeAutoRefresh(StatementResult* result);
  /// Background worker body: drains every due kThreshold view.
  void DrainDueViews();
  /// The kThreshold views past their Due() limits right now, with the
  /// signals the admission controller plans on.
  std::vector<deferred::DueView> CollectDueViews() const;
  /// Runs the admission plan over the current due set and refreshes the
  /// admitted views, attributing inline costs to `result` when non-null.
  void AdmitAndRefresh(StatementResult* result);
  /// Feeds one finished statement's wall latency to the controller.
  void ObserveStatementLatency(std::chrono::steady_clock::time_point start);

  // --- snapshot-read internals (ivm/view_snapshot.h) ---

  /// The view's generation store, or null for unknown views. Safe to
  /// call with or without `mu_` (`snapshot_mu_` orders map access).
  std::shared_ptr<GenerationStore> SnapshotStoreFor(
      const std::string& name) const;
  /// Registers a fresh store for a just-created view and publishes its
  /// initial generation. Caller holds `mu_`.
  void InstallSnapshotStore(const std::string& name);
  /// Publishes the view's current stored contents as a new generation
  /// if the published one is out of date. Caller holds `mu_` (the
  /// stored view must not move while we copy it). Pending deferred
  /// deltas (not part of the stored contents) set the new generation's
  /// staleness origin.
  void PublishSnapshotLocked(const std::string& name,
                             const std::shared_ptr<GenerationStore>& store);
  /// Shared blocking read path: refresh (unless mid-transaction or
  /// !allow_refresh), fold heavy state, publish, pin. Caller holds
  /// `mu_`.
  ViewSnapshot SnapshotReadLocked(const std::string& name,
                                  const std::shared_ptr<GenerationStore>& store,
                                  bool allow_refresh);
  /// AcquireSnapshot body once the store is known; `is_aggregate` only
  /// gates the unknown-view CHECK semantics of the callers.
  ViewSnapshot AcquireSnapshotImpl(const std::string& name,
                                   const std::shared_ptr<GenerationStore>& store,
                                   const ReadOptions& options);

  deferred::RefreshStats RefreshLocked(const std::string& view);
  StatementResult DeleteLocked(const std::string& table,
                               const std::vector<Row>& keys);

  // --- multi-view internals ---

  bool MultiviewActive() const {
    return default_options_.multiview == MultiviewMode::kShared;
  }
  /// Fingerprints a freshly created view's delta plans into the group
  /// catalog and refreshes the scheduler's group labels.
  void RegisterMultiview(const std::string& name);
  void SyncGroupLabels();
  /// Refreshes every deferred member of `group` together; returns
  /// per-member stats. One admission observation for the whole group.
  std::map<std::string, deferred::RefreshStats> RefreshGroupLocked(
      const multiview::ViewGroup& group);
  /// Replays one consolidated cohort (members with equal high-water
  /// marks) over the union of their table sets.
  void RefreshCohort(const multiview::ViewGroup& group,
                     const std::vector<std::string>& members,
                     std::map<std::string, deferred::RefreshStats>* out);
  /// Maintains every cohort member referencing `table` for one
  /// consolidated statement, evaluating the group's shared plan prefix
  /// at most once.
  void MaintainGroupTable(const multiview::ViewGroup& group,
                          const std::vector<std::string>& members,
                          const std::string& table,
                          const std::vector<Row>& rows, bool is_insert,
                          PlanPolicy policy,
                          std::map<std::string, deferred::RefreshStats>* out);
  /// Collapses due views that belong to one group into a single
  /// admission candidate (pending summed, staleness maxed, tightest
  /// member limits), so one group refresh is one admission decision and
  /// any member's staleness breach promotes the group.
  std::vector<deferred::DueView> GroupDueViews(
      std::vector<deferred::DueView> due,
      std::map<std::string, const multiview::ViewGroup*>* group_reps) const;

  PlanPolicy CurrentPolicy() const {
    return in_transaction_ ? PlanPolicy::kConstraintFree
                           : PlanPolicy::kDefault;
  }

  Catalog catalog_;
  MaintenanceOptions default_options_;
  std::map<std::string, std::unique_ptr<ViewMaintainer>> views_;
  std::map<std::string, std::unique_ptr<AggViewMaintainer>> agg_views_;

  struct ViewStats {
    int64_t statements = 0;
    int64_t delta_rows = 0;
    int64_t primary_rows = 0;
    int64_t secondary_rows = 0;
    double micros = 0;
  };
  void Accumulate(const std::string& view, const MaintenanceStats& stats);

  std::map<std::string, ViewStats> stats_;

  /// Serializes statements, refreshes, and reads against the background
  /// worker. Recursive because cascading deletes and inline threshold
  /// refreshes re-enter locked paths.
  mutable std::recursive_mutex mu_;
  /// Orders access to the `snapshots_` map only (never held while
  /// taking `mu_`; Create/Drop take it under `mu_`, readers take it
  /// alone). The stores themselves synchronize their own generation
  /// swaps — snapshot readers never need `mu_`.
  mutable std::mutex snapshot_mu_;
  std::map<std::string, std::shared_ptr<GenerationStore>> snapshots_;
  deferred::DeltaLog delta_log_;
  deferred::RefreshScheduler scheduler_;
  deferred::BackgroundRefresher refresher_;
  /// Null unless SetAdmissionControl installed an enabled config.
  std::unique_ptr<deferred::AdmissionController> admission_;
  /// Multi-view group catalog and shared-plan cache. Fingerprints are
  /// registered at view creation in every mode; the plans only execute
  /// under MultiviewMode::kShared.
  multiview::ViewGroupCatalog mv_catalog_;
  multiview::SharedPlanBuilder mv_plans_{&mv_catalog_};

  struct UndoEntry {
    enum class Kind { kDeleteInserted, kReinsertDeleted, kReverseUpdate };
    Kind kind;
    std::string table;
    std::vector<Row> rows;      // inserted rows / deleted rows / new rows
    std::vector<Row> old_rows;  // kReverseUpdate only
  };
  bool in_transaction_ = false;
  std::vector<UndoEntry> undo_log_;
};

}  // namespace ojv

#endif  // OJV_IVM_DATABASE_H_
