#include "tpch/dbgen.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "common/date.h"

namespace ojv {
namespace tpch {
namespace {

const char* kRegionNames[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                              "MIDDLE EAST"};
const char* kNationNames[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",         "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",          "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",         "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",          "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
// region of each nation, per the spec.
const int kNationRegion[] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                             4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                           "MACHINERY"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kInstruct[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                           "TAKE BACK RETURN"};
const char* kModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL",
                        "FOB"};
const char* kTypeSyllable1[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE",
                                "ECONOMY", "PROMO"};
const char* kTypeSyllable2[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                                "BRUSHED"};
const char* kTypeSyllable3[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
const char* kContainerSyllable1[] = {"SM", "LG", "MED", "JUMBO", "WRAP"};
const char* kContainerSyllable2[] = {"CASE", "BOX", "BAG", "JAR", "PKG",
                                     "PACK", "CAN", "DRUM"};
const char* kBrandMfgr[] = {"#1", "#2", "#3", "#4", "#5"};
const char* kColors[] = {"almond", "antique", "aquamarine", "azure", "beige",
                         "bisque", "black",   "blanched",   "blue",  "blush",
                         "brown",  "burlywood", "burnished", "chartreuse",
                         "chiffon", "chocolate", "coral",    "cornflower"};

int64_t StartDate() { return ParseDate("1992-01-01"); }
int64_t EndDate() { return ParseDate("1998-08-02"); }

// Spec formula for p_retailprice, applied to a key scrambled into the
// SF=1 key domain so the price *distribution* (≈ 900.00..2098.99, about
// half below 2000) is the same at every scale factor. At tiny scales the
// raw formula would put every part below 2000 and V3's filter would
// never reject anything.
double RetailPrice(int64_t partkey) {
  int64_t effective = (partkey * 7919) % 200000 + 1;
  return (90000.0 + static_cast<double>((effective / 10) % 20001) +
          100.0 * static_cast<double>(effective % 1000)) /
         100.0;
}

std::string Pick(const char* const* pool, int n, Rng* rng) {
  return pool[rng->Uniform(0, n - 1)];
}

std::string Phone(Rng* rng) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d",
                static_cast<int>(rng->Uniform(10, 34)),
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(100, 999)),
                static_cast<int>(rng->Uniform(1000, 9999)));
  return buf;
}

}  // namespace

Dbgen::Dbgen(DbgenOptions options) : options_(options) {
  const double sf = options_.scale_factor;
  OJV_CHECK(sf > 0, "scale factor must be positive");
  num_supplier_ = std::max<int64_t>(10, static_cast<int64_t>(10000 * sf));
  num_part_ = std::max<int64_t>(20, static_cast<int64_t>(200000 * sf));
  num_customer_ = std::max<int64_t>(15, static_cast<int64_t>(150000 * sf));
  num_orders_ = std::max<int64_t>(30, static_cast<int64_t>(1500000 * sf));
}

int64_t Dbgen::SparseOrderKey(int64_t i) {
  // Like dbgen: use 8 keys out of every 32, leaving gaps for refresh
  // inserts.
  int64_t group = (i - 1) / 8;
  int64_t offset = (i - 1) % 8;
  return group * 32 + offset + 1;
}

int64_t Dbgen::RandomOrderingCustomer(Rng* rng) const {
  // Customers with custkey % 3 == 0 never place orders (spec behavior:
  // one third of customers have no orders).
  int64_t key;
  do {
    key = 1 + rng->Uniform(0, num_customer_ - 1);
  } while (key % 3 == 0);
  return key;
}

Row Dbgen::MakePartRow(int64_t partkey, Rng* rng) const {
  std::string name = std::string(kColors[partkey % 18]) + " " +
                     kColors[(partkey / 18 + 7) % 18];
  int mfgr = static_cast<int>(rng->Uniform(0, 4));
  std::string type = Pick(kTypeSyllable1, 6, rng) + " " +
                     Pick(kTypeSyllable2, 5, rng) + " " +
                     Pick(kTypeSyllable3, 5, rng);
  std::string container =
      Pick(kContainerSyllable1, 5, rng) + " " + Pick(kContainerSyllable2, 8, rng);
  double retail = RetailPrice(partkey);
  return Row{Value::Int64(partkey),
             Value::String(name),
             Value::String(std::string("Manufacturer") + kBrandMfgr[mfgr]),
             Value::String(std::string("Brand") + kBrandMfgr[mfgr] +
                           std::to_string(rng->Uniform(1, 5))),
             Value::String(type),
             Value::Int64(rng->Uniform(1, 50)),
             Value::String(container),
             Value::Float64(retail),
             Value::String(rng->Text(10, 22))};
}

Row Dbgen::MakeCustomerRow(int64_t custkey, Rng* rng) const {
  char name[32];
  std::snprintf(name, sizeof(name), "Customer#%09lld",
                static_cast<long long>(custkey));
  return Row{Value::Int64(custkey),
             Value::String(name),
             Value::String(rng->Text(10, 40)),
             Value::Int64(rng->Uniform(0, 24)),
             Value::String(Phone(rng)),
             Value::Float64(static_cast<double>(rng->Uniform(-99999, 999999)) /
                            100.0),
             Value::String(Pick(kSegments, 5, rng)),
             Value::String(rng->Text(20, 60))};
}

Row Dbgen::MakeOrderRow(int64_t orderkey, int64_t custkey, Rng* rng) const {
  int64_t orderdate = rng->Uniform(StartDate(), EndDate() - 151);
  char clerk[24];
  std::snprintf(clerk, sizeof(clerk), "Clerk#%09lld",
                static_cast<long long>(rng->Uniform(
                    1, std::max<int64_t>(1, num_orders_ / 1000))));
  return Row{Value::Int64(orderkey),
             Value::Int64(custkey),
             Value::String(rng->Chance(0.5) ? "O" : "F"),
             Value::Float64(static_cast<double>(rng->Uniform(85000, 55000000)) /
                            100.0),
             Value::Date(orderdate),
             Value::String(Pick(kPriorities, 5, rng)),
             Value::String(clerk),
             Value::Int64(0),
             Value::String(rng->Text(19, 38))};
}

Row Dbgen::MakeLineitemRow(int64_t orderkey, int64_t linenumber,
                           int64_t orderdate, Rng* rng) const {
  int64_t partkey = RandomPart(rng);
  int64_t suppkey = RandomSupplier(rng);
  double quantity = static_cast<double>(rng->Uniform(1, 50));
  // Deterministic partkey-derived price, like the spec.
  double extended = quantity * RetailPrice(partkey);
  int64_t shipdate = orderdate + rng->Uniform(1, 121);
  int64_t commitdate = orderdate + rng->Uniform(30, 90);
  int64_t receiptdate = shipdate + rng->Uniform(1, 30);
  const char* returnflag =
      receiptdate <= ParseDate("1995-06-17") ? (rng->Chance(0.5) ? "R" : "A")
                                             : "N";
  const char* linestatus = shipdate > ParseDate("1995-06-17") ? "O" : "F";
  return Row{Value::Int64(orderkey),
             Value::Int64(partkey),
             Value::Int64(suppkey),
             Value::Int64(linenumber),
             Value::Float64(quantity),
             Value::Float64(extended),
             Value::Float64(static_cast<double>(rng->Uniform(0, 10)) / 100.0),
             Value::Float64(static_cast<double>(rng->Uniform(0, 8)) / 100.0),
             Value::String(returnflag),
             Value::String(linestatus),
             Value::Date(shipdate),
             Value::Date(commitdate),
             Value::Date(receiptdate),
             Value::String(Pick(kInstruct, 4, rng)),
             Value::String(Pick(kModes, 7, rng)),
             Value::String(rng->Text(10, 43))};
}

Row Dbgen::MakeSupplierRow(int64_t suppkey, Rng* rng) const {
  char name[32];
  std::snprintf(name, sizeof(name), "Supplier#%09lld",
                static_cast<long long>(suppkey));
  return Row{Value::Int64(suppkey),
             Value::String(name),
             Value::String(rng->Text(10, 40)),
             Value::Int64(rng->Uniform(0, 24)),
             Value::String(Phone(rng)),
             Value::Float64(static_cast<double>(rng->Uniform(-99999, 999999)) /
                            100.0),
             Value::String(rng->Text(25, 100))};
}

void Dbgen::Populate(Catalog* catalog) {
  Rng master(options_.seed);

  Table* region = catalog->GetTable("region");
  Rng rng = master.Fork(1);
  for (int64_t i = 0; i < 5; ++i) {
    OJV_CHECK(region->Insert(Row{Value::Int64(i), Value::String(kRegionNames[i]),
                                 Value::String(rng.Text(20, 80))}),
              "region insert");
  }

  Table* nation = catalog->GetTable("nation");
  rng = master.Fork(2);
  for (int64_t i = 0; i < 25; ++i) {
    OJV_CHECK(nation->Insert(Row{Value::Int64(i), Value::String(kNationNames[i]),
                                 Value::Int64(kNationRegion[i]),
                                 Value::String(rng.Text(20, 80))}),
              "nation insert");
  }

  Table* supplier = catalog->GetTable("supplier");
  rng = master.Fork(3);
  for (int64_t i = 1; i <= num_supplier_; ++i) {
    OJV_CHECK(supplier->Insert(MakeSupplierRow(i, &rng)), "supplier insert");
  }

  Table* part = catalog->GetTable("part");
  rng = master.Fork(4);
  for (int64_t i = 1; i <= num_part_; ++i) {
    OJV_CHECK(part->Insert(MakePartRow(i, &rng)), "part insert");
  }

  Table* partsupp = catalog->GetTable("partsupp");
  rng = master.Fork(5);
  for (int64_t i = 1; i <= num_part_; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      int64_t suppkey =
          1 + (i + j * (num_supplier_ / 4 + 1)) % num_supplier_;
      if (!partsupp->Insert(
              Row{Value::Int64(i), Value::Int64(suppkey),
                  Value::Int64(rng.Uniform(1, 9999)),
                  Value::Float64(static_cast<double>(rng.Uniform(100, 100000)) /
                                 100.0),
                  Value::String(rng.Text(20, 60))})) {
        // Rare collision of the synthetic suppkey spread; skip.
      }
    }
  }

  Table* customer = catalog->GetTable("customer");
  rng = master.Fork(6);
  for (int64_t i = 1; i <= num_customer_; ++i) {
    OJV_CHECK(customer->Insert(MakeCustomerRow(i, &rng)), "customer insert");
  }

  Table* orders = catalog->GetTable("orders");
  Table* lineitem = catalog->GetTable("lineitem");
  rng = master.Fork(7);
  for (int64_t i = 1; i <= num_orders_; ++i) {
    int64_t orderkey = SparseOrderKey(i);
    Row order = MakeOrderRow(orderkey, RandomOrderingCustomer(&rng), &rng);
    int64_t orderdate = order[4].int64();
    OJV_CHECK(orders->Insert(std::move(order)), "orders insert");
    int64_t lines = rng.Uniform(1, 7);
    for (int64_t ln = 1; ln <= lines; ++ln) {
      OJV_CHECK(lineitem->Insert(MakeLineitemRow(orderkey, ln, orderdate, &rng)),
                "lineitem insert");
    }
  }
}

}  // namespace tpch
}  // namespace ojv
