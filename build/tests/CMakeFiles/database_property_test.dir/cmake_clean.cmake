file(REMOVE_RECURSE
  "CMakeFiles/database_property_test.dir/ivm/database_property_test.cc.o"
  "CMakeFiles/database_property_test.dir/ivm/database_property_test.cc.o.d"
  "database_property_test"
  "database_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
