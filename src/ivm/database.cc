#include "ivm/database.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/check.h"
#include "deferred/consolidate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/windowed.h"
#include "opt/fingerprint.h"

namespace ojv {
namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Publishes a deferred view's live backlog pressure. Every due scan
/// calls this for every threshold view (due or not), so the gauges
/// track the backlog statement-by-statement; RecordRefresh writes the
/// same staleness gauge with the consumed batch's figure, which is the
/// identical quantity at the refresh instant.
void PublishViewPressure(const std::string& view, int64_t pending_rows,
                         double staleness_micros) {
  if constexpr (obs::kEnabled) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetGauge(obs::LabeledMetric("ojv.deferred.view.pending_rows", "view",
                                    view))
        .Set(pending_rows);
    reg.GetGauge(obs::LabeledMetric("ojv.deferred.view.staleness_micros",
                                    "view", view))
        .Set(static_cast<int64_t>(staleness_micros));
  } else {
    (void)view;
    (void)pending_rows;
    (void)staleness_micros;
  }
}

}  // namespace

void Database::set_trace(obs::TraceContext* trace) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  default_options_.trace = trace;
  for (auto& [name, view] : views_) view->set_trace(trace);
  for (auto& [name, view] : agg_views_) view->set_trace(trace);
}

ViewMaintainer* Database::CreateMaterializedView(
    ViewDef view, const MaintenanceOptions* options) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::string name = view.name();
  OJV_CHECK(views_.find(name) == views_.end() &&
                agg_views_.find(name) == agg_views_.end(),
            "duplicate view name");
  auto maintainer = std::make_unique<ViewMaintainer>(
      &catalog_, std::move(view), options != nullptr ? *options
                                                     : default_options_);
  maintainer->InitializeView();
  ViewMaintainer* raw = maintainer.get();
  views_[name] = std::move(maintainer);
  RegisterMultiview(name);
  InstallSnapshotStore(name);
  return raw;
}

AggViewMaintainer* Database::CreateAggregateView(
    ViewDef base, std::vector<ColumnRef> group_by,
    std::vector<AggregateSpec> aggregates, const MaintenanceOptions* options) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::string name = base.name();
  OJV_CHECK(views_.find(name) == views_.end() &&
                agg_views_.find(name) == agg_views_.end(),
            "duplicate view name");
  auto maintainer = std::make_unique<AggViewMaintainer>(
      &catalog_, std::move(base), std::move(group_by), std::move(aggregates),
      options != nullptr ? *options : default_options_);
  maintainer->InitializeView();
  AggViewMaintainer* raw = maintainer.get();
  agg_views_[name] = std::move(maintainer);
  RegisterMultiview(name);
  InstallSnapshotStore(name);
  return raw;
}

ViewMaintainer* Database::GetView(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = views_.find(name);
  return it == views_.end() ? nullptr : it->second.get();
}

AggViewMaintainer* Database::GetAggregateView(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto it = agg_views_.find(name);
  return it == agg_views_.end() ? nullptr : it->second.get();
}

std::vector<ViewMaintainer*> Database::Views() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::vector<ViewMaintainer*> out;
  out.reserve(views_.size());
  for (auto& [name, view] : views_) out.push_back(view.get());
  return out;
}

bool Database::DropView(const std::string& name) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (delta_log_.IsConsumer(name)) delta_log_.UnregisterConsumer(name);
  scheduler_.Forget(name);
  if (admission_ != nullptr) admission_->Forget(name);
  stats_.erase(name);
  // Evict group membership before the maintainer (and with it the plan
  // cache it owns) goes away; the catalog's version bump invalidates any
  // shared plans cached for the view's former group, so a later view
  // re-created under the same name can never be served a stale plan.
  mv_catalog_.Remove(name);
  {
    // Readers still holding a ViewSnapshot keep their pinned generation
    // (and the store) alive through their own refcounts; dropping the
    // map entry only stops new generations from being published.
    std::lock_guard<std::mutex> slock(snapshot_mu_);
    snapshots_.erase(name);
  }
  bool dropped = views_.erase(name) > 0 || agg_views_.erase(name) > 0;
  SyncGroupLabels();
  return dropped;
}

void Database::RegisterMultiview(const std::string& name) {
  // Fingerprint the view's per-table delta plans so ViewGroupCatalog can
  // cluster it with views sharing a delta-join prefix. Registration is
  // unconditional (cheap, and keeps the group labels in Report honest);
  // the kShared knob only gates whether refreshes *use* the groups.
  multiview::MemberFingerprints fps;
  const ViewMaintainer* planner = nullptr;
  if (auto it = views_.find(name); it != views_.end()) {
    planner = it->second.get();
  } else if (auto ait = agg_views_.find(name); ait != agg_views_.end()) {
    fps.is_aggregate = true;
    planner = ait->second->planning_maintainer(PlanPolicy::kDefault);
  }
  OJV_CHECK(planner != nullptr, "unknown view");
  for (const std::string& table : planner->view_def().tables()) {
    const RelExprPtr& expr = planner->delta_expr(table, PlanPolicy::kDefault);
    if (expr == nullptr) continue;  // provably empty delta
    opt::DeltaFingerprint fp = opt::FingerprintDelta(expr, table);
    if (fp.ok) fps.prints[table] = std::move(fp);
  }
  mv_catalog_.Register(name, std::move(fps));
  SyncGroupLabels();
}

void Database::SyncGroupLabels() {
  for (const auto& [name, view] : views_) {
    const multiview::ViewGroup* g = mv_catalog_.GroupOf(name);
    scheduler_.SetGroup(name, g != nullptr ? g->id : "-");
  }
  for (const auto& [name, view] : agg_views_) {
    const multiview::ViewGroup* g = mv_catalog_.GroupOf(name);
    scheduler_.SetGroup(name, g != nullptr ? g->id : "-");
  }
}

bool Database::RowSatisfiesForeignKeys(const std::string& table,
                                       const Row& row) {
  const Table* child = catalog_.GetTable(table);
  for (const ForeignKey& fk : catalog_.foreign_keys()) {
    if (fk.child_table != table) continue;
    Row parent_key;
    parent_key.reserve(fk.child_columns.size());
    bool any_null = false;
    for (const std::string& col : fk.child_columns) {
      const Value& v = row[static_cast<size_t>(child->schema().IndexOf(col))];
      if (v.is_null()) any_null = true;
      parent_key.push_back(v);
    }
    if (any_null) continue;  // NULL FK references nothing
    if (catalog_.GetTable(fk.parent_table)->FindByKey(parent_key) == nullptr) {
      return false;
    }
  }
  return true;
}

std::vector<std::pair<const ForeignKey*, std::vector<Row>>>
Database::ReferencingRows(const std::string& table,
                          const std::vector<Row>& keys) {
  std::vector<std::pair<const ForeignKey*, std::vector<Row>>> out;
  for (const ForeignKey* fk : catalog_.ForeignKeysReferencing(table)) {
    const Table* child = catalog_.GetTable(fk->child_table);
    std::vector<int> fk_positions;
    for (const std::string& col : fk->child_columns) {
      fk_positions.push_back(child->schema().IndexOf(col));
    }
    // Hash the deleted keys for the scan below.
    std::vector<Row> hits;
    child->ForEach([&](const Row& row) {
      Row ref;
      ref.reserve(fk_positions.size());
      for (int p : fk_positions) {
        const Value& v = row[static_cast<size_t>(p)];
        if (v.is_null()) return;
        ref.push_back(v);
      }
      for (const Row& key : keys) {
        if (key == ref) {
          hits.push_back(row);
          return;
        }
      }
    });
    if (!hits.empty()) out.emplace_back(fk, std::move(hits));
  }
  return out;
}

void Database::Accumulate(const std::string& view,
                          const MaintenanceStats& stats) {
  ViewStats& total = stats_[view];
  ++total.statements;
  total.delta_rows += stats.delta_rows;
  total.primary_rows += stats.primary_rows;
  total.secondary_rows += stats.secondary_rows;
  total.micros += stats.total_micros;
  // Every maintenance path funnels its stats through here, which makes
  // this the one chokepoint where the stored view's contents may have
  // moved past the published snapshot generation.
  if (auto store = SnapshotStoreFor(view); store != nullptr) {
    store->NoteContentChanged(obs::SteadyNowMicros());
  }
}

void Database::PrepareHeavyViews(const std::string& table, bool is_update) {
  const PlanPolicy policy = CurrentPolicy();
  // Pre-apply folds mutate view contents without reporting stats
  // through Accumulate, so invalidate the snapshot generation here
  // whenever a fold could have happened (pending heavy rows existed).
  auto note = [&](const std::string& name) {
    if (auto store = SnapshotStoreFor(name); store != nullptr) {
      store->NoteContentChanged(obs::SteadyNowMicros());
    }
  };
  for (auto& [name, view] : views_) {
    if (view->view_def().tables().count(table) == 0) continue;
    if (DeferredNow(name)) continue;
    const bool had_pending = view->HeavyPendingRows() > 0;
    view->PrepareHeavyForOp(table, policy, is_update);
    if (had_pending) note(name);
  }
  for (auto& [name, view] : agg_views_) {
    if (view->base_view().tables().count(table) == 0) continue;
    if (DeferredNow(name)) continue;
    const bool had_pending = view->HeavyPendingRows() > 0;
    view->PrepareHeavyForOp(table, policy, is_update);
    if (had_pending) note(name);
  }
}

MaintenanceStats Database::DrainHeavyView(const std::string& name) {
  MaintenanceStats stats;
  if (auto it = views_.find(name); it != views_.end()) {
    stats = it->second->DrainHeavyState();
  } else if (auto ait = agg_views_.find(name); ait != agg_views_.end()) {
    stats = ait->second->DrainHeavyState();
  }
  if (stats.delta_rows > 0 || stats.total_micros > 0) {
    Accumulate(name, stats);
  }
  return stats;
}

void Database::DrainHeavyBacklog() {
  for (auto& [name, view] : views_) {
    if (view->HeavyPendingRows() > 0) DrainHeavyView(name);
  }
  for (auto& [name, view] : agg_views_) {
    if (view->HeavyPendingRows() > 0) DrainHeavyView(name);
  }
}

std::string Database::StatsReport() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::ostringstream out;
  out << "view                stmts      delta    primary  secondary"
      << "    total-ms" << '\n';
  for (const auto& [name, s] : stats_) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-18s %6lld %10lld %10lld %10lld %11.2f\n",
                  name.c_str(), static_cast<long long>(s.statements),
                  static_cast<long long>(s.delta_rows),
                  static_cast<long long>(s.primary_rows),
                  static_cast<long long>(s.secondary_rows),
                  s.micros / 1000.0);
    out << line;
  }
  return out.str();
}

std::string Database::RefreshReport() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return scheduler_.Report();
}

// --- deferred maintenance -------------------------------------------------

const std::set<std::string>& Database::TablesOf(const std::string& view) const {
  auto it = views_.find(view);
  if (it != views_.end()) return it->second->view_def().tables();
  auto ait = agg_views_.find(view);
  OJV_CHECK(ait != agg_views_.end(), "unknown view");
  return ait->second->base_view().tables();
}

void Database::StageDeferred(const std::string& table, deferred::DeltaOp op,
                             const std::vector<Row>& rows, bool update_pair) {
  if (rows.empty() || in_transaction_ || !scheduler_.HasDeferredViews()) {
    return;
  }
  // Stage only when some deferred view will ever consume the entries.
  // Every consumer's published snapshot generation goes stale the
  // moment the change is staged: the stored view is now behind base
  // even though its contents have not moved.
  bool staged = false;
  const int64_t now = obs::SteadyNowMicros();
  for (const std::string& view : scheduler_.DeferredViews()) {
    if (TablesOf(view).count(table) == 0) continue;
    if (!staged) {
      delta_log_.Append(table, op, rows, update_pair);
      staged = true;
    }
    if (auto store = SnapshotStoreFor(view); store != nullptr) {
      store->NoteStaleness(now);
    }
  }
}

void Database::SetRefreshPolicy(const std::string& view,
                                deferred::RefreshPolicy policy,
                                deferred::ThresholdConfig config) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  OJV_CHECK(views_.count(view) > 0 || agg_views_.count(view) > 0,
            "unknown view");
  bool was_deferred = scheduler_.IsDeferred(view);
  bool now_deferred = policy != deferred::RefreshPolicy::kImmediate;
  if (was_deferred && !now_deferred) {
    // Drain before going eager: an immediate view is never stale.
    RefreshLocked(view);
    delta_log_.UnregisterConsumer(view);
  }
  if (!was_deferred && now_deferred) {
    // The view must be fully up to date at registration — fold any
    // heavy-key backlog its eager maintenance left behind.
    DrainHeavyView(view);
  }
  scheduler_.SetPolicy(view, policy, config);
  if (!was_deferred && now_deferred) delta_log_.RegisterConsumer(view);
}

deferred::RefreshPolicy Database::GetRefreshPolicy(
    const std::string& view) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return scheduler_.policy(view);
}

int64_t Database::PendingRows(const std::string& view) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!scheduler_.IsDeferred(view)) return 0;
  return delta_log_.PendingRows(view, TablesOf(view));
}

int64_t Database::HeavyPendingRows(const std::string& view) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (auto it = views_.find(view); it != views_.end()) {
    return it->second->HeavyPendingRows();
  }
  auto ait = agg_views_.find(view);
  OJV_CHECK(ait != agg_views_.end(), "unknown view");
  return ait->second->HeavyPendingRows();
}

int64_t Database::DeltaLogSize() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return delta_log_.size();
}

deferred::ViewRefreshState Database::RefreshState(
    const std::string& view) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const deferred::ViewRefreshState* state = scheduler_.state(view);
  return state != nullptr ? *state : deferred::ViewRefreshState();
}

deferred::RefreshStats Database::Refresh(const std::string& view) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  OJV_CHECK(views_.count(view) > 0 || agg_views_.count(view) > 0,
            "unknown view");
  return RefreshLocked(view);
}

std::map<std::string, deferred::RefreshStats> Database::RefreshAll() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  std::map<std::string, deferred::RefreshStats> out;
  for (const std::string& view : scheduler_.DeferredViews()) {
    out[view] = RefreshLocked(view);
  }
  return out;
}

std::shared_ptr<GenerationStore> Database::SnapshotStoreFor(
    const std::string& name) const {
  std::lock_guard<std::mutex> slock(snapshot_mu_);
  auto it = snapshots_.find(name);
  return it == snapshots_.end() ? nullptr : it->second;
}

void Database::InstallSnapshotStore(const std::string& name) {
  auto store = std::make_shared<GenerationStore>(
      name, agg_views_.find(name) != agg_views_.end());
  {
    std::lock_guard<std::mutex> slock(snapshot_mu_);
    snapshots_[name] = store;
  }
  PublishSnapshotLocked(name, store);
}

void Database::PublishSnapshotLocked(
    const std::string& name, const std::shared_ptr<GenerationStore>& store) {
  if (store->UpToDate()) return;  // identical rows — keep the generation
  Relation contents;
  if (auto it = views_.find(name); it != views_.end()) {
    contents = it->second->view().AsRelation();
  } else if (auto ait = agg_views_.find(name); ait != agg_views_.end()) {
    contents = ait->second->AsRelation();
  } else {
    return;  // dropped between lookups
  }
  const int64_t now = obs::SteadyNowMicros();
  int64_t stale_since = 0;
  if (scheduler_.IsDeferred(name)) {
    // Deltas still pending in the log are not part of the stored
    // contents: the new generation is born stale, aged from the oldest
    // unconsumed change.
    const double age = delta_log_.OldestPendingMicros(name, TablesOf(name));
    if (age > 0) stale_since = now - static_cast<int64_t>(age);
  }
  store->Publish(std::move(contents), now, stale_since);
}

ViewSnapshot Database::SnapshotReadLocked(
    const std::string& name, const std::shared_ptr<GenerationStore>& store,
    bool allow_refresh) {
  if (allow_refresh && !in_transaction_ && scheduler_.IsDeferred(name)) {
    RefreshLocked(name);
  }
  DrainHeavyView(name);
  PublishSnapshotLocked(name, store);
  return store->Acquire();
}

ViewSnapshot Database::AcquireSnapshotImpl(
    const std::string& name, const std::shared_ptr<GenerationStore>& store,
    const ReadOptions& options) {
  const auto read_start = std::chrono::steady_clock::now();
  ViewSnapshot snap;
  bool blocked = false;
  switch (options.freshness) {
    case ReadFreshness::kSnapshot: {
      snap = store->Acquire();
      // Opportunistic catch-up: if no statement or refresh holds the
      // mutex, fold pending work and publish a fresher generation —
      // the same work the old ReadView always did, minus the waiting.
      // Never inside a transaction (its contents are uncommitted).
      if (!snap.valid() || !store->UpToDate()) {
        std::unique_lock<std::recursive_mutex> lock(mu_, std::try_to_lock);
        if (lock.owns_lock() && !in_transaction_) {
          snap = SnapshotReadLocked(name, store, /*allow_refresh=*/false);
        }
      }
      break;
    }
    case ReadFreshness::kBounded: {
      snap = store->Acquire();
      if (snap.valid() &&
          snap.staleness_micros(obs::SteadyNowMicros()) <=
              options.max_staleness_micros) {
        break;
      }
      [[fallthrough]];
    }
    case ReadFreshness::kFresh: {
      std::lock_guard<std::recursive_mutex> lock(mu_);
      blocked = true;
      snap = SnapshotReadLocked(name, store, /*allow_refresh=*/true);
      break;
    }
  }
  const double micros = MicrosSince(read_start);
  if (blocked) {
    // Blocking reads contend with statements and refreshes for the
    // same mutex — their latency is a load signal just like statement
    // latency, so feed it to the admission controller.
    std::lock_guard<std::recursive_mutex> lock(mu_);
    if (admission_ != nullptr) {
      admission_->ObserveRead(micros, obs::SteadyNowMicros());
    }
  }
  if constexpr (obs::kEnabled) {
    obs::Registry::Global()
        .GetHistogram("ojv.serve.read_micros")
        .Record(static_cast<int64_t>(micros));
    if (snap.valid() &&
        snap.staleness_micros(obs::SteadyNowMicros()) > 0) {
      static obs::Counter& stale = obs::Registry::Global().GetCounter(
          "ojv.serve.stale_reads");
      stale.Add(1);
    }
  }
  return snap;
}

ViewSnapshot Database::AcquireSnapshot(const std::string& name,
                                       const ReadOptions& options) {
  auto store = SnapshotStoreFor(name);
  if (store == nullptr) return ViewSnapshot();
  return AcquireSnapshotImpl(name, store, options);
}

ViewSnapshot Database::ReadView(const std::string& name,
                                const ReadOptions& options) {
  // Historical contract: ReadView answers for row views only
  // (aggregate views read through ReadAggregateRelation).
  auto store = SnapshotStoreFor(name);
  if (store == nullptr || store->is_aggregate()) return ViewSnapshot();
  return AcquireSnapshotImpl(name, store, options);
}

ViewSnapshot Database::ReadAggregateRelation(const std::string& name,
                                             const ReadOptions& options) {
  auto store = SnapshotStoreFor(name);
  OJV_CHECK(store != nullptr && store->is_aggregate(),
            "unknown aggregate view");
  return AcquireSnapshotImpl(name, store, options);
}

deferred::RefreshStats Database::RefreshLocked(const std::string& name) {
  deferred::RefreshStats stats;
  if (!scheduler_.IsDeferred(name)) return stats;  // never stale
  if (MultiviewActive()) {
    // Under shared maintenance a grouped view never refreshes alone:
    // the whole group drains together so the shared prefix is evaluated
    // once for all members (and their high-water marks stay aligned).
    if (const multiview::ViewGroup* group = mv_catalog_.GroupOf(name);
        group != nullptr) {
      std::map<std::string, deferred::RefreshStats> all =
          RefreshGroupLocked(*group);
      return all[name];
    }
  }
  obs::Span refresh_span(default_options_.trace, "deferred.refresh",
                         "deferred");
  refresh_span.AddArg("view", name);
  ViewMaintainer* row_view = nullptr;
  AggViewMaintainer* agg_view = nullptr;
  if (auto it = views_.find(name); it != views_.end()) {
    row_view = it->second.get();
  } else {
    auto ait = agg_views_.find(name);
    OJV_CHECK(ait != agg_views_.end(), "unknown view");
    agg_view = ait->second.get();
  }

  // Deferred batches are much larger than single statements, so a view
  // may request more executor threads for its consolidated replays than
  // its foreground maintenance uses (ThresholdConfig::refresh_threads).
  // The override lasts for this refresh only.
  const int refresh_threads = scheduler_.config(name).refresh_threads;
  const ExecConfig saved_exec =
      row_view != nullptr ? row_view->exec_config() : agg_view->exec_config();
  const bool boost = refresh_threads > 0 &&
                     refresh_threads != saved_exec.num_threads;
  if (boost) {
    ExecConfig boosted = saved_exec;
    boosted.num_threads = refresh_threads;
    if (row_view != nullptr) {
      row_view->set_exec(boosted);
    } else {
      agg_view->set_exec(boosted);
    }
  }

  auto start = std::chrono::steady_clock::now();
  const std::set<std::string>& tables = TablesOf(name);
  stats.staleness_micros = delta_log_.OldestPendingMicros(name, tables);
  std::map<std::string, std::vector<deferred::DeltaEntry>> pending =
      delta_log_.PendingFor(name, tables);
  uint64_t consumed_to = delta_log_.tail();

  if (!pending.empty()) {
    std::vector<deferred::TableDelta> deltas =
        deferred::Consolidate(pending, catalog_);
    std::vector<const deferred::TableDelta*> active;
    for (const deferred::TableDelta& d : deltas) {
      stats.raw_entries += d.raw_entries;
      stats.consolidated_rows += static_cast<int64_t>(d.deletes.size()) +
                                 static_cast<int64_t>(d.inserts.size());
      stats.cancelled_rows += d.cancelled;
      stats.update_pairs += d.update_pairs;
      if (!d.deletes.empty() || !d.inserts.empty()) {
        ++stats.tables_touched;
        active.push_back(&d);
      }
    }

    auto maintain = [&](const MaintenanceStats& m) {
      Accumulate(name, m);
      stats.maintenance_micros += m.total_micros;
    };

    if (active.size() == 1 &&
        (active[0]->deletes.empty() || active[0]->inserts.empty())) {
      // Single-table, single-operation batch: the base table's current
      // (post-batch) state is exactly what one eager statement with the
      // net rows would have seen, so no revert is needed and the
      // foreign-key plan set stays usable.
      const deferred::TableDelta& d = *active[0];
      if (!d.deletes.empty()) {
        maintain(row_view != nullptr
                     ? row_view->OnDelete(d.table, d.deletes,
                                          PlanPolicy::kDefault)
                     : agg_view->OnDelete(d.table, d.deletes,
                                          PlanPolicy::kDefault));
      } else {
        maintain(row_view != nullptr
                     ? row_view->OnInsert(d.table, d.inserts,
                                          PlanPolicy::kDefault)
                     : agg_view->OnInsert(d.table, d.inserts,
                                          PlanPolicy::kDefault));
      }
      // Heavy-key rows the replay diverted must fold before the refresh
      // ends: statements mutate base without preparing deferred views,
      // so pending lazy state must never outlive the refresh.
      const MaintenanceStats drained =
          row_view != nullptr ? row_view->DrainHeavyState()
                              : agg_view->DrainHeavyState();
      if (drained.delta_rows > 0 || drained.total_micros > 0) {
        maintain(drained);
      }
    } else if (!active.empty()) {
      // General batch (several tables, or delete+reinsert pairs): revert
      // the raw pending entries newest-first, then replay the net deltas
      // in first-appearance order. Every maintenance call then sees
      // precisely the base state an eager execution of the consolidated
      // statement sequence would have seen. Foreign keys may be violated
      // between those statements (an update pair's halves, a child batch
      // replayed before its parents), so the whole replay runs on the
      // constraint-free plan sets (§6 caveats 1 and 3).
      std::vector<std::pair<const std::string*, const deferred::DeltaEntry*>>
          raw;
      for (const auto& [table, entries] : pending) {
        for (const deferred::DeltaEntry& e : entries) {
          raw.emplace_back(&table, &e);
        }
      }
      std::sort(raw.begin(), raw.end(), [](const auto& a, const auto& b) {
        return a.second->seq > b.second->seq;
      });
      for (const auto& [table, entry] : raw) {
        Table* base = catalog_.GetTable(*table);
        if (entry->op == deferred::DeltaOp::kInsert) {
          Row key;
          for (int p : base->key_positions()) {
            key.push_back(entry->row[static_cast<size_t>(p)]);
          }
          Row removed;
          OJV_CHECK(base->DeleteByKey(key, &removed),
                    "deferred revert: staged insert not present");
        } else {
          OJV_CHECK(base->Insert(entry->row),
                    "deferred revert: staged delete still present");
        }
      }
      for (const deferred::TableDelta* d : active) {
        Table* base = catalog_.GetTable(d->table);
        maintain(row_view != nullptr
                     ? row_view->OnConsolidatedBatch(
                           base, d->table, d->deletes, d->inserts,
                           PlanPolicy::kConstraintFree)
                     : agg_view->OnConsolidatedBatch(
                           base, d->table, d->deletes, d->inserts,
                           PlanPolicy::kConstraintFree));
      }
      // Fully-cancelled tables were reverted but have nothing to replay:
      // restore their post-batch state by definition of cancellation
      // (their pre- and post-batch states coincide), so nothing to do.
    }
  }

  if (boost) {
    if (row_view != nullptr) {
      row_view->set_exec(saved_exec);
    } else {
      agg_view->set_exec(saved_exec);
    }
  }

  delta_log_.AdvanceTo(name, consumed_to);
  delta_log_.TruncateConsumed();
  stats.refresh_micros = MicrosSince(start);
  scheduler_.RecordRefresh(name, stats);
  // The stored view is caught up and its heavy state folded: publish
  // the refreshed contents so snapshot readers see them without
  // touching the statement mutex. (No-op when the batch was empty.)
  if (auto store = SnapshotStoreFor(name); store != nullptr) {
    PublishSnapshotLocked(name, store);
  }
  if (admission_ != nullptr) {
    admission_->ObserveRefresh(stats.refresh_micros, obs::SteadyNowMicros());
  }
  refresh_span.AddArg("raw_entries", stats.raw_entries);
  refresh_span.AddArg("consolidated_rows", stats.consolidated_rows);
  refresh_span.AddArg("cancelled_rows", stats.cancelled_rows);
  refresh_span.AddArg("update_pairs", stats.update_pairs);
  refresh_span.AddArg("tables_touched", stats.tables_touched);
  refresh_span.AddArg("maintenance_micros",
                      static_cast<int64_t>(stats.maintenance_micros));
  return stats;
}

std::map<std::string, deferred::RefreshStats> Database::RefreshGroupLocked(
    const multiview::ViewGroup& group) {
  std::map<std::string, deferred::RefreshStats> out;
  std::vector<std::string> members;
  for (const std::string& m : group.members) {
    if (scheduler_.IsDeferred(m)) members.push_back(m);
  }
  if (members.empty()) return out;
  obs::Span group_span(default_options_.trace, "multiview.group_refresh",
                       "multiview");
  group_span.AddArg("group", group.id);
  group_span.AddArg("members", static_cast<int64_t>(members.size()));
  auto start = std::chrono::steady_clock::now();

  // Members with equal high-water marks have, per table, exactly the
  // same pending entries, so one revert/replay pass over the union of
  // their table sets serves them all. Marks can diverge (a member
  // refreshed individually before the group formed, or registered
  // later); such members replay in separate cohorts and converge here.
  std::map<uint64_t, std::vector<std::string>> cohorts;
  for (const std::string& m : members) {
    cohorts[delta_log_.high_water_mark(m)].push_back(m);
  }
  const uint64_t consumed_to = delta_log_.tail();
  for (auto& [hwm, cohort] : cohorts) {
    RefreshCohort(group, cohort, &out);
  }
  for (const std::string& m : members) {
    delta_log_.AdvanceTo(m, consumed_to);
  }
  delta_log_.TruncateConsumed();

  // Shared work (consolidation, prefix evaluations) belongs to no one
  // member; spread the non-maintenance wall time evenly so the per-view
  // refresh totals still sum to the group's cost.
  const double wall = MicrosSince(start);
  double maintenance = 0;
  for (const std::string& m : members) {
    maintenance += out[m].maintenance_micros;
  }
  const double shared_micros =
      std::max(0.0, wall - maintenance) / static_cast<double>(members.size());
  for (const std::string& m : members) {
    out[m].refresh_micros = out[m].maintenance_micros + shared_micros;
    scheduler_.RecordRefresh(m, out[m]);
    // Per-member generation publish: every cohort member left the
    // replay caught up with its heavy state drained (RefreshCohort
    // folds it), so each gets a fresh snapshot generation.
    if (auto store = SnapshotStoreFor(m); store != nullptr) {
      PublishSnapshotLocked(m, store);
    }
  }
  // One group refresh = one admission decision = one cost observation.
  if (admission_ != nullptr) {
    admission_->ObserveRefresh(wall, obs::SteadyNowMicros());
  }
  group_span.AddArg("cohorts", static_cast<int64_t>(cohorts.size()));
  return out;
}

void Database::RefreshCohort(
    const multiview::ViewGroup& group, const std::vector<std::string>& members,
    std::map<std::string, deferred::RefreshStats>* out) {
  std::set<std::string> union_tables;
  for (const std::string& m : members) {
    const std::set<std::string>& tables = TablesOf(m);
    union_tables.insert(tables.begin(), tables.end());
    (*out)[m].staleness_micros = delta_log_.OldestPendingMicros(m, tables);
  }
  // Equal marks: any member's pending over the union is the cohort's
  // pending; each member's own share is its restriction by table.
  std::map<std::string, std::vector<deferred::DeltaEntry>> pending =
      delta_log_.PendingFor(members.front(), union_tables);
  if (pending.empty()) return;

  // Per-member refresh-thread boost, restored after the cohort replay
  // (mirrors the single-view path in RefreshLocked).
  struct Boost {
    ViewMaintainer* row = nullptr;
    AggViewMaintainer* agg = nullptr;
    ExecConfig saved;
  };
  std::vector<Boost> boosted;
  for (const std::string& m : members) {
    const int threads = scheduler_.config(m).refresh_threads;
    Boost b;
    if (auto it = views_.find(m); it != views_.end()) {
      b.row = it->second.get();
      b.saved = b.row->exec_config();
    } else {
      b.agg = agg_views_.at(m).get();
      b.saved = b.agg->exec_config();
    }
    if (threads > 0 && threads != b.saved.num_threads) {
      ExecConfig raised = b.saved;
      raised.num_threads = threads;
      if (b.row != nullptr) {
        b.row->set_exec(raised);
      } else {
        b.agg->set_exec(raised);
      }
      boosted.push_back(b);
    }
  }

  std::vector<deferred::TableDelta> deltas =
      deferred::Consolidate(pending, catalog_);
  std::vector<const deferred::TableDelta*> active;
  for (const deferred::TableDelta& d : deltas) {
    const bool is_active = !d.deletes.empty() || !d.inserts.empty();
    if (is_active) active.push_back(&d);
    for (const std::string& m : members) {
      if (TablesOf(m).count(d.table) == 0) continue;
      deferred::RefreshStats& s = (*out)[m];
      s.raw_entries += d.raw_entries;
      s.consolidated_rows += static_cast<int64_t>(d.deletes.size()) +
                             static_cast<int64_t>(d.inserts.size());
      s.cancelled_rows += d.cancelled;
      s.update_pairs += d.update_pairs;
      if (is_active) ++s.tables_touched;
    }
  }

  if (active.size() == 1 &&
      (active[0]->deletes.empty() || active[0]->inserts.empty())) {
    // Single-table single-operation batch: post-batch base state is what
    // an eager statement would have seen — no revert, FK plans usable
    // (same fast path as RefreshLocked).
    const deferred::TableDelta& d = *active[0];
    const bool is_insert = d.deletes.empty();
    MaintainGroupTable(group, members, d.table,
                       is_insert ? d.inserts : d.deletes, is_insert,
                       PlanPolicy::kDefault, out);
  } else if (!active.empty()) {
    // General batch: revert raw entries newest-first, then replay each
    // table's net delete and insert for every member that references the
    // table. Each member thus sees exactly the base-state sequence its
    // own independent replay would have produced (its tables' relative
    // order is preserved inside the union's first-appearance order, and
    // tables outside its view never affect its deltas).
    std::vector<std::pair<const std::string*, const deferred::DeltaEntry*>>
        raw;
    for (const auto& [table, entries] : pending) {
      for (const deferred::DeltaEntry& e : entries) {
        raw.emplace_back(&table, &e);
      }
    }
    std::sort(raw.begin(), raw.end(), [](const auto& a, const auto& b) {
      return a.second->seq > b.second->seq;
    });
    for (const auto& [table, entry] : raw) {
      Table* base = catalog_.GetTable(*table);
      if (entry->op == deferred::DeltaOp::kInsert) {
        Row key;
        for (int p : base->key_positions()) {
          key.push_back(entry->row[static_cast<size_t>(p)]);
        }
        Row removed;
        OJV_CHECK(base->DeleteByKey(key, &removed),
                  "group revert: staged insert not present");
      } else {
        OJV_CHECK(base->Insert(entry->row),
                  "group revert: staged delete still present");
      }
    }
    for (const deferred::TableDelta* d : active) {
      Table* base = catalog_.GetTable(d->table);
      if (!d->deletes.empty()) {
        std::vector<Row> keys;
        keys.reserve(d->deletes.size());
        for (const Row& row : d->deletes) {
          Row key;
          for (int p : base->key_positions()) {
            key.push_back(row[static_cast<size_t>(p)]);
          }
          keys.push_back(std::move(key));
        }
        std::vector<Row> deleted = ApplyBaseDelete(base, keys);
        OJV_CHECK(deleted.size() == d->deletes.size(),
                  "group replay: net deletes must all be present");
        MaintainGroupTable(group, members, d->table, deleted, false,
                           PlanPolicy::kConstraintFree, out);
      }
      if (!d->inserts.empty()) {
        std::vector<Row> inserted = ApplyBaseInsert(base, d->inserts);
        OJV_CHECK(inserted.size() == d->inserts.size(),
                  "group replay: net inserts must all be fresh keys");
        MaintainGroupTable(group, members, d->table, inserted, true,
                           PlanPolicy::kConstraintFree, out);
      }
    }
    // Fully-cancelled tables were reverted with nothing to replay: their
    // pre- and post-batch states coincide by definition of cancellation.
  }

  // As in RefreshLocked: heavy-key rows diverted during the cohort
  // replay fold before the refresh ends, so no member leaves pending
  // lazy state behind while statements keep mutating base unprepared.
  for (const std::string& m : members) {
    const MaintenanceStats drained = DrainHeavyView(m);
    (*out)[m].maintenance_micros += drained.total_micros;
  }

  for (const Boost& b : boosted) {
    if (b.row != nullptr) {
      b.row->set_exec(b.saved);
    } else {
      b.agg->set_exec(b.saved);
    }
  }
}

void Database::MaintainGroupTable(
    const multiview::ViewGroup& group, const std::vector<std::string>& members,
    const std::string& table, const std::vector<Row>& rows, bool is_insert,
    PlanPolicy policy, std::map<std::string, deferred::RefreshStats>* out) {
  if (rows.empty()) return;
  struct Target {
    std::string name;
    ViewMaintainer* row = nullptr;
    AggViewMaintainer* agg = nullptr;
  };
  std::vector<Target> targets;
  std::map<std::string, RelExprPtr> exprs;
  for (const std::string& m : members) {
    if (TablesOf(m).count(table) == 0) continue;
    Target t;
    t.name = m;
    if (auto it = views_.find(m); it != views_.end()) {
      t.row = it->second.get();
      exprs[m] = t.row->delta_expr(table, policy);
    } else {
      t.agg = agg_views_.at(m).get();
      exprs[m] = t.agg->planning_maintainer(policy)->delta_expr(table, policy);
    }
    targets.push_back(std::move(t));
  }
  if (targets.empty()) return;

  const multiview::SharedPlan& plan = mv_plans_.Get(
      group, table, policy == PlanPolicy::kConstraintFree, exprs);
  const bool share = plan.Shareable();

  Relation delta_t(Evaluator::SchemaFor(*catalog_.GetTable(table)));
  for (const Row& row : rows) delta_t.Add(row);
  // The prefix relation is evaluated lazily, once per (table, batch),
  // and shared by every suffix refresh in this pass.
  std::shared_ptr<const Relation> prefix;

  for (const Target& t : targets) {
    auto sit = share ? plan.suffixes.find(t.name) : plan.suffixes.end();
    const bool use_shared = share && sit != plan.suffixes.end();
    MaintenanceStats ms;
    if (use_shared) {
      if (prefix == nullptr) {
        obs::Span span(default_options_.trace, "multiview.shared_prefix",
                       "multiview");
        span.AddArg("group", group.id);
        span.AddArg("table", table);
        span.AddArg("signature", plan.prefix_signature);
        ViewMaintainer* lead =
            t.row != nullptr ? t.row : t.agg->planning_maintainer(policy);
        Evaluator evaluator(&catalog_);
        evaluator.set_table_cache(lead->table_cache());
        evaluator.set_exec(lead->exec_config(), lead->thread_pool());
        evaluator.set_join_algorithm(lead->join_algorithm());
        evaluator.set_trace(default_options_.trace);
        evaluator.BindDelta(table, &delta_t);
        prefix = evaluator.Eval(plan.prefix);
        span.AddArg("rows", prefix->size());
        if constexpr (obs::kEnabled) {
          static obs::Counter& evals = obs::Registry::Global().GetCounter(
              "ojv.multiview.shared_prefix_evals");
          evals.Add(1);
        }
      } else {
        if constexpr (obs::kEnabled) {
          static obs::Counter& hits = obs::Registry::Global().GetCounter(
              "ojv.multiview.shared_prefix_hits");
          hits.Add(1);
        }
      }
      ms = t.row != nullptr
               ? t.row->OnSharedDelta(table, rows, is_insert, policy,
                                      sit->second, *prefix)
               : t.agg->OnSharedDelta(table, rows, is_insert, policy,
                                      sit->second, *prefix);
      if constexpr (obs::kEnabled) {
        static obs::Counter& suffixes = obs::Registry::Global().GetCounter(
            "ojv.multiview.suffix_refreshes");
        suffixes.Add(1);
      }
    } else {
      ms = t.row != nullptr
               ? (is_insert ? t.row->OnInsert(table, rows, policy)
                            : t.row->OnDelete(table, rows, policy))
               : (is_insert ? t.agg->OnInsert(table, rows, policy)
                            : t.agg->OnDelete(table, rows, policy));
    }
    Accumulate(t.name, ms);
    (*out)[t.name].maintenance_micros += ms.total_micros;
  }
}

void Database::MaybeAutoRefresh(StatementResult* result) {
  if (in_transaction_ || !scheduler_.HasDeferredViews()) return;
  if (admission_ != nullptr) {
    if (refresher_.running()) {
      // The worker's DrainDueViews applies the admission plan; the
      // statement path only needs to wake it when something is due.
      if (!CollectDueViews().empty()) refresher_.Notify();
    } else {
      AdmitAndRefresh(result);
    }
    return;
  }
  for (const std::string& view : scheduler_.DeferredViews()) {
    if (scheduler_.policy(view) != deferred::RefreshPolicy::kThreshold) {
      continue;
    }
    const std::set<std::string>& tables = TablesOf(view);
    int64_t pending = delta_log_.PendingRows(view, tables);
    double staleness = delta_log_.OldestPendingMicros(view, tables);
    PublishViewPressure(view, pending, staleness);
    if (!scheduler_.Due(view, pending, staleness)) continue;
    if (refresher_.running()) {
      refresher_.Notify();
    } else {
      deferred::RefreshStats stats = RefreshLocked(view);
      if (result != nullptr) {
        result->maintenance_micros += stats.maintenance_micros;
        result->view_micros[view] += stats.maintenance_micros;
      }
    }
  }
}

void Database::DrainDueViews() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (in_transaction_) return;  // transactions drain at Begin and run eager
  if (admission_ != nullptr) {
    AdmitAndRefresh(nullptr);
    // Heavy-key backlogs drain on the worker tick too, behind the same
    // gate: while the controller is hot the lazy state keeps absorbing
    // skew, and folds as soon as pressure fades.
    if (!admission_->hot()) DrainHeavyBacklog();
    return;
  }
  for (const std::string& view : scheduler_.DeferredViews()) {
    if (scheduler_.policy(view) != deferred::RefreshPolicy::kThreshold) {
      continue;
    }
    const std::set<std::string>& tables = TablesOf(view);
    int64_t pending = delta_log_.PendingRows(view, tables);
    double staleness = delta_log_.OldestPendingMicros(view, tables);
    PublishViewPressure(view, pending, staleness);
    if (scheduler_.Due(view, pending, staleness)) RefreshLocked(view);
  }
  DrainHeavyBacklog();
}

std::vector<deferred::DueView> Database::CollectDueViews() const {
  std::vector<deferred::DueView> due;
  for (const std::string& view : scheduler_.DeferredViews()) {
    if (scheduler_.policy(view) != deferred::RefreshPolicy::kThreshold) {
      continue;
    }
    const std::set<std::string>& tables = TablesOf(view);
    int64_t pending = delta_log_.PendingRows(view, tables);
    double staleness = delta_log_.OldestPendingMicros(view, tables);
    PublishViewPressure(view, pending, staleness);
    if (!scheduler_.Due(view, pending, staleness)) continue;
    const deferred::ThresholdConfig& config = scheduler_.config(view);
    due.push_back({view, pending, staleness, config.max_staleness_micros,
                   config.staleness_ceiling_micros});
  }
  return due;
}

std::vector<deferred::DueView> Database::GroupDueViews(
    std::vector<deferred::DueView> due,
    std::map<std::string, const multiview::ViewGroup*>* group_reps) const {
  std::vector<deferred::DueView> out;
  std::map<std::string, size_t> rep_index;  // group id -> index into out
  for (deferred::DueView& d : due) {
    const multiview::ViewGroup* group = mv_catalog_.GroupOf(d.name);
    if (group == nullptr) {
      out.push_back(std::move(d));
      continue;
    }
    auto [it, fresh] = rep_index.emplace(group->id, out.size());
    if (fresh) {
      (*group_reps)[d.name] = group;
      out.push_back(std::move(d));
      continue;
    }
    // Fold this member into the group's representative entry: the group
    // refreshes as a unit, so its debt is the members' pending rows
    // combined, its urgency the stalest member, and its bounds the
    // tightest member's (promotion of any member promotes the group).
    deferred::DueView& rep = out[it->second];
    rep.pending_rows += d.pending_rows;
    rep.staleness_micros = std::max(rep.staleness_micros, d.staleness_micros);
    auto tighten = [](double* into, double value) {
      if (value > 0 && (*into <= 0 || value < *into)) *into = value;
    };
    tighten(&rep.max_staleness_micros, d.max_staleness_micros);
    tighten(&rep.staleness_ceiling_micros, d.staleness_ceiling_micros);
  }
  return out;
}

void Database::AdmitAndRefresh(StatementResult* result) {
  obs::Span admission_span(default_options_.trace, "deferred.admission",
                           "deferred");
  std::vector<deferred::DueView> due = CollectDueViews();
  std::map<std::string, const multiview::ViewGroup*> group_reps;
  if (MultiviewActive()) {
    // Due members of one group collapse into one due entry: one group
    // refresh = one admission decision, and a promoted member promotes
    // its whole group.
    due = GroupDueViews(std::move(due), &group_reps);
  }
  // Plan even on an empty due set: the hot state tracks load between
  // trips, so the controller exits hot as soon as pressure fades rather
  // than on the next due view.
  deferred::AdmissionPlan plan =
      admission_->Plan(due, delta_log_.size(), obs::SteadyNowMicros());
  admission_span.AddArg("due", static_cast<int64_t>(due.size()));
  admission_span.AddArg("admitted",
                        static_cast<int64_t>(plan.admitted.size()));
  admission_span.AddArg("promoted",
                        static_cast<int64_t>(plan.promoted.size()));
  admission_span.AddArg("deferred",
                        static_cast<int64_t>(plan.deferred.size()));
  admission_span.AddArg("hot", plan.hot ? 1 : 0);
  admission_span.AddArg("load_score_milli",
                        static_cast<int64_t>(plan.load_score * 1000.0));
  for (const std::string& view : plan.admitted) {
    if (auto git = group_reps.find(view); git != group_reps.end()) {
      std::map<std::string, deferred::RefreshStats> all =
          RefreshGroupLocked(*git->second);
      if (result != nullptr) {
        for (const auto& [member, stats] : all) {
          result->maintenance_micros += stats.maintenance_micros;
          result->view_micros[member] += stats.maintenance_micros;
        }
      }
      continue;
    }
    deferred::RefreshStats stats = RefreshLocked(view);
    if (result != nullptr) {
      result->maintenance_micros += stats.maintenance_micros;
      result->view_micros[view] += stats.maintenance_micros;
    }
  }
}

void Database::SetMultiviewMode(MultiviewMode mode) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  default_options_.multiview = mode;
}

MultiviewMode Database::multiview_mode() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return default_options_.multiview;
}

std::vector<multiview::ViewGroup> Database::ViewGroups() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return mv_catalog_.groups();
}

void Database::SetAdmissionControl(const deferred::AdmissionConfig& config) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  admission_ = config.enabled
                   ? std::make_unique<deferred::AdmissionController>(config)
                   : nullptr;
}

Database::AdmissionStats Database::GetAdmissionStats() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  AdmissionStats stats;
  if (admission_ == nullptr) return stats;
  stats.enabled = true;
  stats.hot = admission_->hot();
  stats.load_score =
      admission_->LoadScore(delta_log_.size(), obs::SteadyNowMicros());
  stats.deferred = admission_->deferred_total();
  stats.promoted = admission_->promoted_total();
  stats.hot_transitions = admission_->hot_transitions();
  return stats;
}

int64_t Database::AdmissionStalenessPercentile(const std::string& view,
                                               double p) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (admission_ == nullptr) return 0;
  return admission_->StalenessPercentile(view, p, obs::SteadyNowMicros());
}

void Database::ObserveStatementLatency(
    std::chrono::steady_clock::time_point start) {
  if (admission_ == nullptr) return;
  admission_->ObserveStatement(MicrosSince(start), obs::SteadyNowMicros());
}

void Database::StartBackgroundRefresh(std::chrono::milliseconds interval) {
  OJV_CHECK(!refresher_.running(), "background refresh already running");
  refresher_.Start(interval, [this] { DrainDueViews(); });
}

void Database::StopBackgroundRefresh() { refresher_.Stop(); }

// --- statements -----------------------------------------------------------

void Database::MaintainInsert(const std::string& table,
                              const std::vector<Row>& rows,
                              StatementResult* result) {
  auto start = std::chrono::steady_clock::now();
  for (auto& [name, view] : views_) {
    if (view->view_def().tables().count(table) == 0) continue;
    if (DeferredNow(name)) continue;
    MaintenanceStats stats = view->OnInsert(table, rows, CurrentPolicy());
    Accumulate(name, stats);
    result->view_micros[name] += stats.total_micros;
  }
  for (auto& [name, view] : agg_views_) {
    if (view->base_view().tables().count(table) == 0) continue;
    if (DeferredNow(name)) continue;
    MaintenanceStats stats = view->OnInsert(table, rows, CurrentPolicy());
    Accumulate(name, stats);
    result->view_micros[name] += stats.total_micros;
  }
  result->maintenance_micros += MicrosSince(start);
}

void Database::MaintainDelete(const std::string& table,
                              const std::vector<Row>& rows,
                              StatementResult* result) {
  auto start = std::chrono::steady_clock::now();
  for (auto& [name, view] : views_) {
    if (view->view_def().tables().count(table) == 0) continue;
    if (DeferredNow(name)) continue;
    MaintenanceStats stats = view->OnDelete(table, rows, CurrentPolicy());
    Accumulate(name, stats);
    result->view_micros[name] += stats.total_micros;
  }
  for (auto& [name, view] : agg_views_) {
    if (view->base_view().tables().count(table) == 0) continue;
    if (DeferredNow(name)) continue;
    MaintenanceStats stats = view->OnDelete(table, rows, CurrentPolicy());
    Accumulate(name, stats);
    result->view_micros[name] += stats.total_micros;
  }
  result->maintenance_micros += MicrosSince(start);
}

Database::StatementResult Database::Insert(const std::string& table,
                                           const std::vector<Row>& rows) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto stmt_start = std::chrono::steady_clock::now();
  obs::Span span(default_options_.trace, "db.insert", "db");
  span.AddArg("table", table);
  span.AddArg("rows_in", static_cast<int64_t>(rows.size()));
  StatementResult result;
  if (!catalog_.HasTable(table)) {
    result.error = "unknown table " + table;
    return result;
  }
  // Pre-apply contract: conflicting heavy-key lazy state must fold
  // while base still matches the state its rows were diverted under.
  PrepareHeavyViews(table, /*is_update=*/false);
  Table* base = catalog_.GetTable(table);
  std::vector<Row> accepted;
  accepted.reserve(rows.size());
  for (const Row& row : rows) {
    if (static_cast<int>(row.size()) != base->schema().num_columns() ||
        (!in_transaction_ && !RowSatisfiesForeignKeys(table, row)) ||
        !base->Insert(row)) {
      ++result.rows_rejected;
      continue;
    }
    accepted.push_back(row);
  }
  result.rows_affected = static_cast<int64_t>(accepted.size());
  if (!accepted.empty()) {
    MaintainInsert(table, accepted, &result);
    StageDeferred(table, deferred::DeltaOp::kInsert, accepted,
                  /*update_pair=*/false);
    if (in_transaction_) {
      undo_log_.push_back(
          {UndoEntry::Kind::kDeleteInserted, table, accepted, {}});
    }
  }
  MaybeAutoRefresh(&result);
  ObserveStatementLatency(stmt_start);
  span.AddArg("rows_affected", result.rows_affected);
  span.AddArg("rows_rejected", result.rows_rejected);
  return result;
}

Database::StatementResult Database::Delete(const std::string& table,
                                           const std::vector<Row>& keys) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto stmt_start = std::chrono::steady_clock::now();
  obs::Span span(default_options_.trace, "db.delete", "db");
  span.AddArg("table", table);
  span.AddArg("rows_in", static_cast<int64_t>(keys.size()));
  StatementResult result = DeleteLocked(table, keys);
  if (result.ok()) MaybeAutoRefresh(&result);
  ObserveStatementLatency(stmt_start);
  span.AddArg("rows_affected", result.rows_affected);
  span.AddArg("rows_rejected", result.rows_rejected);
  return result;
}

Database::StatementResult Database::DeleteLocked(const std::string& table,
                                                 const std::vector<Row>& keys) {
  StatementResult result;
  if (!catalog_.HasTable(table)) {
    result.error = "unknown table " + table;
    return result;
  }
  // Referential integrity first: blocking children reject the whole
  // statement; cascading children are deleted (and their views
  // maintained) before the parents. Inside a transaction the checks are
  // deferred to Commit and cascades are suppressed (SQL defers the
  // constraint action too).
  std::vector<std::pair<const ForeignKey*, std::vector<Row>>> referencing;
  if (!in_transaction_) referencing = ReferencingRows(table, keys);
  for (const auto& [fk, child_rows] : referencing) {
    if (!fk->cascading_delete) {
      result.error = "delete from " + table + " violates FK from " +
                     fk->child_table;
      return result;
    }
  }
  for (const auto& [fk, child_rows] : referencing) {
    Table* child = catalog_.GetTable(fk->child_table);
    std::vector<Row> child_keys;
    child_keys.reserve(child_rows.size());
    for (const Row& row : child_rows) {
      Row key;
      for (int p : child->key_positions()) {
        key.push_back(row[static_cast<size_t>(p)]);
      }
      child_keys.push_back(std::move(key));
    }
    // Recursive delete handles chains of cascading constraints.
    StatementResult cascaded = DeleteLocked(fk->child_table, child_keys);
    if (!cascaded.ok()) {
      result.error = cascaded.error;
      return result;
    }
    result.rows_affected += cascaded.rows_affected;
    result.maintenance_micros += cascaded.maintenance_micros;
    for (const auto& [view, micros] : cascaded.view_micros) {
      result.view_micros[view] += micros;
    }
  }

  // Pre-apply contract (see Insert): fold conflicting heavy-key state
  // before the base delete lands.
  PrepareHeavyViews(table, /*is_update=*/false);
  Table* base = catalog_.GetTable(table);
  std::vector<Row> deleted = ApplyBaseDelete(base, keys);
  result.rows_rejected +=
      static_cast<int64_t>(keys.size() - deleted.size());
  result.rows_affected += static_cast<int64_t>(deleted.size());
  if (!deleted.empty()) {
    MaintainDelete(table, deleted, &result);
    StageDeferred(table, deferred::DeltaOp::kDelete, deleted,
                  /*update_pair=*/false);
    if (in_transaction_) {
      undo_log_.push_back(
          {UndoEntry::Kind::kReinsertDeleted, table, deleted, {}});
    }
  }
  return result;
}

Database::StatementResult Database::Update(const std::string& table,
                                           const std::vector<Row>& keys,
                                           const std::vector<Row>& new_rows) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  auto stmt_start = std::chrono::steady_clock::now();
  obs::Span span(default_options_.trace, "db.update", "db");
  span.AddArg("table", table);
  span.AddArg("rows_in", static_cast<int64_t>(keys.size()));
  StatementResult result;
  if (!catalog_.HasTable(table)) {
    result.error = "unknown table " + table;
    return result;
  }
  if (keys.size() != new_rows.size()) {
    result.error = "update arity mismatch";
    return result;
  }
  Table* base = catalog_.GetTable(table);
  // Keys must be unchanged (key updates would interact with FKs; model
  // them as explicit delete+insert statements instead).
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t k = 0; k < base->key_positions().size(); ++k) {
      const Value& new_key =
          new_rows[i][static_cast<size_t>(base->key_positions()[k])];
      if (new_key != keys[i][k]) {
        result.error = "update may not change key columns";
        return result;
      }
    }
    if (!in_transaction_ && !RowSatisfiesForeignKeys(table, new_rows[i])) {
      result.error = "updated row violates a foreign key";
      return result;
    }
  }

  // Pre-apply contract (see Insert). Update pairs may divert even on
  // constraint-free plans, so only cross-table pending forces a fold.
  PrepareHeavyViews(table, /*is_update=*/true);
  std::vector<Row> old_rows;
  std::vector<Row> applied_new;
  for (size_t i = 0; i < keys.size(); ++i) {
    Row old_row;
    if (!base->DeleteByKey(keys[i], &old_row)) {
      ++result.rows_rejected;
      continue;
    }
    OJV_CHECK(base->Insert(new_rows[i]), "reinsert under same key");
    old_rows.push_back(std::move(old_row));
    applied_new.push_back(new_rows[i]);
  }
  result.rows_affected = static_cast<int64_t>(applied_new.size());
  if (applied_new.empty()) return result;

  auto start = std::chrono::steady_clock::now();
  for (auto& [name, view] : views_) {
    if (view->view_def().tables().count(table) == 0) continue;
    if (DeferredNow(name)) continue;
    MaintenanceStats stats = view->OnUpdate(table, old_rows, applied_new);
    Accumulate(name, stats);
    result.view_micros[name] += stats.total_micros;
  }
  for (auto& [name, view] : agg_views_) {
    if (view->base_view().tables().count(table) == 0) continue;
    if (DeferredNow(name)) continue;
    MaintenanceStats stats = view->OnUpdate(table, old_rows, applied_new);
    Accumulate(name, stats);
    result.view_micros[name] += stats.total_micros;
  }
  result.maintenance_micros += MicrosSince(start);
  // Stage both halves flagged as an update pair: wherever the refresh
  // boundary falls, their replay must stay on constraint-free plans
  // (§6 caveat 1).
  StageDeferred(table, deferred::DeltaOp::kDelete, old_rows,
                /*update_pair=*/true);
  StageDeferred(table, deferred::DeltaOp::kInsert, applied_new,
                /*update_pair=*/true);
  if (in_transaction_) {
    undo_log_.push_back(
        {UndoEntry::Kind::kReverseUpdate, table, applied_new, old_rows});
  }
  MaybeAutoRefresh(&result);
  ObserveStatementLatency(stmt_start);
  span.AddArg("rows_affected", result.rows_affected);
  span.AddArg("rows_rejected", result.rows_rejected);
  return result;
}

bool Database::BeginTransaction() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (in_transaction_) return false;
  // Deferred views catch up first: statements inside the transaction are
  // maintained eagerly (on constraint-free plans), and rollback's
  // inverse statements assume the views reflect all prior statements.
  for (const std::string& view : scheduler_.DeferredViews()) {
    RefreshLocked(view);
  }
  // Heavy-key backlogs fold too: the undo log's inverse statements
  // assume the views' contents are complete when the transaction opens.
  DrainHeavyBacklog();
  in_transaction_ = true;
  undo_log_.clear();
  return true;
}

Database::StatementResult Database::Commit() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  StatementResult result;
  if (!in_transaction_) {
    result.error = "no open transaction";
    return result;
  }
  std::string violation;
  if (!catalog_.CheckForeignKeys(&violation)) {
    Rollback();
    result.error = "commit aborted: " + violation;
    return result;
  }
  in_transaction_ = false;
  undo_log_.clear();
  return result;
}

void Database::Rollback() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  OJV_CHECK(in_transaction_, "no open transaction");
  // Replay inverses newest-first; maintenance stays constraint-free
  // (in_transaction_ remains set until we are done).
  StatementResult scratch;
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    Table* base = catalog_.GetTable(it->table);
    // Inverse statements mutate base like forward ones: fold conflicting
    // heavy-key state first (reversed updates may have diverted rows).
    PrepareHeavyViews(it->table,
                      it->kind == UndoEntry::Kind::kReverseUpdate);
    switch (it->kind) {
      case UndoEntry::Kind::kDeleteInserted: {
        std::vector<Row> keys;
        for (const Row& row : it->rows) {
          Row key;
          for (int p : base->key_positions()) {
            key.push_back(row[static_cast<size_t>(p)]);
          }
          keys.push_back(std::move(key));
        }
        std::vector<Row> deleted = ApplyBaseDelete(base, keys);
        OJV_CHECK(deleted.size() == keys.size(), "rollback delete mismatch");
        MaintainDelete(it->table, deleted, &scratch);
        break;
      }
      case UndoEntry::Kind::kReinsertDeleted: {
        std::vector<Row> inserted = ApplyBaseInsert(base, it->rows);
        OJV_CHECK(inserted.size() == it->rows.size(),
                  "rollback insert mismatch");
        MaintainInsert(it->table, inserted, &scratch);
        break;
      }
      case UndoEntry::Kind::kReverseUpdate: {
        std::vector<Row> keys;
        for (const Row& row : it->rows) {
          Row key;
          for (int p : base->key_positions()) {
            key.push_back(row[static_cast<size_t>(p)]);
          }
          keys.push_back(std::move(key));
        }
        std::vector<Row> current;
        ApplyBaseUpdate(base, keys, it->old_rows, &current);
        // These reversals bypass Accumulate (rollback is not a
        // maintenance statement), so invalidate the snapshot
        // generations explicitly.
        const int64_t now = obs::SteadyNowMicros();
        for (auto& [name, view] : views_) {
          if (view->view_def().tables().count(it->table) > 0) {
            view->OnUpdate(it->table, current, it->old_rows);
            if (auto store = SnapshotStoreFor(name)) {
              store->NoteContentChanged(now);
            }
          }
        }
        for (auto& [name, view] : agg_views_) {
          if (view->base_view().tables().count(it->table) > 0) {
            view->OnUpdate(it->table, current, it->old_rows);
            if (auto store = SnapshotStoreFor(name)) {
              store->NoteContentChanged(now);
            }
          }
        }
        break;
      }
    }
  }
  undo_log_.clear();
  in_transaction_ = false;
}

}  // namespace ojv
