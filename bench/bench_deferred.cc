// Deferred vs immediate maintenance of view V3 on the Figure-5 insert
// workload, driven through the Database facade.
//
// Immediate mode pays one maintenance pass per statement: inserting a
// batch as single-row statements runs the left-deep delta pipeline (§4)
// once per row. Deferred mode stages the same statements in the delta
// log and runs the pipeline once over the consolidated ΔT at refresh —
// per-statement cost becomes an append, and the batched refresh
// amortizes plan execution over the whole batch.
//
// The churn table shows the other deferred win: rows inserted and
// deleted again before the refresh consolidate away entirely, so the
// maintainers never see them, while immediate maintenance pays for both
// statements.

#include "bench_util.h"
#include "ivm/database.h"
#include "tpch/views.h"

namespace ojv {
namespace bench {
namespace {

/// A Database with TPC-H populated and V3 registered.
struct Instance {
  Database db;
  ViewMaintainer* v3 = nullptr;

  explicit Instance(tpch::Dbgen* dbgen) {
    tpch::CreateSchema(db.catalog());
    // Populate is deterministic: both instances get identical tables.
    dbgen->Populate(db.catalog());
    v3 = db.CreateMaterializedView(tpch::MakeV3(*db.catalog()));
  }
};

std::vector<Row> LineitemKeys(const std::vector<Row>& rows) {
  std::vector<Row> keys;
  keys.reserve(rows.size());
  for (const Row& row : rows) {
    keys.push_back(Row{row[0], row[3]});  // (l_orderkey, l_linenumber)
  }
  return keys;
}

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("TPC-H SF=%.3f (lineitem rows: ~%lld)\n", options.scale_factor,
              static_cast<long long>(options.scale_factor * 6000000));

  tpch::DbgenOptions gen_options;
  gen_options.scale_factor = options.scale_factor;
  gen_options.seed = options.seed;
  tpch::Dbgen dbgen(gen_options);
  Instance immediate(&dbgen);
  Instance deferred(&dbgen);
  // Consolidated batch replays may use the morsel-parallel executor
  // (--threads=N); foreground statements stay serial.
  deferred::ThresholdConfig refresh_config;
  refresh_config.refresh_threads = options.threads;
  deferred.db.SetRefreshPolicy("v3", deferred::RefreshPolicy::kOnDemand,
                               refresh_config);

  // One stream drives both databases so their base states stay equal.
  tpch::RefreshStream stream(immediate.db.catalog(), &dbgen, options.seed);

  JsonReport report("deferred", options);
  PrintHeader(
      "V3 maintenance: single-row insert statements, immediate vs deferred",
      {"Rows", "Immediate", "Stage", "Refresh", "Deferred", "Speedup"});
  for (int64_t batch : options.batches) {
    std::vector<Row> rows = stream.NewLineitems(batch);

    double immediate_ms = TimeMs([&] {
      for (const Row& row : rows) immediate.db.Insert("lineitem", {row});
    });
    double stage_ms = TimeMs([&] {
      for (const Row& row : rows) deferred.db.Insert("lineitem", {row});
    });
    deferred::RefreshStats stats;
    double refresh_ms = TimeMs([&] { stats = deferred.db.Refresh("v3"); });
    double deferred_ms = stage_ms + refresh_ms;

    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  immediate_ms / std::max(deferred_ms, 1e-3));
    PrintRow({FormatCount(batch), FormatMs(immediate_ms), FormatMs(stage_ms),
              FormatMs(refresh_ms), FormatMs(deferred_ms), speedup});
    report.BeginRow();
    report.Str("workload", "insert");
    report.Count("batch_rows", batch);
    report.Num("immediate_ms", immediate_ms);
    report.Num("stage_ms", stage_ms);
    report.Num("refresh_ms", refresh_ms);
    report.Num("deferred_ms", deferred_ms);

    // Restore both databases (and views) for the next batch size.
    std::vector<Row> keys = LineitemKeys(rows);
    immediate.db.Delete("lineitem", keys);
    deferred.db.Delete("lineitem", keys);
    deferred.db.Refresh("v3");
  }

  // Churn: every inserted row is deleted again before the refresh.
  PrintHeader("Churn (insert+delete same rows before refresh)",
              {"Rows", "Immediate", "Deferred", "NetRows", "Cancelled"});
  for (int64_t batch : options.batches) {
    std::vector<Row> rows = stream.NewLineitems(batch);
    std::vector<Row> keys = LineitemKeys(rows);

    double immediate_ms = TimeMs([&] {
      for (const Row& row : rows) immediate.db.Insert("lineitem", {row});
      immediate.db.Delete("lineitem", keys);
    });
    deferred::RefreshStats stats;
    double deferred_ms = TimeMs([&] {
      for (const Row& row : rows) deferred.db.Insert("lineitem", {row});
      deferred.db.Delete("lineitem", keys);
      stats = deferred.db.Refresh("v3");
    });
    PrintRow({FormatCount(batch), FormatMs(immediate_ms),
              FormatMs(deferred_ms), FormatCount(stats.consolidated_rows),
              FormatCount(stats.cancelled_rows)});
    report.BeginRow();
    report.Str("workload", "churn");
    report.Count("batch_rows", batch);
    report.Num("immediate_ms", immediate_ms);
    report.Num("deferred_ms", deferred_ms);
    report.Count("consolidated_rows", stats.consolidated_rows);
    report.Count("cancelled_rows", stats.cancelled_rows);
  }

  std::printf("\n%s\n", deferred.db.RefreshReport().c_str());
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
