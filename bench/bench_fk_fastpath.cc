// Experiment E4 (paper §6 / Example 1 claims): updates protected by
// foreign keys reduce to trivial maintenance. Measures V3 maintenance
// for part / customer / orders updates with FK exploitation on and off.
//
// Expected shape: with FKs, part and customer inserts are delta-only and
// orders inserts are free; without FKs, the maintainer computes (empty)
// join deltas and secondary fix-ups.

#include "bench_util.h"
#include "ivm/maintainer.h"
#include "tpch/views.h"

namespace ojv {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("TPC-H SF=%.3f\n", options.scale_factor);
  TpchInstance instance(options);

  ViewDef v3 = tpch::MakeV3(instance.catalog);
  MaintenanceOptions with_fk;
  MaintenanceOptions without_fk;
  without_fk.exploit_foreign_keys = false;
  ViewMaintainer fk_maintainer(&instance.catalog, v3, with_fk);
  ViewMaintainer nofk_maintainer(&instance.catalog, v3, without_fk);
  fk_maintainer.InitializeView();
  nofk_maintainer.InitializeView();

  const int64_t batch = 1000;
  JsonReport report("fk_fastpath", options);
  PrintHeader("FK fast path: V3 maintenance with/without FK exploitation",
              {"Update", "WithFK", "NoFK", "Speedup"});

  auto measure = [&](const std::string& label, const std::string& table,
                     std::vector<Row> rows) {
    Table* base = instance.catalog.GetTable(table);
    std::vector<Row> inserted = ApplyBaseInsert(base, rows);
    double fk_ms = TimeMs([&] { fk_maintainer.OnInsert(table, inserted); });
    double nofk_ms =
        TimeMs([&] { nofk_maintainer.OnInsert(table, inserted); });
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  nofk_ms / std::max(fk_ms, 1e-3));
    PrintRow({label, FormatMs(fk_ms), FormatMs(nofk_ms), speedup});
    report.BeginRow();
    report.Str("update", label);
    report.Num("with_fk_ms", fk_ms);
    report.Num("no_fk_ms", nofk_ms);

    // Restore.
    std::vector<Row> keys;
    const std::vector<int>& key_pos = base->key_positions();
    for (const Row& row : inserted) {
      Row key;
      for (int p : key_pos) key.push_back(row[static_cast<size_t>(p)]);
      keys.push_back(std::move(key));
    }
    std::vector<Row> deleted = ApplyBaseDelete(base, keys);
    fk_maintainer.OnDelete(table, deleted);
    nofk_maintainer.OnDelete(table, deleted);
  };

  measure("part+1000", "part", instance.refresh->NewParts(batch));
  measure("customer+1000", "customer", instance.refresh->NewCustomers(batch));
  measure("orders+1000", "orders", instance.refresh->NewOrders(batch));
  measure("lineitem+1000", "lineitem", instance.refresh->NewLineitems(batch));

  std::printf(
      "\nWith FKs: orders updates are proven view-neutral (Thm 3), part\n"
      "and customer inserts collapse to the delta itself (SimplifyTree);\n"
      "lineitem updates are unaffected by the optimization.\n");
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
