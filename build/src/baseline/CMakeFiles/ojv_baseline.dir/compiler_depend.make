# Empty compiler generated dependencies file for ojv_baseline.
# This may be replaced when dependencies are built.
