#include "exec/columnar/chunked_relation.h"

#include <utility>

#include "common/check.h"

namespace ojv {
namespace columnar {

namespace {

size_t WordsFor(int64_t rows) {
  return static_cast<size_t>((rows + 63) / 64);
}

}  // namespace

ColumnClass ClassOf(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
    case ValueType::kDate:
      return ColumnClass::kI64;
    case ValueType::kFloat64:
      return ColumnClass::kF64;
    case ValueType::kString:
      return ColumnClass::kValue;
  }
  return ColumnClass::kValue;
}

ChunkedRelation ChunkedRelation::FromRelation(const Relation& rel,
                                              int64_t chunk_rows) {
  OJV_CHECK(chunk_rows >= 1, "chunk_rows must be >= 1");
  ChunkedRelation out;
  out.schema_ = rel.schema();
  out.chunk_rows_ = chunk_rows;
  out.num_rows_ = rel.size();
  const int cols = out.schema_.num_columns();
  const int64_t n = out.num_rows_;
  const std::vector<Row>& rows = rel.rows();
  out.cols_.resize(static_cast<size_t>(cols));
  for (int c = 0; c < cols; ++c) {
    Column* col = &out.cols_[static_cast<size_t>(c)];
    col->cls = ClassOf(out.schema_.column(c).type);
    col->valid.assign(WordsFor(n), 0);
    // Typed fill; on the first value that contradicts the declared type
    // the whole column degrades to kValue and restarts.
    if (col->cls == ColumnClass::kI64) {
      col->i64.resize(static_cast<size_t>(n));
      for (int64_t r = 0; r < n; ++r) {
        const Value& v = rows[static_cast<size_t>(r)][static_cast<size_t>(c)];
        if (v.is_null()) continue;
        if (!v.is_int64()) {
          col->cls = ColumnClass::kValue;
          break;
        }
        col->i64[static_cast<size_t>(r)] = v.int64();
        col->SetValid(r);
      }
    } else if (col->cls == ColumnClass::kF64) {
      col->f64.resize(static_cast<size_t>(n));
      for (int64_t r = 0; r < n; ++r) {
        const Value& v = rows[static_cast<size_t>(r)][static_cast<size_t>(c)];
        if (v.is_null()) continue;
        if (!v.is_float64()) {
          col->cls = ColumnClass::kValue;
          break;
        }
        col->f64[static_cast<size_t>(r)] = v.float64();
        col->SetValid(r);
      }
    }
    if (col->cls == ColumnClass::kValue) {
      col->i64.clear();
      col->f64.clear();
      col->valid.assign(WordsFor(n), 0);
      col->val.resize(static_cast<size_t>(n));
      for (int64_t r = 0; r < n; ++r) {
        const Value& v = rows[static_cast<size_t>(r)][static_cast<size_t>(c)];
        if (v.is_null()) continue;
        col->val[static_cast<size_t>(r)] = v;
        col->SetValid(r);
      }
    }
  }
  // Null-extension masks: a row is null-extended on table T when T's
  // first key column is NULL (the per-table all-or-nothing invariant the
  // row engine's IsNullExtendedOn relies on too).
  for (const std::string& table : out.schema_.Tables()) {
    if (!out.schema_.HasFullKey(table)) continue;
    if (out.schema_.KeyPositions(table).empty()) continue;
    out.mask_tables_.push_back(table);
    out.table_null_.emplace_back();
  }
  out.RebuildNullMasks();
  return out;
}

ChunkedRelation ChunkedRelation::Allocate(
    BoundSchema schema, const std::vector<ColumnClass>& classes, int64_t rows,
    int64_t chunk_rows) {
  OJV_CHECK(chunk_rows >= 1, "chunk_rows must be >= 1");
  OJV_CHECK(static_cast<int>(classes.size()) == schema.num_columns(),
            "one class per column");
  ChunkedRelation out;
  out.schema_ = std::move(schema);
  out.chunk_rows_ = chunk_rows;
  out.num_rows_ = rows;
  out.cols_.resize(classes.size());
  for (size_t c = 0; c < classes.size(); ++c) {
    Column* col = &out.cols_[c];
    col->cls = classes[c];
    col->valid.assign(WordsFor(rows), 0);
    switch (col->cls) {
      case ColumnClass::kI64:
        col->i64.resize(static_cast<size_t>(rows));
        break;
      case ColumnClass::kF64:
        col->f64.resize(static_cast<size_t>(rows));
        break;
      case ColumnClass::kValue:
        col->val.resize(static_cast<size_t>(rows));
        break;
    }
  }
  for (const std::string& table : out.schema_.Tables()) {
    if (!out.schema_.HasFullKey(table)) continue;
    if (out.schema_.KeyPositions(table).empty()) continue;
    out.mask_tables_.push_back(table);
    out.table_null_.emplace_back();
  }
  out.RebuildNullMasks();
  return out;
}

void ChunkedRelation::RebuildNullMasks() {
  const int64_t n = num_rows_;
  for (size_t t = 0; t < mask_tables_.size(); ++t) {
    const std::vector<int>& keys = schema_.KeyPositions(mask_tables_[t]);
    const Column& key_col = cols_[static_cast<size_t>(keys[0])];
    std::vector<uint64_t>& mask = table_null_[t];
    mask.resize(WordsFor(n));
    for (size_t w = 0; w < mask.size(); ++w) {
      mask[w] = ~key_col.valid[w];
    }
    // Mask off the bits past num_rows in the last word.
    if (n % 64 != 0 && !mask.empty()) {
      mask.back() &= (uint64_t{1} << (n % 64)) - 1;
    }
  }
}

Relation ChunkedRelation::ToRelation() const {
  Relation out(schema_);
  const int cols = num_columns();
  std::vector<Row>* rows = out.mutable_rows();
  rows->resize(static_cast<size_t>(num_rows_));
  for (int64_t r = 0; r < num_rows_; ++r) {
    Row& row = (*rows)[static_cast<size_t>(r)];
    row.resize(static_cast<size_t>(cols));
    for (int c = 0; c < cols; ++c) {
      row[static_cast<size_t>(c)] = GetValue(c, r);
    }
  }
  return out;
}

Value ChunkedRelation::GetValue(int c, int64_t row) const {
  const Column& col = cols_[static_cast<size_t>(c)];
  if (!col.Valid(row)) return Value::Null();
  switch (col.cls) {
    case ColumnClass::kI64:
      return Value::Int64(col.i64[static_cast<size_t>(row)]);
    case ColumnClass::kF64:
      return Value::Float64(col.f64[static_cast<size_t>(row)]);
    case ColumnClass::kValue:
      return col.val[static_cast<size_t>(row)];
  }
  return Value::Null();
}

bool ChunkedRelation::CellsEqual(const ChunkedRelation& a, int ca, int64_t ra,
                                 const ChunkedRelation& b, int cb,
                                 int64_t rb) {
  const Column& x = a.cols_[static_cast<size_t>(ca)];
  const Column& y = b.cols_[static_cast<size_t>(cb)];
  const bool xv = x.Valid(ra);
  const bool yv = y.Valid(rb);
  if (xv != yv) return false;
  if (!xv) return true;  // NULL == NULL, matching Value::operator==.
  if (x.cls == ColumnClass::kI64 && y.cls == ColumnClass::kI64) {
    return x.i64[static_cast<size_t>(ra)] == y.i64[static_cast<size_t>(rb)];
  }
  if (x.cls == ColumnClass::kF64 && y.cls == ColumnClass::kF64) {
    return x.f64[static_cast<size_t>(ra)] == y.f64[static_cast<size_t>(rb)];
  }
  return a.GetValue(ca, ra) == b.GetValue(cb, rb);
}

}  // namespace columnar
}  // namespace ojv
