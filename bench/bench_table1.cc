// Reproduces Table 1 of the paper: the cardinality of every term of
// view V3 and the number of view rows affected when inserting lineitem
// rows.
//
//   Term       Cardinality   Rows affected
//   COLP       ...           ...
//   COL        ...           ...
//   C          ...           ...
//   P          ...           ...
//
// (Paper values at SF 10: COLP 5,208,168 / COL 131,702 / C 184,224 /
// P 789,131; rows affected by a 60,000-row insert: 4,863 / 128 / 323 /
// 346. Absolute numbers scale with --sf; the *pattern* — COLP dominates,
// the C and P fix-ups are small — is the reproduction target.)

#include <map>

#include "bench_util.h"
#include "ivm/maintainer.h"
#include "tpch/views.h"

namespace ojv {
namespace bench {
namespace {

std::string PatternOf(const BoundSchema& schema, const Row& row) {
  std::string label;
  for (const std::string table :
       {"customer", "orders", "lineitem", "part"}) {
    const std::vector<int>& keys = schema.KeyPositions(table);
    if (!row[static_cast<size_t>(keys[0])].is_null()) {
      label += static_cast<char>(std::toupper(table[0]));
    }
  }
  return label;
}

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  // The paper inserts 60,000 rows into a SF-10 database (~60M lineitems,
  // 1e-3 of the table); keep the largest requested batch.
  int64_t batch = options.batches.back();

  std::printf("TPC-H SF=%.3f, inserting %lld lineitem rows\n",
              options.scale_factor, static_cast<long long>(batch));
  TpchInstance instance(options);

  ViewDef v3 = tpch::MakeV3(instance.catalog);
  ViewMaintainer maintainer(&instance.catalog, v3, MaintenanceOptions());
  maintainer.InitializeView();

  // Term cardinalities before the insert.
  std::map<std::string, int64_t> cardinality;
  maintainer.view().ForEach([&](int64_t, const Row& row) {
    ++cardinality[PatternOf(maintainer.view().schema(), row)];
  });

  // RF1-style update: a tenth of the batch arrives as lineitems of
  // brand-new orders (inserted first; FK-immune for V3), the rest as
  // extra lineitems of existing orders. Lineitems of new in-window
  // orders are what convert {customer} orphans.
  std::vector<Row> new_orders =
      instance.refresh->NewOrders(std::max<int64_t>(1, batch / 40));
  std::vector<Row> orders_inserted =
      ApplyBaseInsert(instance.catalog.GetTable("orders"), new_orders);
  maintainer.OnInsert("orders", orders_inserted);

  std::vector<Row> rows = instance.refresh->NewLineitemsFor(new_orders, 4);
  std::vector<Row> more = instance.refresh->NewLineitems(
      std::max<int64_t>(0, batch - static_cast<int64_t>(rows.size())));
  rows.insert(rows.end(), more.begin(), more.end());
  std::vector<Row> inserted =
      ApplyBaseInsert(instance.catalog.GetTable("lineitem"), rows);
  MaintenanceStats stats = maintainer.OnInsert("lineitem", inserted);

  std::map<std::string, int64_t> after;
  maintainer.view().ForEach([&](int64_t, const Row& row) {
    ++after[PatternOf(maintainer.view().schema(), row)];
  });

  std::map<std::string, int64_t> affected;
  // Direct terms gain |delta per pattern| rows; indirect terms lose
  // orphans. Report |after - before| for C and P and the insert counts
  // for COLP / COL.
  for (const std::string pattern : {"COLP", "COL"}) {
    affected[pattern] = after[pattern] - cardinality[pattern];
  }
  for (const std::string pattern : {"C", "P"}) {
    affected[pattern] = cardinality[pattern] - after[pattern];
  }

  JsonReport report("table1", options);
  PrintHeader("Table 1: terms of view V3",
              {"Term", "Cardinality", "RowsAffected"});
  for (const std::string pattern : {"COLP", "COL", "C", "P"}) {
    PrintRow({pattern, FormatCount(cardinality[pattern]),
              FormatCount(affected[pattern])});
    report.BeginRow();
    report.Str("term", pattern);
    report.Count("cardinality", cardinality[pattern]);
    report.Count("rows_affected", affected[pattern]);
  }
  std::printf(
      "\nprimary delta rows: %lld, secondary fix-ups: %lld, "
      "maintenance time: %s\n",
      static_cast<long long>(stats.primary_rows),
      static_cast<long long>(stats.secondary_rows),
      FormatMs(stats.total_micros / 1000.0).c_str());
  report.BeginRow();
  report.Str("term", "summary");
  report.Count("primary_rows", stats.primary_rows);
  report.Count("secondary_rows", stats.secondary_rows);
  report.Num("maintenance_ms", stats.total_micros / 1000.0);
  report.Write();
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
