// Property test for the foreign-key optimizations (§6): under legal
// update sequences (constraint never violated), maintenance with FK
// exploitation enabled must produce exactly the same views as with it
// disabled, and both must match recomputation. Exercises normal-form
// term pruning, the Theorem 3 graph reduction, and SimplifyTree.

#include <gtest/gtest.h>

#include <set>

#include "baseline/recompute.h"
#include "ivm/maintainer.h"
#include "test_util.h"

namespace ojv {
namespace {

// parent P(p_id, p_a), child C(c_id, c_fk NOT NULL -> P, c_a),
// detail D(d_id, d_a).
void CreateFkSchema(Catalog* catalog) {
  catalog->CreateTable(
      "P",
      Schema({ColumnDef{"p_id", ValueType::kInt64, false},
              ColumnDef{"p_a", ValueType::kInt64, true}}),
      {"p_id"});
  catalog->CreateTable(
      "C",
      Schema({ColumnDef{"c_id", ValueType::kInt64, false},
              ColumnDef{"c_fk", ValueType::kInt64, false},
              ColumnDef{"c_a", ValueType::kInt64, true}}),
      {"c_id"});
  catalog->CreateTable(
      "D",
      Schema({ColumnDef{"d_id", ValueType::kInt64, false},
              ColumnDef{"d_a", ValueType::kInt64, true}}),
      {"d_id"});
  catalog->AddForeignKey({"C", {"c_fk"}, "P", {"p_id"}});
}

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

// P fo (C lo D on c_a = d_a) on p_id = c_fk — the Example 1 shape with
// the FK join at the outer join.
ViewDef MakeFkView(const Catalog& catalog) {
  RelExprPtr cd = RelExpr::Join(JoinKind::kLeftOuter, RelExpr::Scan("C"),
                                RelExpr::Scan("D"), Eq("C", "c_a", "D", "d_a"));
  RelExprPtr tree = RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("P"),
                                  cd, Eq("P", "p_id", "C", "c_fk"));
  std::vector<ColumnRef> output = {{"P", "p_id"}, {"P", "p_a"},
                                   {"C", "c_id"}, {"C", "c_fk"},
                                   {"C", "c_a"},  {"D", "d_id"},
                                   {"D", "d_a"}};
  return ViewDef("fk_view", tree, std::move(output), catalog);
}

struct FkWorld {
  Catalog catalog;
  Rng rng;
  int64_t next_key = 1;

  explicit FkWorld(uint64_t seed) : rng(seed) {
    CreateFkSchema(&catalog);
    for (int i = 0; i < 12; ++i) InsertParent();
    for (int i = 0; i < 20; ++i) InsertChild();
    for (int i = 0; i < 10; ++i) InsertDetail();
  }

  Row InsertParent() {
    Row row{Value::Int64(next_key++), Value::Int64(rng.Uniform(0, 4))};
    catalog.GetTable("P")->Insert(row);
    return row;
  }

  Row InsertChild() {
    // Reference a random existing parent.
    std::vector<Row> keys =
        testing_util::SampleKeys(*catalog.GetTable("P"), &rng, 1);
    Row row{Value::Int64(next_key++), keys[0][0],
            Value::Int64(rng.Uniform(0, 4))};
    catalog.GetTable("C")->Insert(row);
    return row;
  }

  Row InsertDetail() {
    Row row{Value::Int64(next_key++), Value::Int64(rng.Uniform(0, 4))};
    catalog.GetTable("D")->Insert(row);
    return row;
  }

  // A parent key with no referencing children (legal to delete), or an
  // empty row if none exists.
  std::vector<Row> DeletableParentKeys(int n) {
    std::set<int64_t> referenced;
    catalog.GetTable("C")->ForEach(
        [&](const Row& row) { referenced.insert(row[1].int64()); });
    std::vector<Row> out;
    catalog.GetTable("P")->ForEach([&](const Row& row) {
      if (static_cast<int>(out.size()) < n &&
          referenced.count(row[0].int64()) == 0) {
        out.push_back(Row{row[0]});
      }
    });
    return out;
  }
};

TEST(FkPropertyTest, FkOptimizationsPreserveCorrectness) {
  for (uint64_t seed = 301; seed <= 320; ++seed) {
    FkWorld world(seed);
    ViewDef view = MakeFkView(world.catalog);

    MaintenanceOptions with_fk;
    MaintenanceOptions without_fk;
    without_fk.exploit_foreign_keys = false;
    ViewMaintainer fast(&world.catalog, view, with_fk);
    ViewMaintainer slow(&world.catalog, view, without_fk);
    fast.InitializeView();
    slow.InitializeView();

    for (int op = 0; op < 10; ++op) {
      int choice = static_cast<int>(world.rng.Uniform(0, 5));
      std::string table;
      std::vector<Row> rows;
      bool is_insert = true;
      switch (choice) {
        case 0:
          table = "P";
          rows = {world.InsertParent()};
          break;
        case 1:
          table = "C";
          rows = {world.InsertChild(), world.InsertChild()};
          break;
        case 2:
          table = "D";
          rows = {world.InsertDetail()};
          break;
        case 3: {
          table = "C";
          is_insert = false;
          std::vector<Row> keys = testing_util::SampleKeys(
              *world.catalog.GetTable("C"), &world.rng, 2);
          rows = ApplyBaseDelete(world.catalog.GetTable("C"), keys);
          break;
        }
        case 4: {
          table = "P";
          is_insert = false;
          rows = ApplyBaseDelete(world.catalog.GetTable("P"),
                                 world.DeletableParentKeys(2));
          break;
        }
        case 5: {
          table = "D";
          is_insert = false;
          std::vector<Row> keys = testing_util::SampleKeys(
              *world.catalog.GetTable("D"), &world.rng, 2);
          rows = ApplyBaseDelete(world.catalog.GetTable("D"), keys);
          break;
        }
      }
      std::string violation;
      ASSERT_TRUE(world.catalog.CheckForeignKeys(&violation)) << violation;
      if (is_insert) {
        fast.OnInsert(table, rows);
        slow.OnInsert(table, rows);
      } else {
        fast.OnDelete(table, rows);
        slow.OnDelete(table, rows);
      }
      std::string diff;
      ASSERT_TRUE(ViewMatchesRecompute(world.catalog, view, fast.view(),
                                       &diff))
          << "seed " << seed << " op " << op << " (FK on): " << diff;
      ASSERT_TRUE(
          SameBag(fast.view().AsRelation(), slow.view().AsRelation(), &diff))
          << "seed " << seed << " op " << op << " (FK on vs off): " << diff;
    }
  }
}

TEST(FkPropertyTest, ParentInsertTakesTheFastPath) {
  FkWorld world(999);
  ViewDef view = MakeFkView(world.catalog);
  ViewMaintainer maintainer(&world.catalog, view, MaintenanceOptions());
  maintainer.InitializeView();

  Row parent = world.InsertParent();
  MaintenanceStats stats = maintainer.OnInsert("P", {parent});
  EXPECT_TRUE(stats.fk_fast_path);
  EXPECT_EQ(stats.primary_rows, 1);
  EXPECT_EQ(stats.secondary_rows, 0);
}

TEST(FkPropertyTest, CascadingDeleteDisablesTheOptimization) {
  // With a cascading FK, Theorem 3 / SimplifyTree must not be used; the
  // maintainer falls back to full delta computation and stays correct.
  Catalog catalog;
  catalog.CreateTable(
      "P",
      Schema({ColumnDef{"p_id", ValueType::kInt64, false},
              ColumnDef{"p_a", ValueType::kInt64, true}}),
      {"p_id"});
  catalog.CreateTable(
      "C",
      Schema({ColumnDef{"c_id", ValueType::kInt64, false},
              ColumnDef{"c_fk", ValueType::kInt64, false}}),
      {"c_id"});
  ForeignKey fk{"C", {"c_fk"}, "P", {"p_id"}};
  fk.cascading_delete = true;
  catalog.AddForeignKey(fk);

  RelExprPtr tree = RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("P"),
                                  RelExpr::Scan("C"),
                                  Eq("P", "p_id", "C", "c_fk"));
  ViewDef view("v", tree,
               {{"P", "p_id"}, {"P", "p_a"}, {"C", "c_id"}, {"C", "c_fk"}},
               catalog);
  ViewMaintainer maintainer(&catalog, view, MaintenanceOptions());
  maintainer.InitializeView();

  catalog.GetTable("P")->Insert(Row{Value::Int64(1), Value::Int64(0)});
  MaintenanceStats stats =
      maintainer.OnInsert("P", {Row{Value::Int64(1), Value::Int64(0)}});
  // No fast path: the join to C is kept in the delta expression.
  EXPECT_FALSE(stats.fk_fast_path);
  std::string diff;
  EXPECT_TRUE(ViewMatchesRecompute(catalog, view, maintainer.view(), &diff))
      << diff;
}

}  // namespace
}  // namespace ojv
