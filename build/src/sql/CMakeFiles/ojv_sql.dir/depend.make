# Empty dependencies file for ojv_sql.
# This may be replaced when dependencies are built.
