#!/usr/bin/env bash
# Full verification: build and run the test suite twice — a plain
# Release build, then an ASan/UBSan build (-DOJV_SANITIZE=address,undefined),
# which in particular checks the background-refresh worker for races and
# lifetime bugs. Run from anywhere; builds land in build-check-* at the
# repository root.
#
#   tools/check.sh            # both configurations
#   tools/check.sh release    # Release only
#   tools/check.sh sanitize   # ASan/UBSan only

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
mode="${1:-all}"

run_config() {
  local name="$1"; shift
  local dir="$root/build-check-$name"
  echo "==> [$name] configure"
  cmake -B "$dir" -S "$root" "$@" >/dev/null
  echo "==> [$name] build"
  cmake --build "$dir" -j "$jobs" >/dev/null
  echo "==> [$name] ctest"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

case "$mode" in
  release|all)
    run_config release -DCMAKE_BUILD_TYPE=Release
    ;;&
  sanitize|all)
    run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DOJV_SANITIZE=address,undefined
    ;;&
  release|sanitize|all)
    echo "==> all requested configurations passed"
    ;;
  *)
    echo "usage: tools/check.sh [release|sanitize|all]" >&2
    exit 2
    ;;
esac
