#ifndef OJV_IVM_EXPLAIN_H_
#define OJV_IVM_EXPLAIN_H_

#include <string>

#include "ivm/maintainer.h"
#include "obs/trace.h"

namespace ojv {

/// Renders a human-readable maintenance report for a view: its normal
/// form, subsumption graph, and — per base table — the affected-term
/// classification, the ΔV^D expression (after FK simplification and
/// left-deep conversion), and the secondary-delta work list. This is the
/// library's EXPLAIN: what will happen when each table is updated, and
/// why.
std::string ExplainMaintenance(const ViewMaintainer& maintainer);

/// EXPLAIN with measured statistics: the static report above, followed by
/// one section per traced maintenance of this view. Each section breaks
/// the invocation into its stages (primary delta, apply, secondary delta
/// or the reason it was skipped) and renders the primary-delta plan tree
/// annotated per node with the row counts and inclusive timings recorded
/// by the evaluator — the library's EXPLAIN ANALYZE. The per-node stats
/// come from zipping the plan tree with the trace's post-order exec.*
/// span sequence; nodes the trace cannot account for (e.g. a different
/// plan policy was used) render without annotations and are counted at
/// the end of the section.
std::string ExplainMaintenance(const ViewMaintainer& maintainer,
                               const obs::TraceContext& trace);

/// The normal-form section only (terms + subsumption edges).
std::string ExplainNormalForm(const ViewMaintainer& maintainer);

}  // namespace ojv

#endif  // OJV_IVM_EXPLAIN_H_
