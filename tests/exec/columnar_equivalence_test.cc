// Columnar-vs-row equivalence over the full maintenance pipeline: the
// chunked columnar engine must produce Relation::Equals view contents to
// the row-at-a-time reference at every chunk size (1 = every row its own
// chunk, 7 = chunk edges misaligned with the 64-bit validity words, 1024
// = the default) and every thread count, across randomized insert/delete
// rounds against each TPC-H view's base tables. parallel_min_rows is
// forced to 1 so even test-sized inputs take the parallel chunk loops.
//
// A second battery drives the standalone columnar operators directly
// against Evaluator-computed row results on randomized relations —
// covering NULL-heavy key columns, duplicate rows, and every join kind
// the engine claims.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/columnar/columnar_ops.h"
#include "exec/evaluator.h"
#include "exec/thread_pool.h"
#include "ivm/maintainer.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace {

struct Variant {
  std::string name;
  MaintenanceOptions options;
};

std::vector<Variant> Variants() {
  std::vector<Variant> variants;
  variants.push_back({"row-reference", MaintenanceOptions()});
  for (int64_t chunk_rows : {int64_t{1}, int64_t{7}, int64_t{1024}}) {
    for (int threads : {1, 2, 8}) {
      Variant v{"columnar-c" + std::to_string(chunk_rows) + "-t" +
                    std::to_string(threads),
                MaintenanceOptions()};
      v.options.exec.engine = ExecEngine::kColumnar;
      v.options.exec.chunk_rows = chunk_rows;
      v.options.exec.num_threads = threads;
      v.options.exec.parallel_min_rows = 1;
      v.options.exec.morsel_rows = 64;
      variants.push_back(v);
    }
  }
  // The §5.3 base-table strategy evaluates full expressions through the
  // evaluator — the heaviest columnar use in the pipeline.
  Variant from_base{"columnar-from-base", MaintenanceOptions()};
  from_base.options.exec.engine = ExecEngine::kColumnar;
  from_base.options.exec.chunk_rows = 7;
  from_base.options.exec.num_threads = 4;
  from_base.options.exec.parallel_min_rows = 1;
  from_base.options.exec.morsel_rows = 64;
  from_base.options.secondary_strategy = SecondaryStrategy::kFromBaseTables;
  variants.push_back(from_base);
  return variants;
}

class ColumnarEquivalenceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::CreateSchema(&catalog_);
    tpch::DbgenOptions options;
    options.scale_factor = 0.002;
    dbgen_ = std::make_unique<tpch::Dbgen>(options);
    dbgen_->Populate(&catalog_);
    refresh_ = std::make_unique<tpch::RefreshStream>(&catalog_, dbgen_.get(),
                                                     /*seed=*/20260808);
  }

  std::vector<Row> NewRowsFor(const std::string& table, int64_t n) {
    if (table == "lineitem") return refresh_->NewLineitems(n);
    if (table == "orders") return refresh_->NewOrders(n);
    if (table == "part") return refresh_->NewParts(n);
    if (table == "customer") return refresh_->NewCustomers(n);
    return {};
  }

  void CheckView(const ViewDef& view) {
    std::vector<Variant> variants = Variants();
    std::vector<std::unique_ptr<ViewMaintainer>> maintainers;
    for (const Variant& variant : variants) {
      maintainers.push_back(std::make_unique<ViewMaintainer>(
          &catalog_, view, variant.options));
      maintainers.back()->InitializeView();
    }
    Relation reference = maintainers[0]->view().AsRelation();
    for (size_t i = 1; i < maintainers.size(); ++i) {
      EXPECT_TRUE(reference.Equals(maintainers[i]->view().AsRelation()))
          << view.name() << " init diverges under " << variants[i].name;
    }

    auto compare_all = [&](const std::string& when) {
      Relation expected = maintainers[0]->view().AsRelation();
      for (size_t i = 1; i < maintainers.size(); ++i) {
        EXPECT_TRUE(expected.Equals(maintainers[i]->view().AsRelation()))
            << view.name() << " diverges under " << variants[i].name
            << " after " << when;
      }
    };

    for (const std::string& table : view.tables()) {
      std::vector<Row> rows = NewRowsFor(table, 200);
      if (rows.empty()) continue;
      Table* base = catalog_.GetTable(table);
      std::vector<Row> inserted = ApplyBaseInsert(base, rows);
      for (auto& maintainer : maintainers) {
        maintainer->OnInsert(table, inserted);
      }
      compare_all("insert into " + table);

      std::vector<Row> keys;
      keys.reserve(inserted.size());
      for (const Row& row : inserted) {
        Row key;
        for (int p : base->key_positions()) {
          key.push_back(row[static_cast<size_t>(p)]);
        }
        keys.push_back(std::move(key));
      }
      std::vector<Row> deleted = ApplyBaseDelete(base, keys);
      for (auto& maintainer : maintainers) {
        maintainer->OnDelete(table, deleted);
      }
      compare_all("delete from " + table);
    }
  }

  Catalog catalog_;
  std::unique_ptr<tpch::Dbgen> dbgen_;
  std::unique_ptr<tpch::RefreshStream> refresh_;
};

TEST_F(ColumnarEquivalenceFixture, OjViewColumnarMatchesRow) {
  CheckView(tpch::MakeOjView(catalog_));
}

TEST_F(ColumnarEquivalenceFixture, V2ColumnarMatchesRow) {
  CheckView(tpch::MakeV2(catalog_));
}

TEST_F(ColumnarEquivalenceFixture, V3ColumnarMatchesRow) {
  CheckView(tpch::MakeV3(catalog_));
}

// --- Direct operator-level equivalence on randomized inputs ---

// Randomized two-table relations with NULL-able key columns, duplicate
// rows, and mixed types; the columnar ops must bag-match the row engine
// on every operator they implement.
class ColumnarOpsFixture : public ::testing::Test {
 protected:
  // Schema: l(k key, v, w) ⊎-style combined with r(k key, x). Keys are
  // drawn from a small domain so joins hit and miss both.
  static BoundSchema LeftSchema() {
    BoundSchema s;
    s.AddColumn(BoundColumn{"l", "k", ValueType::kInt64, 0});
    s.AddColumn(BoundColumn{"l", "v", ValueType::kFloat64, -1});
    s.AddColumn(BoundColumn{"l", "w", ValueType::kString, -1});
    return s;
  }
  static BoundSchema RightSchema() {
    BoundSchema s;
    s.AddColumn(BoundColumn{"r", "k", ValueType::kInt64, 0});
    s.AddColumn(BoundColumn{"r", "x", ValueType::kInt64, -1});
    return s;
  }

  Relation RandomLeft(Rng* rng, int64_t n) {
    Relation rel(LeftSchema());
    for (int64_t i = 0; i < n; ++i) {
      Row row;
      row.push_back(rng->Chance(0.15) ? Value::Null()
                                      : Value::Int64(rng->Uniform(0, 20)));
      row.push_back(rng->Chance(0.2)
                        ? Value::Null()
                        : Value::Float64(
                              static_cast<double>(rng->Uniform(0, 10)) * 0.5));
      row.push_back(rng->Chance(0.2)
                        ? Value::Null()
                        : Value::String("s" + std::to_string(
                                                  rng->Uniform(0, 4))));
      rel.Add(std::move(row));
    }
    return rel;
  }

  Relation RandomRight(Rng* rng, int64_t n) {
    Relation rel(RightSchema());
    for (int64_t i = 0; i < n; ++i) {
      Row row;
      row.push_back(rng->Chance(0.15) ? Value::Null()
                                      : Value::Int64(rng->Uniform(0, 20)));
      row.push_back(Value::Int64(rng->Uniform(-5, 5)));
      rel.Add(std::move(row));
    }
    return rel;
  }

  // Configs covering chunk-boundary and threading interactions.
  std::vector<ExecConfig> Configs() {
    std::vector<ExecConfig> configs;
    for (int64_t chunk_rows : {int64_t{1}, int64_t{7}, int64_t{1024}}) {
      for (int threads : {1, 8}) {
        ExecConfig config;
        config.engine = ExecEngine::kColumnar;
        config.chunk_rows = chunk_rows;
        config.num_threads = threads;
        config.parallel_min_rows = 1;
        config.morsel_rows = 64;
        configs.push_back(config);
      }
    }
    return configs;
  }
};

TEST_F(ColumnarOpsFixture, JoinKindsMatchRowEngine) {
  Rng rng(11);
  Catalog empty_catalog;
  for (int round = 0; round < 3; ++round) {
    Relation l = RandomLeft(&rng, 60 + round * 50);
    Relation r = RandomRight(&rng, 40 + round * 30);
    ScalarExprPtr pred = ScalarExpr::Compare(CompareOp::kEq,
                                             ScalarExpr::Column("l", "k"),
                                             ScalarExpr::Column("r", "k"));
    for (JoinKind kind :
         {JoinKind::kInner, JoinKind::kLeftOuter, JoinKind::kRightOuter,
          JoinKind::kFullOuter, JoinKind::kLeftSemi, JoinKind::kLeftAnti}) {
      // Row-engine reference through the evaluator.
      Evaluator reference(&empty_catalog);
      reference.BindDelta("#l", &l);
      reference.BindDelta("#r", &r);
      RelExprPtr expr =
          RelExpr::Join(kind, RelExpr::DeltaScan("#l"),
                        RelExpr::DeltaScan("#r"), pred);
      Relation expected = reference.EvalToRelation(expr);

      for (const ExecConfig& config : Configs()) {
        ThreadPool pool(config.num_threads);
        Evaluator evaluator(&empty_catalog);
        evaluator.set_exec(config, &pool);
        evaluator.BindDelta("#l", &l);
        evaluator.BindDelta("#r", &r);
        Relation actual = evaluator.EvalToRelation(expr);
        EXPECT_TRUE(expected.Equals(actual))
            << "join kind " << static_cast<int>(kind) << " diverges at chunk "
            << config.chunk_rows << " threads " << config.num_threads
            << " round " << round;
      }
    }
  }
}

TEST_F(ColumnarOpsFixture, UnaryOpsMatchRowEngine) {
  Rng rng(12);
  Catalog empty_catalog;
  for (int round = 0; round < 3; ++round) {
    Relation l = RandomLeft(&rng, 80 + round * 60);
    // σ with a mixed predicate (SIMD fast path + general string leaf,
    // AND over possibly-unknown operands).
    std::vector<ScalarExprPtr> conjuncts;
    conjuncts.push_back(ScalarExpr::Compare(
        CompareOp::kGe, ScalarExpr::Column("l", "k"),
        ScalarExpr::Literal(Value::Int64(3))));
    conjuncts.push_back(ScalarExpr::Not(ScalarExpr::Compare(
        CompareOp::kEq, ScalarExpr::Column("l", "w"),
        ScalarExpr::Literal(Value::String("s1")))));
    RelExprPtr select_expr = RelExpr::Select(RelExpr::DeltaScan("#l"),
                                             ScalarExpr::And(conjuncts));
    std::vector<ColumnRef> proj_cols = {ColumnRef{"l", "k"},
                                        ColumnRef{"l", "v"}};
    RelExprPtr project_expr =
        RelExpr::Project(RelExpr::DeltaScan("#l"), proj_cols);
    RelExprPtr dedup_expr = RelExpr::Dedup(project_expr);

    for (const RelExprPtr& expr : {select_expr, project_expr, dedup_expr}) {
      Evaluator reference(&empty_catalog);
      reference.BindDelta("#l", &l);
      Relation expected = reference.EvalToRelation(expr);
      for (const ExecConfig& config : Configs()) {
        ThreadPool pool(config.num_threads);
        Evaluator evaluator(&empty_catalog);
        evaluator.set_exec(config, &pool);
        evaluator.BindDelta("#l", &l);
        Relation actual = evaluator.EvalToRelation(expr);
        EXPECT_TRUE(expected.Equals(actual))
            << expr->ToString() << " diverges at chunk " << config.chunk_rows
            << " threads " << config.num_threads << " round " << round;
      }
    }
  }
}

TEST_F(ColumnarOpsFixture, SubsumeAndDedupMatchRowEngine) {
  Rng rng(13);
  // Rows sharing non-null parts with varying null patterns — the shape
  // RemoveSubsumed exists for.
  BoundSchema schema;
  schema.AddColumn(BoundColumn{"a", "k", ValueType::kInt64, 0});
  schema.AddColumn(BoundColumn{"b", "k", ValueType::kInt64, 0});
  schema.AddColumn(BoundColumn{"b", "y", ValueType::kInt64, -1});
  for (int round = 0; round < 3; ++round) {
    Relation rel(schema);
    for (int64_t i = 0; i < 120; ++i) {
      int64_t k = rng.Uniform(0, 8);
      bool b_null = rng.Chance(0.4);
      Row row;
      row.push_back(Value::Int64(k));
      row.push_back(b_null ? Value::Null() : Value::Int64(k * 2));
      row.push_back(b_null ? Value::Null() : Value::Int64(rng.Uniform(0, 2)));
      rel.Add(std::move(row));
    }
    Catalog empty_catalog;
    for (bool dedup : {false, true}) {
      RelExprPtr expr = dedup
                            ? RelExpr::Dedup(RelExpr::DeltaScan("#in"))
                            : RelExpr::SubsumeRemove(RelExpr::DeltaScan("#in"));
      Evaluator reference(&empty_catalog);
      reference.BindDelta("#in", &rel);
      Relation expected = reference.EvalToRelation(expr);
      for (const ExecConfig& config : Configs()) {
        ThreadPool pool(config.num_threads);
        Evaluator evaluator(&empty_catalog);
        evaluator.set_exec(config, &pool);
        evaluator.BindDelta("#in", &rel);
        Relation actual = evaluator.EvalToRelation(expr);
        EXPECT_TRUE(expected.Equals(actual))
            << (dedup ? "dedup" : "subsume") << " diverges at chunk "
            << config.chunk_rows << " threads " << config.num_threads;
      }
    }
  }
}

}  // namespace
}  // namespace ojv
