#include "ivm/heavy_state.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace ojv {

HeavyState::HeavyState(int64_t max_pending_rows)
    : max_pending_rows_(max_pending_rows) {}

void HeavyState::EnsureTable(const std::string& table,
                             const std::vector<int>& key_positions) {
  if (fold_ != nullptr && table_ == table) return;
  OJV_CHECK(empty(), "pending lazy state spans tables");
  table_ = table;
  fold_ = std::make_unique<deferred::NetFold>(key_positions);
  pinned_.clear();
  pending_rows_ = 0;
}

void HeavyState::DivertInsert(const std::string& table,
                              const std::vector<int>& key_positions,
                              const Row& row) {
  EnsureTable(table, key_positions);
  fold_->AddInsert(row);
  ++pending_rows_;
}

void HeavyState::DivertDelete(const std::string& table,
                              const std::vector<int>& key_positions,
                              const Row& row) {
  EnsureTable(table, key_positions);
  fold_->AddDelete(row);
  ++pending_rows_;
}

void HeavyState::Pin(int column_pos, const Value& v) {
  pinned_[column_pos].insert(v);
}

bool HeavyState::IsPinned(int column_pos, const Value& v) const {
  auto it = pinned_.find(column_pos);
  return it != pinned_.end() && it->second.count(v) > 0;
}

HeavyState::DrainBatch HeavyState::Take() {
  DrainBatch batch;
  batch.table = table_;
  if (fold_ != nullptr) {
    deferred::NetFold::Net net = fold_->Take();
    batch.deletes = std::move(net.deletes);
    batch.inserts = std::move(net.inserts);
    batch.update_pairs = net.update_pairs;
    batch.raw_entries = net.raw_entries;
  }
  fold_.reset();
  table_.clear();
  pinned_.clear();
  pending_rows_ = 0;
  return batch;
}

HeavyLightController::HeavyLightController(const Catalog* catalog,
                                           const ViewDef& view,
                                           opt::HeavyHitterConfig config)
    : catalog_(catalog),
      hitters_(catalog, config),
      state_(config.max_pending_rows) {
  hitters_.set_scope(view.name());
  // Join edges: cross-table equality conjuncts. Heaviness of a ΔT row is
  // the frequency of its join-key value in the counterpart column — the
  // fanout the delta pipeline pays for that row.
  for (const ScalarExprPtr& c : view.conjuncts()) {
    if (c->kind() != ScalarKind::kCompare ||
        c->compare_op() != CompareOp::kEq ||
        c->left()->kind() != ScalarKind::kColumn ||
        c->right()->kind() != ScalarKind::kColumn) {
      continue;
    }
    const ColumnRef& l = c->left()->column();
    const ColumnRef& r = c->right()->column();
    if (l.table == r.table) continue;
    const Table* lt = catalog_->GetTable(l.table);
    const Table* rt = catalog_->GetTable(r.table);
    OJV_CHECK(lt != nullptr && rt != nullptr, "view references unknown table");
    edges_[l.table].push_back(
        {lt->schema().IndexOf(l.column), r.table, r.column});
    edges_[r.table].push_back(
        {rt->schema().IndexOf(r.column), l.table, l.column});
    hitters_.Track(l.table, l.column);
    hitters_.Track(r.table, r.column);
  }
  for (const auto& [table, table_edges] : edges_) {
    std::vector<int>& positions = probe_positions_[table];
    for (const JoinEdge& e : table_edges) positions.push_back(e.position);
    std::sort(positions.begin(), positions.end());
    positions.erase(std::unique(positions.begin(), positions.end()),
                    positions.end());
  }
}

bool HeavyLightController::ProbeHeavy(const JoinEdge& edge, int pos,
                                      const Value& v, bool* demoted) {
  if (state_.IsPinned(pos, v)) return true;
  bool demoted_now = false;
  bool heavy =
      hitters_.IsHeavy(edge.other_table, edge.other_column, v, &demoted_now);
  if (demoted_now) {
    *demoted = true;
    if constexpr (obs::kEnabled) {
      obs::Registry::Global().GetCounter("ojv.ivm.heavy.demotions").Add(1);
    }
  }
  return heavy;
}

std::vector<Row> HeavyLightController::SplitBatch(const std::string& table,
                                                  const std::vector<Row>& rows,
                                                  bool is_insert) {
  const Table* t = catalog_->GetTable(table);
  OJV_CHECK(t != nullptr, "split over unknown table");
  const std::vector<JoinEdge>& table_edges = edges_.at(table);
  // Classification may demote a key that still has pinned pending state;
  // the pin would keep diverting it forever, so fold everything in and
  // classify once more with the pins gone. The second pass starts from an
  // empty state and cannot need a third.
  for (int pass = 0; pass < 2; ++pass) {
    bool demoted = false;
    auto probe = [&](int pos, const Value& v) {
      bool heavy = false;
      for (const JoinEdge& e : table_edges) {
        if (e.position == pos && ProbeHeavy(e, pos, v, &demoted)) heavy = true;
      }
      return heavy;
    };
    SplitResult split =
        SplitByHeavyKeys(rows, probe_positions_.at(table), probe);
    if (pass == 0 && demoted && HasPending()) {
      OJV_CHECK(drain_hook_ != nullptr, "heavy-light split without drain hook");
      drain_hook_();
      continue;
    }
    for (const Row& row : split.heavy) {
      if (is_insert) {
        state_.DivertInsert(table, t->key_positions(), row);
      } else {
        state_.DivertDelete(table, t->key_positions(), row);
      }
      PinRow(table, row);
    }
    if (!split.heavy.empty()) {
      if constexpr (obs::kEnabled) {
        obs::Registry::Global()
            .GetCounter("ojv.ivm.heavy.diverted_rows")
            .Add(static_cast<int64_t>(split.heavy.size()));
      }
    }
    if (state_.AtCapacity() && drain_hook_ != nullptr) drain_hook_();
    return std::move(split.light);
  }
  OJV_CHECK(false, "unreachable");
  return {};
}

void HeavyLightController::SplitPairs(const std::string& table,
                                      const std::vector<Row>& old_rows,
                                      const std::vector<Row>& new_rows,
                                      std::vector<Row>* light_old,
                                      std::vector<Row>* light_new) {
  const Table* t = catalog_->GetTable(table);
  OJV_CHECK(t != nullptr, "split over unknown table");
  const std::vector<JoinEdge>& table_edges = edges_.at(table);
  for (int pass = 0; pass < 2; ++pass) {
    bool demoted = false;
    auto probe = [&](int pos, const Value& v) {
      bool heavy = false;
      for (const JoinEdge& e : table_edges) {
        if (e.position == pos && ProbeHeavy(e, pos, v, &demoted)) heavy = true;
      }
      return heavy;
    };
    SplitPairResult split = SplitPairsByHeavyKeys(
        old_rows, new_rows, probe_positions_.at(table), probe);
    if (pass == 0 && demoted && HasPending()) {
      OJV_CHECK(drain_hook_ != nullptr, "heavy-light split without drain hook");
      drain_hook_();
      continue;
    }
    for (size_t i = 0; i < split.heavy_old.size(); ++i) {
      // The pair diverts as delete(old)+insert(new); the fold nets
      // repeated updates of one key into a single update pair.
      state_.DivertDelete(table, t->key_positions(), split.heavy_old[i]);
      state_.DivertInsert(table, t->key_positions(), split.heavy_new[i]);
      PinRow(table, split.heavy_old[i]);
      PinRow(table, split.heavy_new[i]);
    }
    if (!split.heavy_old.empty()) {
      if constexpr (obs::kEnabled) {
        obs::Registry::Global()
            .GetCounter("ojv.ivm.heavy.diverted_rows")
            .Add(static_cast<int64_t>(split.heavy_old.size() +
                                      split.heavy_new.size()));
      }
    }
    *light_old = std::move(split.light_old);
    *light_new = std::move(split.light_new);
    if (state_.AtCapacity() && drain_hook_ != nullptr) drain_hook_();
    return;
  }
  OJV_CHECK(false, "unreachable");
}

void HeavyLightController::PinRow(const std::string& table, const Row& row) {
  for (int pos : probe_positions_.at(table)) {
    const Value& v = row[static_cast<size_t>(pos)];
    if (!v.is_null()) state_.Pin(pos, v);
  }
}

std::unordered_map<std::string, opt::PartitionExclusion>
HeavyLightController::Exclusions(const std::string& delta_table) {
  std::unordered_map<std::string, opt::PartitionExclusion> out;
  auto it = edges_.find(delta_table);
  if (it == edges_.end()) return out;
  for (const JoinEdge& e : it->second) {
    // Max over the columns joining the same counterpart table: summing
    // would double-count its rows.
    opt::PartitionExclusion& ex = out[e.other_table];
    ex.rows = std::max(
        ex.rows, static_cast<double>(
                     hitters_.PromotedMass(e.other_table, e.other_column)));
    ex.keys = std::max(
        ex.keys, static_cast<double>(
                     hitters_.PromotedKeys(e.other_table, e.other_column)));
  }
  return out;
}

}  // namespace ojv
