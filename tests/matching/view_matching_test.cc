// View matching: answering queries from materialized outer-join views.
// Every accepted rewrite is checked against direct evaluation; the
// rejected cases are exactly the ones that would need [6]'s null-if
// compensation or are genuinely unanswerable.

#include "matching/view_matching.h"

#include "ivm/database.h"

#include <gtest/gtest.h>

#include "baseline/recompute.h"
#include "exec/evaluator.h"
#include "ivm/maintainer.h"
#include "test_util.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace {

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

class ViewMatchingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::CreateSchema(&catalog_);
    tpch::DbgenOptions options;
    options.scale_factor = 0.002;
    tpch::Dbgen dbgen(options);
    dbgen.Populate(&catalog_);
  }

  // part fo (orders lo lineitem) — Example 1's view, full output.
  ViewDef MakeOjView() { return tpch::MakeOjView(catalog_); }

  // Checks that the rewrite answer equals direct evaluation.
  void ExpectAnswersMatch(const ViewDef& query, const ViewDef& view,
                          const MaterializedView& contents) {
    std::optional<Relation> from_view =
        AnswerFromView(query, view, contents, catalog_);
    ASSERT_TRUE(from_view.has_value());
    Relation direct = RecomputeView(catalog_, query);
    std::string diff;
    EXPECT_TRUE(SameBag(direct, *from_view, &diff)) << diff;
  }

  Catalog catalog_;
};

TEST_F(ViewMatchingTest, IdentityMatch) {
  ViewDef view = MakeOjView();
  ViewMaintainer maintainer(&catalog_, view, MaintenanceOptions());
  maintainer.InitializeView();
  MatchResult match = MatchView(view, view, catalog_);
  ASSERT_TRUE(match.matched) << match.reason;
  ExpectAnswersMatch(view, view, maintainer.view());
}

TEST_F(ViewMatchingTest, LeftOuterQueryFromFullOuterView) {
  // Query drops the {part} orphans: part lo' ... actually (orders lo
  // lineitem) ro'd... Express as: (orders lo lineitem) lo part — wait,
  // we need the query tree to produce terms {P,O,L},{O}: part joined
  // via right outer.
  ViewDef view = MakeOjView();
  ViewMaintainer maintainer(&catalog_, view, MaintenanceOptions());
  maintainer.InitializeView();

  RelExprPtr inner = RelExpr::Join(
      JoinKind::kLeftOuter, RelExpr::Scan("orders"), RelExpr::Scan("lineitem"),
      Eq("lineitem", "l_orderkey", "orders", "o_orderkey"));
  // RIGHT outer join part -> preserves the (orders lo lineitem) side
  // only: terms {P,O,L} and {O}; the {part} orphans are dropped.
  RelExprPtr tree = RelExpr::Join(
      JoinKind::kRightOuter, RelExpr::Scan("part"), inner,
      Eq("part", "p_partkey", "lineitem", "l_partkey"));
  ViewDef query("q_lo", tree, view.output(), catalog_);

  MatchResult match = MatchView(query, view, catalog_);
  ASSERT_TRUE(match.matched) << match.reason;
  EXPECT_NE(match.rewrite->ToString().find("IS NULL"), std::string::npos);
  ExpectAnswersMatch(query, view, maintainer.view());
}

TEST_F(ViewMatchingTest, InnerJoinQueryFromOuterJoinView) {
  ViewDef view = MakeOjView();
  ViewMaintainer maintainer(&catalog_, view, MaintenanceOptions());
  maintainer.InitializeView();

  RelExprPtr inner = RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("orders"), RelExpr::Scan("lineitem"),
      Eq("lineitem", "l_orderkey", "orders", "o_orderkey"));
  RelExprPtr tree = RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("part"), inner,
      Eq("part", "p_partkey", "lineitem", "l_partkey"));
  ViewDef query("q_inner", tree, view.output(), catalog_);

  MatchResult match = MatchView(query, view, catalog_);
  ASSERT_TRUE(match.matched) << match.reason;
  ExpectAnswersMatch(query, view, maintainer.view());
}

TEST_F(ViewMatchingTest, RangeCompensationOnCoreTable) {
  // Query tightens a predicate on lineitem (present in every retained
  // term after the inner-join restriction).
  ViewDef view = MakeOjView();
  ViewMaintainer maintainer(&catalog_, view, MaintenanceOptions());
  maintainer.InitializeView();

  RelExprPtr inner = RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("orders"),
      RelExpr::Select(RelExpr::Scan("lineitem"),
                      ScalarExpr::Compare(
                          CompareOp::kLt, ScalarExpr::Column("lineitem",
                                                             "l_quantity"),
                          ScalarExpr::Literal(Value::Float64(10.0)))),
      Eq("lineitem", "l_orderkey", "orders", "o_orderkey"));
  RelExprPtr tree = RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("part"), inner,
      Eq("part", "p_partkey", "lineitem", "l_partkey"));
  ViewDef query("q_range", tree, view.output(), catalog_);

  MatchResult match = MatchView(query, view, catalog_);
  ASSERT_TRUE(match.matched) << match.reason;
  ExpectAnswersMatch(query, view, maintainer.view());
}

TEST_F(ViewMatchingTest, MatchSurvivesMaintenance) {
  // The whole point: a maintained view keeps answering queries.
  ViewDef view = MakeOjView();
  ViewMaintainer maintainer(&catalog_, view, MaintenanceOptions());
  maintainer.InitializeView();
  tpch::DbgenOptions options;
  options.scale_factor = 0.002;
  tpch::Dbgen dbgen(options);
  tpch::RefreshStream refresh(&catalog_, &dbgen, 55);

  RelExprPtr inner = RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("orders"), RelExpr::Scan("lineitem"),
      Eq("lineitem", "l_orderkey", "orders", "o_orderkey"));
  RelExprPtr tree = RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("part"), inner,
      Eq("part", "p_partkey", "lineitem", "l_partkey"));
  ViewDef query("q_inner", tree, view.output(), catalog_);

  for (int round = 0; round < 3; ++round) {
    std::vector<Row> inserted = ApplyBaseInsert(
        catalog_.GetTable("lineitem"), refresh.NewLineitems(120));
    maintainer.OnInsert("lineitem", inserted);
    ExpectAnswersMatch(query, view, maintainer.view());

    std::vector<Row> deleted = ApplyBaseDelete(
        catalog_.GetTable("lineitem"), refresh.PickLineitemDeleteKeys(80));
    maintainer.OnDelete("lineitem", deleted);
    ExpectAnswersMatch(query, view, maintainer.view());
  }
}

TEST_F(ViewMatchingTest, RejectsDifferentTableSets) {
  ViewDef view = MakeOjView();
  RelExprPtr tree = RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("orders"), RelExpr::Scan("lineitem"),
      Eq("lineitem", "l_orderkey", "orders", "o_orderkey"));
  ViewDef query("q2", tree,
                {{"orders", "o_orderkey"},
                 {"lineitem", "l_orderkey"},
                 {"lineitem", "l_linenumber"}},
                catalog_);
  MatchResult match = MatchView(query, view, catalog_);
  EXPECT_FALSE(match.matched);
  EXPECT_NE(match.reason.find("table sets"), std::string::npos);
}

TEST_F(ViewMatchingTest, RejectsWhenViewFiltersMore) {
  // View restricted to cheap parts cannot answer the unrestricted query.
  RelExprPtr inner = RelExpr::Join(
      JoinKind::kLeftOuter, RelExpr::Scan("orders"), RelExpr::Scan("lineitem"),
      Eq("lineitem", "l_orderkey", "orders", "o_orderkey"));
  RelExprPtr view_tree = RelExpr::Join(
      JoinKind::kFullOuter,
      RelExpr::Select(RelExpr::Scan("part"),
                      ScalarExpr::Compare(
                          CompareOp::kLt,
                          ScalarExpr::Column("part", "p_retailprice"),
                          ScalarExpr::Literal(Value::Float64(1500.0)))),
      inner, Eq("part", "p_partkey", "lineitem", "l_partkey"));
  ViewDef narrow_view = ViewDef("narrow", view_tree,
                                tpch::MakeOjView(catalog_).output(), catalog_);
  ViewDef query = tpch::MakeOjView(catalog_);
  MatchResult match = MatchView(query, narrow_view, catalog_);
  EXPECT_FALSE(match.matched);
  EXPECT_NE(match.reason.find("does not imply"), std::string::npos);

  // The other direction (query narrower than view) also must not match:
  // restricting part to cheap ones resurrects {orders,lineitem} tuples
  // (lineitems of expensive parts survive null-extended) which the full
  // view's FK pruning eliminated — the null-if compensation case of [6].
  MatchResult reverse = MatchView(narrow_view, query, catalog_);
  EXPECT_FALSE(reverse.matched);
  EXPECT_NE(reverse.reason.find("lacks term"), std::string::npos);
}

TEST_F(ViewMatchingTest, RejectsNonCoreCompensation) {
  // A compensation predicate on a table that is null-extended in a
  // retained term cannot distribute over the minimum union.
  RelExprPtr view_tree = RelExpr::Join(
      JoinKind::kLeftOuter, RelExpr::Scan("customer"),
      RelExpr::Scan("orders"),
      Eq("customer", "c_custkey", "orders", "o_custkey"));
  std::vector<ColumnRef> output = {{"customer", "c_custkey"},
                                   {"customer", "c_acctbal"},
                                   {"orders", "o_orderkey"},
                                   {"orders", "o_totalprice"}};
  ViewDef view("co_view", view_tree, output, catalog_);

  // Query filters on o_totalprice on top of the SAME lo join: its JDNF
  // keeps only {C,O} (the selection is null-rejecting on orders), so the
  // {C} term is dropped — and {C} is not a subset of any dropped term,
  // dropping is fine; the o_totalprice conjunct then references a core
  // table of the single retained term. That MATCHES. To hit the
  // non-core rejection, put the filter under the join instead, keeping
  // both terms:
  RelExprPtr q_tree = RelExpr::Join(
      JoinKind::kLeftOuter, RelExpr::Scan("customer"),
      RelExpr::Select(RelExpr::Scan("orders"),
                      ScalarExpr::Compare(
                          CompareOp::kGt,
                          ScalarExpr::Column("orders", "o_totalprice"),
                          ScalarExpr::Literal(Value::Float64(1000.0)))),
      Eq("customer", "c_custkey", "orders", "o_custkey"));
  ViewDef query("co_query", q_tree, output, catalog_);
  MatchResult match = MatchView(query, view, catalog_);
  EXPECT_FALSE(match.matched);
  EXPECT_NE(match.reason.find("null-extended in some retained term"),
            std::string::npos)
      << match.reason;
}

TEST_F(ViewMatchingTest, FkAwareMatchingAcceptsRoFromLo) {
  // orders ro lineitem normally has a {lineitem} term the lo view lacks
  // — but the FK l_orderkey -> o_orderkey prunes it (every lineitem has
  // its order), so with the constraint declared the match is accepted
  // and correct.
  std::vector<ColumnRef> output = {{"orders", "o_orderkey"},
                                   {"orders", "o_custkey"},
                                   {"lineitem", "l_orderkey"},
                                   {"lineitem", "l_linenumber"}};
  ViewDef lo_view("v_lo",
                  RelExpr::Join(JoinKind::kLeftOuter, RelExpr::Scan("orders"),
                                RelExpr::Scan("lineitem"),
                                Eq("orders", "o_orderkey", "lineitem",
                                   "l_orderkey")),
                  output, catalog_);
  RelExprPtr q_tree = RelExpr::Join(
      JoinKind::kRightOuter, RelExpr::Scan("orders"),
      RelExpr::Scan("lineitem"),
      Eq("orders", "o_orderkey", "lineitem", "l_orderkey"));
  ViewDef query("q_ro", q_tree, output, catalog_);
  ViewMaintainer maintainer(&catalog_, lo_view, MaintenanceOptions());
  maintainer.InitializeView();
  MatchResult match = MatchView(query, lo_view, catalog_);
  ASSERT_TRUE(match.matched) << match.reason;
  ExpectAnswersMatch(query, lo_view, maintainer.view());
}

TEST_F(ViewMatchingTest, RejectsHiddenSubsetTerms) {
  // part / customer have no FK relationship, so nothing is pruned.
  // view = part lo customer (terms {P,C},{P});
  // query = part ro customer (terms {P,C},{C}): the {C} term is
  // missing from the view.
  ScalarExprPtr pred = Eq("part", "p_size", "customer", "c_nationkey");
  std::vector<ColumnRef> output = {{"part", "p_partkey"},
                                   {"part", "p_size"},
                                   {"customer", "c_custkey"},
                                   {"customer", "c_nationkey"}};
  ViewDef lo_view("pc_lo",
                  RelExpr::Join(JoinKind::kLeftOuter, RelExpr::Scan("part"),
                                RelExpr::Scan("customer"), pred),
                  output, catalog_);
  ViewDef query("pc_ro",
                RelExpr::Join(JoinKind::kRightOuter, RelExpr::Scan("part"),
                              RelExpr::Scan("customer"), pred),
                output, catalog_);
  MatchResult match = MatchView(query, lo_view, catalog_);
  EXPECT_FALSE(match.matched);
  EXPECT_NE(match.reason.find("lacks term"), std::string::npos);

  // The fo view answers both.
  ViewDef fo_view("pc_fo",
                  RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("part"),
                                RelExpr::Scan("customer"), pred),
                  output, catalog_);
  ViewMaintainer maintainer(&catalog_, fo_view, MaintenanceOptions());
  maintainer.InitializeView();
  MatchResult fo_match = MatchView(query, fo_view, catalog_);
  ASSERT_TRUE(fo_match.matched) << fo_match.reason;
  ExpectAnswersMatch(query, fo_view, maintainer.view());
}

TEST_F(ViewMatchingTest, RejectsMissingOutputColumns) {
  ViewDef view = MakeOjView();
  RelExprPtr inner = RelExpr::Join(
      JoinKind::kLeftOuter, RelExpr::Scan("orders"), RelExpr::Scan("lineitem"),
      Eq("lineitem", "l_orderkey", "orders", "o_orderkey"));
  RelExprPtr tree = RelExpr::Join(
      JoinKind::kFullOuter, RelExpr::Scan("part"), inner,
      Eq("part", "p_partkey", "lineitem", "l_partkey"));
  std::vector<ColumnRef> output = view.output();
  output.push_back({"orders", "o_totalprice"});  // view lacks this
  ViewDef query("q_cols", tree, output, catalog_);
  MatchResult match = MatchView(query, view, catalog_);
  EXPECT_FALSE(match.matched);
  EXPECT_NE(match.reason.find("does not output"), std::string::npos);
}

TEST_F(ViewMatchingTest, AnswerFromDatabaseScansRegisteredViews) {
  Database db;
  tpch::CreateSchema(db.catalog());
  tpch::DbgenOptions options;
  options.scale_factor = 0.002;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(db.catalog());
  db.CreateMaterializedView(tpch::MakeOjView(*db.catalog()));

  RelExprPtr inner = RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("orders"), RelExpr::Scan("lineitem"),
      Eq("lineitem", "l_orderkey", "orders", "o_orderkey"));
  RelExprPtr tree = RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("part"), inner,
      Eq("part", "p_partkey", "lineitem", "l_partkey"));
  ViewDef query("q", tree, tpch::MakeOjView(*db.catalog()).output(),
                *db.catalog());

  std::string which;
  std::optional<Relation> answer = AnswerFromDatabase(query, &db, &which);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(which, "oj_view");
  Relation direct = RecomputeView(*db.catalog(), query);
  std::string diff;
  EXPECT_TRUE(SameBag(direct, *answer, &diff)) << diff;

  // Statements keep the answers fresh.
  tpch::RefreshStream refresh(db.catalog(), &dbgen, 77);
  db.Insert("lineitem", refresh.NewLineitems(100));
  answer = AnswerFromDatabase(query, &db, &which);
  ASSERT_TRUE(answer.has_value());
  direct = RecomputeView(*db.catalog(), query);
  EXPECT_TRUE(SameBag(direct, *answer, &diff)) << diff;

  // An unanswerable query reports no match.
  RelExprPtr two = RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("orders"), RelExpr::Scan("lineitem"),
      Eq("lineitem", "l_orderkey", "orders", "o_orderkey"));
  ViewDef q2("q2", two,
             {{"orders", "o_orderkey"},
              {"lineitem", "l_orderkey"},
              {"lineitem", "l_linenumber"}},
             *db.catalog());
  EXPECT_FALSE(AnswerFromDatabase(q2, &db, nullptr).has_value());
}

}  // namespace
}  // namespace ojv
