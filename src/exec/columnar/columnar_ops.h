#ifndef OJV_EXEC_COLUMNAR_COLUMNAR_OPS_H_
#define OJV_EXEC_COLUMNAR_COLUMNAR_OPS_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "algebra/rel_expr.h"
#include "algebra/scalar_expr.h"
#include "exec/columnar/chunked_relation.h"
#include "exec/exec_config.h"
#include "exec/relation.h"
#include "exec/thread_pool.h"

namespace ojv {
namespace columnar {

/// Chunked-vectorized implementations of the delta pipeline's hot
/// operators. Each op converts its Relation inputs at the boundary
/// (FromRelation), runs chunk-at-a-time kernels — predicate evaluation
/// into selection vectors, SIMD gathers, vectorized key hashing — and
/// converts back, so the surrounding Evaluator/maintainer plumbing is
/// untouched. Contract: results are bag-equal (Relation::Equals) to the
/// row engine's at any chunk size and thread count; within one op the
/// output row order is itself deterministic (per-chunk outputs are
/// concatenated in chunk order).
///
/// `config.chunk_rows` is the chunk size; parallel loops reuse the
/// morsel gates (`num_threads`, `parallel_min_rows`) with chunks as the
/// morsel unit.

/// σ: rows of `in` satisfying `pred` (tri-state true), in input order.
Relation Select(const Relation& in, const ScalarExprPtr& pred,
                const ExecConfig& config, ThreadPool* pool);

/// π: columns `positions` of `in` under `schema` (no dedup) — a pure
/// column-vector copy in this representation.
Relation Project(const Relation& in, const std::vector<int>& positions,
                 BoundSchema schema, const ExecConfig& config,
                 ThreadPool* pool);

/// Null-if: rows failing `pred` keep their row but have every column of
/// `null_tables` set to NULL (validity cleared).
Relation NullIf(const Relation& in, const ScalarExprPtr& pred,
                const std::set<std::string>& null_tables,
                const ExecConfig& config, ThreadPool* pool);

/// Join instrumentation surfaced to the evaluator's trace spans.
struct JoinStats {
  int64_t build_rows = 0;
  int64_t build_capacity = 0;
  int64_t probe_hits = 0;
};

/// Equality hash join (inner/left/right/full outer, left semi/anti).
/// Builds on `r`, probes `l` chunk-at-a-time; key hashing and output
/// assembly run through the SIMD kernels. Callers must have verified
/// the predicate is pure equality conjuncts (no residual) — residual
/// and nested-loop joins stay on the row engine.
Relation HashJoin(JoinKind kind, const Relation& l, const Relation& r,
                  const std::vector<int>& left_keys,
                  const std::vector<int>& right_keys,
                  const BoundSchema& combined, const ExecConfig& config,
                  ThreadPool* pool, JoinStats* stats);

/// δ: duplicate elimination keeping first occurrences, in input order.
Relation Dedup(const Relation& in, const ExecConfig& config,
               ThreadPool* pool);

/// ↓: removal of subsumed tuples (vectorized twin of
/// Evaluator::RemoveSubsumed), in input order.
Relation RemoveSubsumed(const Relation& in, const ExecConfig& config,
                        ThreadPool* pool);

}  // namespace columnar
}  // namespace ojv

#endif  // OJV_EXEC_COLUMNAR_COLUMNAR_OPS_H_
