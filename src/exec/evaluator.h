#ifndef OJV_EXEC_EVALUATOR_H_
#define OJV_EXEC_EVALUATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "algebra/rel_expr.h"
#include "catalog/catalog.h"
#include "exec/exec_config.h"
#include "exec/relation.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"

namespace ojv {

/// Span name the evaluator records for a node of this kind (e.g.
/// "exec.join"). Shared by EXPLAIN and the planner feedback loop, which
/// zip recorded exec spans back onto plan trees by this name.
const char* ExecSpanNameFor(RelKind kind);

/// Version-checked cache of base tables materialized as tagged
/// relations. A maintenance operation evaluates several expressions over
/// the same (unchanging) base tables; the cache makes each table's
/// materialization once per table version instead of once per scan.
class TableRelationCache {
 public:
  /// Returns the relation for `table`'s current contents; rebuilt only
  /// when the table's version changed since the last call.
  std::shared_ptr<const Relation> Get(const Table& table);

 private:
  struct Entry {
    uint64_t version = 0;
    std::shared_ptr<const Relation> relation;
  };
  // Hot path: hit once per scan node per evaluation.
  std::unordered_map<std::string, Entry> entries_;
};

/// Executes relational expression trees against a catalog.
///
/// Joins with equality conjuncts run as hash joins; otherwise nested
/// loops. Delta scans resolve through named bindings supplied by the
/// caller (the maintainer binds ΔT under the table's own name, and the
/// secondary-delta machinery binds intermediates like "#primary").
/// Table overrides let a caller evaluate a subtree against a substituted
/// table state (the Griffin–Kumar baseline uses this for pre-update
/// states). Results are shared pointers so scan outputs (cached base
/// tables, bound deltas) are never copied.
class Evaluator {
 public:
  /// Physical join algorithm for equality joins. kHash (default) builds
  /// a hash table on one input; kSortMerge sorts both inputs on the
  /// equality keys and merges — same results, different cost profile
  /// (used for cross-validation and by the operator benchmarks).
  enum class JoinAlgorithm { kHash, kSortMerge };

  explicit Evaluator(const Catalog* catalog) : catalog_(catalog) {}

  void set_join_algorithm(JoinAlgorithm algorithm) {
    join_algorithm_ = algorithm;
  }

  /// Enables the morsel-parallel operator variants: loops over inputs of
  /// at least config.parallel_min_rows run on `pool` with up to
  /// config.num_threads workers. The pool is not owned and must outlive
  /// the evaluator; a null pool (or num_threads <= 1) keeps every
  /// operator on the serial path. Results are identical either way —
  /// per-morsel outputs are concatenated in morsel order, so even the
  /// row order matches the serial execution.
  void set_exec(const ExecConfig& config, ThreadPool* pool) {
    exec_ = config;
    pool_ = pool;
  }
  const ExecConfig& exec_config() const { return exec_; }

  /// Binds the relation produced for DeltaScan(name). The relation must
  /// outlive the evaluator's uses.
  void BindDelta(const std::string& name, const Relation* delta) {
    deltas_[name] = delta;
  }

  /// Substitutes `relation` for Scan(table) during evaluation.
  void OverrideTable(const std::string& table, const Relation* relation) {
    overrides_[table] = relation;
  }

  void ClearOverrides() { overrides_.clear(); }

  /// Uses `cache` for base-table scans (optional; not owned).
  void set_table_cache(TableRelationCache* cache) { cache_ = cache; }

  /// Trace sink (optional; not owned). With a sink attached, every
  /// operator node records one span — rows in/out, and for joins the
  /// algorithm, build size, probe hits, and the parallel-vs-serial
  /// decision. Spans are recorded *after* the node's own work, so their
  /// order is a post-order walk of the plan tree (ExplainMaintenance
  /// relies on this to zip timings onto the tree). A span's duration
  /// covers the node's whole subtree, like EXPLAIN ANALYZE totals.
  void set_trace(obs::TraceContext* trace) { trace_ = trace; }

  /// Evaluates the tree; the result may alias a cached or bound
  /// relation and must be treated as immutable.
  std::shared_ptr<const Relation> Eval(const RelExprPtr& expr) const;

  /// Convenience: evaluates and deep-copies the result.
  Relation EvalToRelation(const RelExprPtr& expr) const { return *Eval(expr); }

  /// Tagged bound schema for a base table (columns carry key ordinals).
  static BoundSchema SchemaFor(const Table& table);

  /// Materializes a base table as a tagged relation.
  static Relation RelationFrom(const Table& table);

  /// Removal of subsumed tuples (the ↓ operator), exposed for reuse.
  /// The two-argument overload runs morsel-parallel on `pool`.
  static Relation RemoveSubsumed(Relation input) {
    return RemoveSubsumed(std::move(input), ExecConfig(), nullptr);
  }
  static Relation RemoveSubsumed(Relation input, const ExecConfig& config,
                                 ThreadPool* pool);

  /// Duplicate elimination (the δ operator), exposed for reuse.
  static Relation DedupRows(Relation input) {
    return DedupRows(std::move(input), ExecConfig(), nullptr);
  }
  static Relation DedupRows(Relation input, const ExecConfig& config,
                            ThreadPool* pool);

  /// Outer union ⊎ of two relations (schema = union of tagged columns).
  static Relation OuterUnionOf(const Relation& a, const Relation& b);

 private:
  /// The dispatch switch (no tracing); Eval wraps it with span recording
  /// when a trace sink is attached.
  std::shared_ptr<const Relation> EvalNode(const RelExprPtr& expr) const;
  std::shared_ptr<const Relation> EvalTraced(const RelExprPtr& expr) const;

  /// Attaches an arg to the span of the operator node currently being
  /// evaluated (no-op without a sink). Operators call this only after
  /// their child Evals returned — children harvest and clear the pending
  /// buffers for their own spans first.
  void NoteArg(const char* key, int64_t value) const {
    if constexpr (obs::kEnabled) {
      if (trace_ != nullptr) pending_args_.emplace_back(key, value);
    }
  }
  void NoteArg(const char* key, std::string value) const {
    if constexpr (obs::kEnabled) {
      if (trace_ != nullptr) {
        pending_str_args_.emplace_back(key, std::move(value));
      }
    }
  }
  /// The parallel-vs-serial decision for an input of `rows` rows, as a
  /// span arg ("parallel" or the fallback reason).
  const char* ParallelModeFor(int64_t rows) const;

  std::shared_ptr<const Relation> EvalScan(const RelExpr& expr) const;
  std::shared_ptr<const Relation> EvalDeltaScan(const RelExpr& expr) const;
  Relation EvalSelect(const RelExpr& expr) const;
  Relation EvalSortMergeJoin(const RelExpr& expr, const Relation& l,
                             const Relation& r,
                             const std::vector<int>& left_keys,
                             const std::vector<int>& right_keys,
                             const ScalarExprPtr& residual_expr) const;
  Relation EvalProject(const RelExpr& expr) const;
  Relation EvalJoin(const RelExpr& expr) const;
  Relation EvalNullIf(const RelExpr& expr) const;

  /// Workers the parallel loops may use for an input of `rows` rows
  /// (1 = serial path).
  int WorkersFor(int64_t rows) const;

  /// Morsel-parallel producer: body fills its chunk's rows for input
  /// positions [begin, end); chunk outputs are appended to `out` in
  /// chunk order (serial execution appends directly).
  void AppendChunked(
      int64_t count, Relation* out,
      const std::function<void(std::vector<Row>&, int64_t, int64_t)>& body)
      const;

  const Catalog* catalog_;
  std::unordered_map<std::string, const Relation*> deltas_;
  std::unordered_map<std::string, const Relation*> overrides_;
  TableRelationCache* cache_ = nullptr;
  JoinAlgorithm join_algorithm_ = JoinAlgorithm::kHash;
  ExecConfig exec_;
  ThreadPool* pool_ = nullptr;
  obs::TraceContext* trace_ = nullptr;
  /// Args staged by the node currently evaluating (see NoteArg).
  mutable std::vector<std::pair<std::string, int64_t>> pending_args_;
  mutable std::vector<std::pair<std::string, std::string>> pending_str_args_;
};

}  // namespace ojv

#endif  // OJV_EXEC_EVALUATOR_H_
