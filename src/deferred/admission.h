#ifndef OJV_DEFERRED_ADMISSION_H_
#define OJV_DEFERRED_ADMISSION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "deferred/scheduler.h"
#include "obs/windowed.h"

namespace ojv {
namespace deferred {

/// Knobs for the refresh admission controller. The controller closes
/// the loop on the deferred scheduler's own signals: recent statement
/// and refresh latency percentiles plus delta-log depth become a load
/// score; when the system is hot, threshold refreshes are deferred
/// (bounded backoff, staleness-debt-first capped slices), and views
/// whose staleness drifts past their configured ceiling are promoted
/// and refreshed regardless of load.
///
/// The default (`enabled = false`) installs nothing: Database's
/// due-view scan behaves exactly as without admission control.
struct AdmissionConfig {
  bool enabled = false;

  /// Window for the "recent" percentiles: `epochs * epoch_micros` of
  /// history, decaying a whole epoch at a time.
  int64_t epoch_micros = 250'000;
  int epochs = 8;

  /// Percentiles fed into the load score.
  double statement_percentile = 99.0;
  double refresh_percentile = 99.0;
  double read_percentile = 99.0;

  /// Budgets that normalize each signal: signal/budget == 1.0 means
  /// "at the hot line". The load score is the max of the normalized
  /// signals (a single saturated resource makes the system hot; a
  /// weighted mean would let one overloaded signal hide behind two
  /// idle ones).
  int64_t statement_budget_micros = 2'000;
  int64_t refresh_budget_micros = 20'000;
  int64_t log_depth_budget_rows = 4'096;
  /// Blocking (kFresh/kBounded-upgraded) view reads contend with
  /// statements and refreshes for the same mutex; their recent latency
  /// percentile is the serving-path load signal.
  int64_t read_budget_micros = 5'000;

  /// Hysteresis on the load score: enter hot at >= enter_hot, leave at
  /// <= exit_hot. The gap is what keeps the controller from flapping
  /// when the score hovers near the threshold.
  double enter_hot = 1.0;
  double exit_hot = 0.5;

  /// While hot: at most this many threshold refreshes admitted per
  /// due-view scan, drained in staleness-debt order (most debt first).
  int hot_slice = 1;

  /// Deferred views back off before being reconsidered: the backoff
  /// starts at `backoff_initial_micros`, doubles per consecutive
  /// deferral, and is capped at `backoff_max_micros` — bounded, so a
  /// long hot phase cannot push a view's next consideration out
  /// indefinitely.
  int64_t backoff_initial_micros = 500;
  int64_t backoff_max_micros = 50'000;

  /// Percentile of the view's recent staleness compared against its
  /// ThresholdConfig::staleness_ceiling_micros for promotion.
  double promotion_percentile = 99.0;
};

/// One kThreshold view that crossed its Due() limits this scan.
struct DueView {
  std::string name;
  int64_t pending_rows = 0;
  double staleness_micros = 0;
  /// From the view's ThresholdConfig.
  double max_staleness_micros = 0;
  double staleness_ceiling_micros = 0;
};

/// What the controller decided for one due-view scan.
struct AdmissionPlan {
  bool hot = false;
  double load_score = 0;
  /// Views to refresh now, in order (promoted first, then the admitted
  /// slice by staleness debt).
  std::vector<std::string> admitted;
  /// Subset of `admitted` that was promoted past the load gate.
  std::vector<std::string> promoted;
  /// Due views deferred to a later scan (now backing off).
  std::vector<std::string> deferred;
};

/// Admission controller for the deferred refresh scheduler. All methods
/// take an explicit `now_micros` (obs::SteadyNowMicros in production)
/// so decisions are reproducible under test. Not thread-safe: Database
/// owns one instance and calls it under its statement mutex.
///
/// Counter totals are mirrored into the obs registry when compiled in
/// (`ojv.deferred.admission.{deferred,promoted,hot_transitions}`), but
/// the controller keeps its own plain totals so admission — a
/// correctness/robustness feature, not telemetry — works identically
/// under -DOJV_OBS=OFF.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  const AdmissionConfig& config() const { return config_; }

  /// Feed one foreground statement's wall latency.
  void ObserveStatement(double micros, int64_t now_micros);
  /// Feed one refresh's wall latency.
  void ObserveRefresh(double micros, int64_t now_micros);
  /// Feed one blocking view read's wall latency (snapshot reads never
  /// block and are observed through the obs histogram instead).
  void ObserveRead(double micros, int64_t now_micros);

  /// Normalized load score at `now_micros` (1.0 = at the hot line).
  double LoadScore(int64_t log_depth, int64_t now_micros) const;

  /// Decides one due-view scan: updates the hot state (hysteresis),
  /// records staleness samples, promotes ceiling violations, and
  /// splits the rest into an admitted slice and deferrals.
  AdmissionPlan Plan(const std::vector<DueView>& due, int64_t log_depth,
                     int64_t now_micros);

  /// Recent staleness percentile for one view (0 when unobserved).
  int64_t StalenessPercentile(const std::string& view, double p,
                              int64_t now_micros) const;

  /// Drops per-view state (backoff, staleness window).
  void Forget(const std::string& view);

  bool hot() const { return hot_; }
  int64_t deferred_total() const { return deferred_total_; }
  int64_t promoted_total() const { return promoted_total_; }
  /// Cold->hot transitions observed (the flap count hysteresis bounds).
  int64_t hot_transitions() const { return hot_transitions_; }

 private:
  struct ViewState {
    obs::WindowedHistogram staleness;
    int64_t not_before_micros = 0;  // backoff gate; 0 = not backing off
    int64_t backoff_micros = 0;     // current (doubling, capped) backoff
  };
  ViewState& StateFor(const std::string& view);

  AdmissionConfig config_;
  obs::WindowedHistogram statement_latency_;
  obs::WindowedHistogram refresh_latency_;
  obs::WindowedHistogram read_latency_;
  std::map<std::string, ViewState> views_;
  bool hot_ = false;
  int64_t deferred_total_ = 0;
  int64_t promoted_total_ = 0;
  int64_t hot_transitions_ = 0;
};

}  // namespace deferred
}  // namespace ojv

#endif  // OJV_DEFERRED_ADMISSION_H_
