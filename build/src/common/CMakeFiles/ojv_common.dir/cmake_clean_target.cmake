file(REMOVE_RECURSE
  "libojv_common.a"
)
