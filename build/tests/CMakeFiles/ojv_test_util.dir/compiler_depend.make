# Empty compiler generated dependencies file for ojv_test_util.
# This may be replaced when dependencies are built.
