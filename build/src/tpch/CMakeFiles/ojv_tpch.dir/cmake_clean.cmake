file(REMOVE_RECURSE
  "CMakeFiles/ojv_tpch.dir/dbgen.cc.o"
  "CMakeFiles/ojv_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/ojv_tpch.dir/refresh.cc.o"
  "CMakeFiles/ojv_tpch.dir/refresh.cc.o.d"
  "CMakeFiles/ojv_tpch.dir/tpch_schema.cc.o"
  "CMakeFiles/ojv_tpch.dir/tpch_schema.cc.o.d"
  "CMakeFiles/ojv_tpch.dir/views.cc.o"
  "CMakeFiles/ojv_tpch.dir/views.cc.o.d"
  "libojv_tpch.a"
  "libojv_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ojv_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
