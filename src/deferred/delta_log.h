#ifndef OJV_DEFERRED_DELTA_LOG_H_
#define OJV_DEFERRED_DELTA_LOG_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/schema.h"

namespace ojv {
namespace deferred {

/// One staged base-table change. Inserts carry the inserted row, deletes
/// the full pre-image (the maintainers need complete deleted rows).
enum class DeltaOp : uint8_t { kInsert, kDelete };

struct DeltaEntry {
  uint64_t seq = 0;  // global statement-order position
  DeltaOp op = DeltaOp::kInsert;
  Row row;
  /// Set on the delete/insert halves of an UPDATE statement: the pair
  /// must never be maintained under foreign-key plans (§6 caveat 1),
  /// even when a refresh boundary separates the halves.
  bool update_pair = false;
  std::chrono::steady_clock::time_point at;
};

/// Append-only staging log of base-table changes, per table, consumed by
/// deferred views at refresh time.
///
/// Every consumer (a deferred view) tracks a high-water mark: the last
/// sequence number it has folded into its materialized contents. Entries
/// at or below every consumer's mark are garbage; TruncateConsumed drops
/// them so the log's footprint is bounded by the laziest consumer.
///
/// The log itself is not thread-safe; Database serializes access (the
/// background refresher and the statement path share Database's mutex).
class DeltaLog {
 public:
  /// Appends one entry per row (all from one statement) and returns the
  /// last sequence number assigned. Rows must already have been applied
  /// to the base table (same contract as the maintainers).
  uint64_t Append(const std::string& table, DeltaOp op,
                  const std::vector<Row>& rows, bool update_pair = false);

  /// Registers a consumer starting at the current tail (it has seen
  /// everything logged so far — deferred views are switched to deferred
  /// only when up to date).
  void RegisterConsumer(const std::string& view);
  void UnregisterConsumer(const std::string& view);
  bool IsConsumer(const std::string& view) const;
  bool HasConsumers() const { return !high_water_.empty(); }

  /// Last sequence number ever assigned (0 when nothing was logged).
  uint64_t tail() const { return next_seq_ - 1; }
  uint64_t high_water_mark(const std::string& view) const;

  /// Entries with seq > hwm(view) whose table is in `tables`, grouped by
  /// table in sequence order. An empty filter selects every table.
  std::map<std::string, std::vector<DeltaEntry>> PendingFor(
      const std::string& view, const std::set<std::string>& tables) const;

  /// Number of pending entries for `view` restricted to `tables`.
  int64_t PendingRows(const std::string& view,
                      const std::set<std::string>& tables) const;

  /// Age in microseconds of the oldest entry pending for `view` within
  /// `tables`; 0 when nothing is pending.
  double OldestPendingMicros(const std::string& view,
                             const std::set<std::string>& tables) const;

  /// Marks everything up to `seq` as consumed by `view`.
  void AdvanceTo(const std::string& view, uint64_t seq);

  /// Drops entries consumed by every registered consumer.
  void TruncateConsumed();

  /// Entries currently held (across all tables).
  int64_t size() const;

 private:
  std::map<std::string, std::deque<DeltaEntry>> tables_;
  std::map<std::string, uint64_t> high_water_;
  uint64_t next_seq_ = 1;
};

}  // namespace deferred
}  // namespace ojv

#endif  // OJV_DEFERRED_DELTA_LOG_H_
