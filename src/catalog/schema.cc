#include "catalog/schema.h"

#include "common/check.h"

namespace ojv {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      OJV_CHECK(columns_[i].name != columns_[j].name, "duplicate column name");
    }
  }
}

int Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Schema::IndexOf(const std::string& name) const {
  int i = Find(name);
  OJV_CHECK(i >= 0, "unknown column");
  return i;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += ValueTypeName(columns_[i].type);
    if (!columns_[i].nullable) out += " NOT NULL";
  }
  out += ")";
  return out;
}

size_t HashRowAt(const Row& row, const std::vector<int>& positions) {
  size_t h = 0xcbf29ce484222325ULL;
  for (int p : positions) {
    h ^= row[static_cast<size_t>(p)].Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool RowsEqualAt(const Row& a, const Row& b, const std::vector<int>& pos_a,
                 const std::vector<int>& pos_b) {
  OJV_CHECK(pos_a.size() == pos_b.size(), "position list size mismatch");
  for (size_t i = 0; i < pos_a.size(); ++i) {
    if (a[static_cast<size_t>(pos_a[i])] != b[static_cast<size_t>(pos_b[i])]) {
      return false;
    }
  }
  return true;
}

}  // namespace ojv
