#ifndef OJV_SQL_PARSER_H_
#define OJV_SQL_PARSER_H_

#include <optional>
#include <string>
#include <vector>

#include "ivm/aggregate_view.h"
#include "ivm/database.h"
#include "ivm/view_def.h"

namespace ojv {
namespace sql {

/// Parsed CREATE VIEW statement: either a plain SPOJ view or an
/// aggregation view (when GROUP BY is present).
struct ParsedView {
  ViewDef view;                        // the SPOJ part
  bool is_aggregate = false;
  std::vector<ColumnRef> group_by;     // when is_aggregate
  std::vector<AggregateSpec> aggregates;
};

/// Parses the view-definition dialect used throughout the paper:
///
///   CREATE VIEW oj_view AS
///   SELECT p_partkey, p_name, o_orderkey, l_orderkey, l_linenumber
///   FROM part FULL OUTER JOIN
///        (orders LEFT OUTER JOIN lineitem ON l_orderkey = o_orderkey)
///        ON p_partkey = l_partkey
///
/// Supported:
///  - SELECT column lists (qualified `t.c` or unqualified when unique
///    across the referenced tables) or `SELECT *`;
///  - FROM with [INNER] JOIN / LEFT|RIGHT|FULL [OUTER] JOIN chains and
///    parenthesized join groups;
///  - derived tables `(SELECT * FROM t WHERE ...)` — SELECT * only —
///    which become selections in the view tree (the paper's σp(O));
///  - ON / WHERE conjunctions of comparisons (= <> < <= > >=) between
///    columns and literals, plus BETWEEN;
///  - numeric, 'string', and DATE 'YYYY-MM-DD' literals;
///  - GROUP BY with COUNT(*), COUNT(col), SUM(col) [AS name] — parsed
///    into an aggregation-view description.
///
/// The unique-key columns of every referenced table are appended to the
/// output automatically if the SELECT list omits them (the paper's §2
/// restriction that views output a key; for aggregates the base view
/// needs them internally).
///
/// Returns std::nullopt and fills *error on any lexical, syntactic, or
/// resolution failure.
std::optional<ParsedView> ParseCreateView(const std::string& sql,
                                          const Catalog& catalog,
                                          std::string* error);

/// Parses `sql` against the database's catalog and registers the view
/// (row-level or aggregated) for automatic maintenance. Returns false
/// and fills *error on failure.
bool ExecuteCreateView(const std::string& sql, Database* db,
                       std::string* error);

}  // namespace sql
}  // namespace ojv

#endif  // OJV_SQL_PARSER_H_
