#include "ivm/simplify_tree.h"

#include "common/check.h"
#include "normalform/maintenance_graph.h"

namespace ojv {
namespace {

bool PredicateTouches(const ScalarExprPtr& pred,
                      const std::set<std::string>& tables) {
  for (const std::string& t : pred->ReferencedTables()) {
    if (tables.count(t) > 0) return true;
  }
  return false;
}

bool ViewContainsFkJoin(const ViewDef& view, const ForeignKey& fk) {
  for (size_t i = 0; i < fk.child_columns.size(); ++i) {
    ColumnRef child{fk.child_table, fk.child_columns[i]};
    ColumnRef parent{fk.parent_table, fk.parent_columns[i]};
    bool found = false;
    for (const ScalarExprPtr& conjunct : view.conjuncts()) {
      if (conjunct->kind() != ScalarKind::kCompare ||
          conjunct->compare_op() != CompareOp::kEq ||
          conjunct->left()->kind() != ScalarKind::kColumn ||
          conjunct->right()->kind() != ScalarKind::kColumn) {
        continue;
      }
      const ColumnRef& l = conjunct->left()->column();
      const ColumnRef& r = conjunct->right()->column();
      if ((l == child && r == parent) || (l == parent && r == child)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

std::set<std::string> FkChildrenJoinedOnKey(const ViewDef& view,
                                            const std::string& updated_table,
                                            const Catalog& catalog) {
  std::set<std::string> out;
  for (const ForeignKey* fk : catalog.ForeignKeysReferencing(updated_table)) {
    if (!ForeignKeyUsableForMaintenance(*fk)) continue;
    if (view.tables().count(fk->child_table) == 0) continue;
    if (ViewContainsFkJoin(view, *fk)) out.insert(fk->child_table);
  }
  return out;
}

SimplifyResult SimplifyDeltaTree(const RelExprPtr& delta_expr,
                                 std::set<std::string> initial_children) {
  SimplifyResult result;
  if (initial_children.empty()) {
    result.expr = delta_expr;
    return result;
  }
  std::set<std::string> s = std::move(initial_children);

  // Recursive lambda over the main (left) path.
  struct Walker {
    std::set<std::string>* s;
    int eliminated = 0;
    bool empty = false;

    RelExprPtr Walk(const RelExprPtr& expr) {
      switch (expr->kind()) {
        case RelKind::kDeltaScan:
        case RelKind::kScan:
          return expr;
        case RelKind::kSelect: {
          RelExprPtr in = Walk(expr->input());
          if (empty) return nullptr;
          if (PredicateTouches(expr->predicate(), *s)) {
            empty = true;
            return nullptr;
          }
          return RelExpr::Select(in, expr->predicate());
        }
        case RelKind::kJoin: {
          RelExprPtr left = Walk(expr->left());
          if (empty) return nullptr;
          const bool touches = PredicateTouches(expr->predicate(), *s);
          if (!touches) {
            return RelExpr::Join(expr->join_kind(), left, expr->right(),
                                 expr->predicate());
          }
          if (expr->join_kind() == JoinKind::kInner) {
            empty = true;
            return nullptr;
          }
          OJV_CHECK(expr->join_kind() == JoinKind::kLeftOuter,
                    "main path may contain only inner and left outer joins");
          // Drop the join; the discarded right operand's tables are now
          // known to be entirely null in the delta.
          for (const std::string& t : expr->right()->ReferencedTables()) {
            s->insert(t);
          }
          ++eliminated;
          return left;
        }
        default:
          OJV_CHECK(false, "unexpected node on delta main path");
      }
    }
  };

  Walker walker{&s};
  RelExprPtr expr = walker.Walk(delta_expr);
  result.empty = walker.empty;
  result.joins_eliminated = walker.eliminated;
  result.expr = walker.empty ? nullptr : expr;
  return result;
}

}  // namespace ojv
