# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_demo "/root/repo/build/tools/ojv_cli" "run" "/root/repo/tools/demo.ojv" "--sf=0.002")
set_tests_properties(cli_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gen "/root/repo/build/tools/ojv_cli" "gen" "--sf=0.001" "--out=/root/repo/build/cli_data")
set_tests_properties(cli_gen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_roundtrip "/root/repo/build/tools/ojv_cli" "run" "/root/repo/tools/roundtrip.ojv")
set_tests_properties(cli_roundtrip PROPERTIES  DEPENDS "cli_gen" WORKING_DIRECTORY "/root/repo/build" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
