// LEO-style feedback harvesting: full event streams yield per-step
// fanouts; partial streams (a missing left-child exec span) must not
// fabricate a fanout — the regression here is that a missing left event
// used to default left_rows to 1, overstating the fanout by orders of
// magnitude and poisoning the plan cache's EMA.

#include "opt/feedback.h"

#include <gtest/gtest.h>

#include "algebra/rel_expr.h"
#include "algebra/scalar_expr.h"
#include "exec/evaluator.h"

namespace ojv {
namespace opt {
namespace {

ScalarExprPtr JoinPred(const char* t1, const char* c1, const char* t2,
                       const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

obs::TraceEvent ExecEvent(const char* name, int64_t rows_out) {
  obs::TraceEvent ev;
  ev.name = name;
  ev.category = "exec";
  ev.args.emplace_back("rows_out", rows_out);
  return ev;
}

/// ΔR ⋈ S ⋈ T, the left-deep main path the planner emits.
PlannedDelta MakePlan() {
  PlannedDelta plan;
  RelExprPtr join1 =
      RelExpr::Join(JoinKind::kLeftOuter, RelExpr::DeltaScan("R"),
                    RelExpr::Scan("S"), JoinPred("R", "a", "S", "a"));
  plan.expr = RelExpr::Join(JoinKind::kLeftOuter, join1, RelExpr::Scan("T"),
                            JoinPred("S", "b", "T", "b"));
  return plan;
}

TEST(FeedbackTest, FullEventStreamYieldsBothFanouts) {
  PlannedDelta plan = MakePlan();
  // Post-order: ΔR(10) S(50) join1(20) T(5) join2(40).
  std::vector<obs::TraceEvent> events = {
      ExecEvent("exec.delta_scan", 10), ExecEvent("exec.scan", 50),
      ExecEvent("exec.join", 20), ExecEvent("exec.scan", 5),
      ExecEvent("exec.join", 40)};

  FeedbackResult result = HarvestFeedback(plan, events);
  ASSERT_EQ(result.steps.size(), 2u);
  EXPECT_EQ(result.steps[0].right_table, "S");
  EXPECT_DOUBLE_EQ(result.steps[0].actual_fanout, 20.0 / 10.0);
  EXPECT_EQ(result.steps[1].right_table, "T");
  EXPECT_DOUBLE_EQ(result.steps[1].actual_fanout, 40.0 / 20.0);
}

TEST(FeedbackTest, MissingLeftEventSkipsStepInsteadOfFabricatingFanout) {
  PlannedDelta plan = MakePlan();
  // Partial stream: the ΔR delta-scan span is missing (e.g. the trace
  // window started mid-evaluation). join1's left child then has no
  // event; its step must be dropped, not computed against left_rows=1
  // (which would claim fanout 20 instead of 2).
  std::vector<obs::TraceEvent> events = {
      ExecEvent("exec.scan", 50), ExecEvent("exec.join", 20),
      ExecEvent("exec.scan", 5), ExecEvent("exec.join", 40)};

  FeedbackResult result = HarvestFeedback(plan, events);
  ASSERT_EQ(result.steps.size(), 1u);
  // join2's left (join1) still has its event, so T's step survives.
  EXPECT_EQ(result.steps[0].right_table, "T");
  EXPECT_DOUBLE_EQ(result.steps[0].actual_fanout, 40.0 / 20.0);
}

TEST(FeedbackTest, MissingLeftEventLeavesEmaUnperturbed) {
  PlannedDelta plan = MakePlan();
  std::vector<obs::TraceEvent> partial = {
      ExecEvent("exec.scan", 50), ExecEvent("exec.join", 20),
      ExecEvent("exec.scan", 5), ExecEvent("exec.join", 40)};

  std::unordered_map<std::string, double> ema = {{"S", 2.0}, {"T", 2.0}};
  FeedbackResult result = HarvestFeedback(plan, partial);
  UpdateFanoutEma(result, /*alpha=*/0.5, &ema);

  // S saw no (fabricated) observation: its EMA is untouched. T folded
  // in the real fanout of 2.0.
  EXPECT_DOUBLE_EQ(ema["S"], 2.0);
  EXPECT_DOUBLE_EQ(ema["T"], 2.0);

  // The regression: before the fix, the partial stream produced an S
  // step with fanout = 20 (actual rows over a defaulted left of 1),
  // which at alpha=0.5 would have dragged the EMA to 11.
  for (const StepFeedback& step : result.steps) {
    EXPECT_NE(step.right_table, "S");
  }
}

TEST(FeedbackTest, EmptyEventStreamYieldsNothing) {
  PlannedDelta plan = MakePlan();
  FeedbackResult result = HarvestFeedback(plan, {});
  EXPECT_TRUE(result.steps.empty());
  EXPECT_DOUBLE_EQ(result.max_drift, 1.0);
}

}  // namespace
}  // namespace opt
}  // namespace ojv
