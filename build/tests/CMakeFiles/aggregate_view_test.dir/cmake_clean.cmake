file(REMOVE_RECURSE
  "CMakeFiles/aggregate_view_test.dir/ivm/aggregate_view_test.cc.o"
  "CMakeFiles/aggregate_view_test.dir/ivm/aggregate_view_test.cc.o.d"
  "aggregate_view_test"
  "aggregate_view_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
