#include "common/value.h"

#include <gtest/gtest.h>

namespace ojv {
namespace {

TEST(ValueTest, NullBasics) {
  Value n;
  EXPECT_TRUE(n.is_null());
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_FALSE(Value::Int64(0).is_null());
  EXPECT_EQ(n.ToString(), "NULL");
}

TEST(ValueTest, StrictEqualityTreatsNullAsEqual) {
  // Indexes and duplicate elimination need NULL == NULL.
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int64(0));
  EXPECT_NE(Value::Int64(0), Value::Null());
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value::Int64(3), Value::Float64(3.0));
  EXPECT_NE(Value::Int64(3), Value::Float64(3.5));
  EXPECT_NE(Value::Int64(3), Value::String("3"));
}

TEST(ValueTest, SqlCompareIsUnknownOnNull) {
  int cmp = 0;
  EXPECT_FALSE(Value::Null().SqlCompare(Value::Int64(1), &cmp));
  EXPECT_FALSE(Value::Int64(1).SqlCompare(Value::Null(), &cmp));
  EXPECT_TRUE(Value::Int64(1).SqlCompare(Value::Int64(2), &cmp));
  EXPECT_LT(cmp, 0);
}

TEST(ValueTest, SortCompareTotalOrder) {
  EXPECT_EQ(Value::Null().SortCompare(Value::Null()), 0);
  EXPECT_LT(Value::Null().SortCompare(Value::Int64(-5)), 0);
  EXPECT_GT(Value::String("a").SortCompare(Value::Int64(5)), 0);
  EXPECT_LT(Value::String("abc").SortCompare(Value::String("abd")), 0);
  EXPECT_EQ(Value::Int64(7).SortCompare(Value::Float64(7.0)), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(42).Hash(), Value::Float64(42.0).Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
  EXPECT_EQ(Value::String("xy").Hash(), Value::String("xy").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int64(-7).ToString(), "-7");
  EXPECT_EQ(Value::Float64(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
}

}  // namespace
}  // namespace ojv
