#ifndef OJV_DEFERRED_SCHEDULER_H_
#define OJV_DEFERRED_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace ojv {
namespace deferred {

/// When a registered view is brought up to date.
enum class RefreshPolicy {
  /// Maintained inside every statement (the eager default; matches the
  /// paper's trigger setup and the behavior of the seed repo).
  kImmediate,
  /// Refreshed only at read time (Database::ReadView /
  /// ReadAggregateRelation) or by an explicit Refresh/RefreshAll call.
  kOnDemand,
  /// Refreshed automatically once pending rows or staleness exceed the
  /// view's ThresholdConfig — inline after the offending statement, or
  /// by the background worker when one is running.
  kThreshold,
};

const char* RefreshPolicyName(RefreshPolicy policy);

/// Limits for RefreshPolicy::kThreshold. A view is due when either limit
/// is reached; a limit of 0 disables that trigger.
struct ThresholdConfig {
  int64_t max_pending_rows = 1024;
  double max_staleness_micros = 0;
  /// Worker threads for the consolidated-batch replay of this view's
  /// refreshes (0 = inherit the maintainer's own executor config).
  /// Deferred batches are much larger than single statements, so the
  /// refresh path is where morsel parallelism pays off most.
  int refresh_threads = 0;
  /// Staleness bound enforced by the admission controller (0 = none):
  /// when the view's recent staleness percentile drifts past this
  /// ceiling, its refresh is *promoted* — admitted regardless of load —
  /// so deferral under sustained pressure cannot leave the view stale
  /// without bound. Ignored when no AdmissionController is installed.
  double staleness_ceiling_micros = 0;
};

/// Outcome of one refresh of one view.
struct RefreshStats {
  int64_t raw_entries = 0;        // log entries consumed
  int64_t consolidated_rows = 0;  // rows handed to the maintainer
  int64_t cancelled_rows = 0;     // entries removed by net-effect folding
  int64_t update_pairs = 0;       // delete+reinsert pairs (§6 caveat 1)
  int64_t tables_touched = 0;
  double staleness_micros = 0;    // age of the oldest entry consumed
  double refresh_micros = 0;      // consolidation + maintenance, wall
  double maintenance_micros = 0;  // inside the maintainers only
};

/// Per-view refresh bookkeeping: policy, thresholds, cumulative and
/// most-recent refresh stats.
struct ViewRefreshState {
  RefreshPolicy policy = RefreshPolicy::kImmediate;
  ThresholdConfig config;
  int64_t refreshes = 0;
  int64_t raw_entries = 0;
  int64_t consolidated_rows = 0;
  int64_t cancelled_rows = 0;
  double refresh_micros = 0;
  RefreshStats last;
};

/// Decides which views are refreshed when. The scheduler holds no
/// references into the database — Database feeds it pending/staleness
/// figures and executes the refreshes it asks for.
class RefreshScheduler {
 public:
  void SetPolicy(const std::string& view, RefreshPolicy policy,
                 ThresholdConfig config = ThresholdConfig());
  void Forget(const std::string& view);

  RefreshPolicy policy(const std::string& view) const;
  const ThresholdConfig& config(const std::string& view) const;
  bool IsDeferred(const std::string& view) const;
  bool HasDeferredViews() const;
  std::vector<std::string> DeferredViews() const;

  /// True when a kThreshold view has crossed either limit.
  bool Due(const std::string& view, int64_t pending_rows,
           double staleness_micros) const;

  void RecordRefresh(const std::string& view, const RefreshStats& stats);
  const ViewRefreshState* state(const std::string& view) const;

  /// Labels the view with its maintenance-group id ("-" = ungrouped;
  /// shown in Report's group column). Kept outside ViewRefreshState so
  /// labeling an immediate view creates no refresh state.
  void SetGroup(const std::string& view, const std::string& group);
  std::string group(const std::string& view) const;

  /// Fixed-width table of per-view refresh counters (mirrors
  /// Database::StatsReport).
  std::string Report() const;

 private:
  std::map<std::string, ViewRefreshState> views_;
  std::map<std::string, std::string> groups_;  // view -> group id or "-"
};

/// Owns the worker thread of the background refresh mode: runs `drain`
/// every `interval`, or sooner when Notify is called (the statement path
/// pings it instead of refreshing inline). `drain` must do its own
/// locking against the statement path.
class BackgroundRefresher {
 public:
  BackgroundRefresher() = default;
  ~BackgroundRefresher() { Stop(); }

  BackgroundRefresher(const BackgroundRefresher&) = delete;
  BackgroundRefresher& operator=(const BackgroundRefresher&) = delete;

  void Start(std::chrono::milliseconds interval, std::function<void()> drain);
  void Notify();
  void Stop();
  bool running() const { return thread_.joinable(); }

 private:
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool pinged_ = false;
};

}  // namespace deferred
}  // namespace ojv

#endif  // OJV_DEFERRED_SCHEDULER_H_
