// The statement-level Database facade: FK enforcement, cascading
// deletes, update statements, and automatic maintenance of every
// registered view (row-level and aggregated).

#include "ivm/database.h"

#include <gtest/gtest.h>

#include "baseline/recompute.h"

namespace ojv {
namespace {

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.catalog()->CreateTable(
        "dept",
        Schema({ColumnDef{"d_id", ValueType::kInt64, false},
                ColumnDef{"d_name", ValueType::kString, false}}),
        {"d_id"});
    db_.catalog()->CreateTable(
        "emp",
        Schema({ColumnDef{"e_id", ValueType::kInt64, false},
                ColumnDef{"e_dept", ValueType::kInt64, false},
                ColumnDef{"e_salary", ValueType::kFloat64, true}}),
        {"e_id"});
  }

  ViewDef MakeDeptView() {
    RelExprPtr tree = RelExpr::Join(
        JoinKind::kFullOuter, RelExpr::Scan("dept"), RelExpr::Scan("emp"),
        Eq("dept", "d_id", "emp", "e_dept"));
    return ViewDef("dept_emp", tree,
                   {{"dept", "d_id"},
                    {"dept", "d_name"},
                    {"emp", "e_id"},
                    {"emp", "e_dept"},
                    {"emp", "e_salary"}},
                   *db_.catalog());
  }

  Row Dept(int64_t id, const char* name) {
    return Row{Value::Int64(id), Value::String(name)};
  }
  Row Emp(int64_t id, int64_t dept, double salary) {
    return Row{Value::Int64(id), Value::Int64(dept), Value::Float64(salary)};
  }

  Database db_;
};

TEST_F(DatabaseTest, InsertEnforcesForeignKeys) {
  db_.catalog()->AddForeignKey({"emp", {"e_dept"}, "dept", {"d_id"}});
  EXPECT_EQ(db_.Insert("dept", {Dept(1, "eng")}).rows_affected, 1);

  Database::StatementResult result =
      db_.Insert("emp", {Emp(10, 1, 100.0), Emp(11, 99, 50.0)});
  EXPECT_EQ(result.rows_affected, 1);  // emp 11 references missing dept 99
  EXPECT_EQ(result.rows_rejected, 1);
  EXPECT_EQ(db_.catalog()->GetTable("emp")->size(), 1);
}

TEST_F(DatabaseTest, DuplicateKeysAreRejectedRowWise) {
  db_.Insert("dept", {Dept(1, "eng")});
  Database::StatementResult result =
      db_.Insert("dept", {Dept(1, "dup"), Dept(2, "ops")});
  EXPECT_EQ(result.rows_affected, 1);
  EXPECT_EQ(result.rows_rejected, 1);
}

TEST_F(DatabaseTest, DeleteBlocksOnRestrictingForeignKey) {
  db_.catalog()->AddForeignKey({"emp", {"e_dept"}, "dept", {"d_id"}});
  db_.Insert("dept", {Dept(1, "eng")});
  db_.Insert("emp", {Emp(10, 1, 100.0)});

  Database::StatementResult result =
      db_.Delete("dept", {Row{Value::Int64(1)}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(db_.catalog()->GetTable("dept")->size(), 1);

  // After removing the employee, the delete succeeds.
  EXPECT_TRUE(db_.Delete("emp", {Row{Value::Int64(10)}}).ok());
  EXPECT_TRUE(db_.Delete("dept", {Row{Value::Int64(1)}}).ok());
  EXPECT_EQ(db_.catalog()->GetTable("dept")->size(), 0);
}

TEST_F(DatabaseTest, CascadingDeleteMaintainsViews) {
  ForeignKey fk{"emp", {"e_dept"}, "dept", {"d_id"}};
  fk.cascading_delete = true;
  db_.catalog()->AddForeignKey(fk);

  ViewMaintainer* view = db_.CreateMaterializedView(MakeDeptView());
  db_.Insert("dept", {Dept(1, "eng"), Dept(2, "ops")});
  db_.Insert("emp", {Emp(10, 1, 100.0), Emp(11, 1, 120.0), Emp(12, 2, 90.0)});

  Database::StatementResult result =
      db_.Delete("dept", {Row{Value::Int64(1)}});
  EXPECT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.rows_affected, 3);  // dept 1 + two cascaded employees
  EXPECT_EQ(db_.catalog()->GetTable("emp")->size(), 1);

  std::string diff;
  EXPECT_TRUE(ViewMatchesRecompute(*db_.catalog(), view->view_def(),
                                   view->view(), &diff))
      << diff;
}

TEST_F(DatabaseTest, ViewsAreMaintainedAcrossStatements) {
  ViewMaintainer* view = db_.CreateMaterializedView(MakeDeptView());
  EXPECT_EQ(view->view().size(), 0);

  db_.Insert("dept", {Dept(1, "eng"), Dept(2, "ops")});
  db_.Insert("emp", {Emp(10, 1, 100.0), Emp(11, 3, 50.0)});
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(*db_.catalog(), view->view_def(),
                                   view->view(), &diff))
      << diff;
  // dept 1 joined, dept 2 orphan, emp 11 orphan (dept 3 missing; no FK
  // declared in this test so the insert is allowed).
  EXPECT_EQ(view->view().size(), 3);

  db_.Delete("emp", {Row{Value::Int64(10)}});
  ASSERT_TRUE(ViewMatchesRecompute(*db_.catalog(), view->view_def(),
                                   view->view(), &diff))
      << diff;
}

TEST_F(DatabaseTest, UpdateStatementMaintainsViews) {
  ViewMaintainer* view = db_.CreateMaterializedView(MakeDeptView());
  db_.Insert("dept", {Dept(1, "eng"), Dept(2, "ops")});
  db_.Insert("emp", {Emp(10, 1, 100.0)});

  // Move employee 10 from dept 1 to dept 2.
  Database::StatementResult result =
      db_.Update("emp", {Row{Value::Int64(10)}}, {Emp(10, 2, 110.0)});
  EXPECT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(result.rows_affected, 1);
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(*db_.catalog(), view->view_def(),
                                   view->view(), &diff))
      << diff;

  // Key changes are rejected.
  result = db_.Update("emp", {Row{Value::Int64(10)}}, {Emp(99, 2, 110.0)});
  EXPECT_FALSE(result.ok());
}

TEST_F(DatabaseTest, UpdateOfReferencedParentWithDeclaredFk) {
  // §6 caveat 1 through the facade: the FK would normally allow the
  // "delta-only" shortcut for dept, but an UPDATE pair must not use it.
  db_.catalog()->AddForeignKey({"emp", {"e_dept"}, "dept", {"d_id"}});
  ViewMaintainer* view = db_.CreateMaterializedView(MakeDeptView());
  db_.Insert("dept", {Dept(1, "eng")});
  db_.Insert("emp", {Emp(10, 1, 100.0)});

  Database::StatementResult result =
      db_.Update("dept", {Row{Value::Int64(1)}}, {Dept(1, "engineering")});
  EXPECT_TRUE(result.ok()) << result.error;
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(*db_.catalog(), view->view_def(),
                                   view->view(), &diff))
      << diff;
  // The renamed department is visible through the view.
  bool found = false;
  view->view().ForEach([&](int64_t, const Row& row) {
    if (row[1] == Value::String("engineering")) found = true;
  });
  EXPECT_TRUE(found);
}

TEST_F(DatabaseTest, AggregateViewsThroughStatements) {
  std::vector<AggregateSpec> aggs = {
      {AggregateSpec::Kind::kCountStar, {}, "rows"},
      {AggregateSpec::Kind::kSum, {"emp", "e_salary"}, "payroll"}};
  AggViewMaintainer* agg = db_.CreateAggregateView(
      MakeDeptView(), {{"dept", "d_name"}}, aggs);

  db_.Insert("dept", {Dept(1, "eng"), Dept(2, "ops")});
  db_.Insert("emp", {Emp(10, 1, 100.0), Emp(11, 1, 50.0)});
  std::string diff;
  ASSERT_TRUE(agg->MatchesRecompute(1e-9, &diff)) << diff;

  db_.Update("emp", {Row{Value::Int64(11)}}, {Emp(11, 2, 75.0)});
  ASSERT_TRUE(agg->MatchesRecompute(1e-9, &diff)) << diff;

  db_.Delete("emp", {Row{Value::Int64(10)}});
  ASSERT_TRUE(agg->MatchesRecompute(1e-9, &diff)) << diff;
}

TEST_F(DatabaseTest, UnknownTableAndDropView) {
  EXPECT_FALSE(db_.Insert("nope", {Row{}}).ok());
  EXPECT_FALSE(db_.Delete("nope", {}).ok());
  db_.CreateMaterializedView(MakeDeptView());
  EXPECT_NE(db_.GetView("dept_emp"), nullptr);
  EXPECT_TRUE(db_.DropView("dept_emp"));
  EXPECT_EQ(db_.GetView("dept_emp"), nullptr);
  EXPECT_FALSE(db_.DropView("dept_emp"));
}

}  // namespace
}  // namespace ojv
