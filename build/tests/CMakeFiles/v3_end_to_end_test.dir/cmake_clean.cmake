file(REMOVE_RECURSE
  "CMakeFiles/v3_end_to_end_test.dir/integration/v3_end_to_end_test.cc.o"
  "CMakeFiles/v3_end_to_end_test.dir/integration/v3_end_to_end_test.cc.o.d"
  "v3_end_to_end_test"
  "v3_end_to_end_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/v3_end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
