// The master property test: for randomly generated SPOJ views over
// randomly populated tables, any sequence of random inserts and deletes
// maintained incrementally must leave the materialized view identical to
// a from-scratch recomputation — under every option combination.
//
// Parameterized over (seed, option combination) so each scenario reports
// individually.

#include <gtest/gtest.h>

#include "baseline/recompute.h"
#include "ivm/maintainer.h"
#include "test_util.h"

namespace ojv {
namespace {

using testing_util::CreateRandomSchema;
using testing_util::RandomSpojView;
using testing_util::RandomRstuRows;
using testing_util::SampleKeys;

enum class OptionCombo {
  kDefault,
  kBushy,
  kSecondaryFromBase,
  kNoForeignKeys,
  kBushyFromBase,
};

MaintenanceOptions OptionsFor(OptionCombo combo) {
  MaintenanceOptions options;
  switch (combo) {
    case OptionCombo::kDefault:
      break;
    case OptionCombo::kBushy:
      options.use_left_deep = false;
      break;
    case OptionCombo::kSecondaryFromBase:
      options.secondary_strategy = SecondaryStrategy::kFromBaseTables;
      break;
    case OptionCombo::kNoForeignKeys:
      options.exploit_foreign_keys = false;
      break;
    case OptionCombo::kBushyFromBase:
      options.use_left_deep = false;
      options.secondary_strategy = SecondaryStrategy::kFromBaseTables;
      break;
  }
  return options;
}

const char* ComboName(OptionCombo combo) {
  switch (combo) {
    case OptionCombo::kDefault:
      return "Default";
    case OptionCombo::kBushy:
      return "Bushy";
    case OptionCombo::kSecondaryFromBase:
      return "SecondaryFromBase";
    case OptionCombo::kNoForeignKeys:
      return "NoForeignKeys";
    case OptionCombo::kBushyFromBase:
      return "BushyFromBase";
  }
  return "?";
}

class PropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, OptionCombo>> {};

TEST_P(PropertyTest, IncrementalEqualsRecompute) {
  const uint64_t seed = std::get<0>(GetParam());
  const MaintenanceOptions options = OptionsFor(std::get<1>(GetParam()));

  Rng rng(seed);
  Catalog catalog;
  int num_tables = static_cast<int>(rng.Uniform(3, 5));
  std::vector<std::string> tables = CreateRandomSchema(&catalog, num_tables);

  int64_t next_key = 1;
  int domain = static_cast<int>(rng.Uniform(3, 6));
  for (const std::string& name : tables) {
    Table* table = catalog.GetTable(name);
    int rows = static_cast<int>(rng.Uniform(10, 25));
    for (Row& row : RandomRstuRows(name, &rng, rows, domain, &next_key)) {
      table->Insert(std::move(row));
    }
  }

  ViewDef view = RandomSpojView(catalog, tables, &rng);
  ViewMaintainer maintainer(&catalog, view, options);
  maintainer.InitializeView();

  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(catalog, view, maintainer.view(), &diff))
      << "initial view: " << diff;

  int64_t fresh_key = 100000 + static_cast<int64_t>(seed) * 1000;
  int ops = static_cast<int>(rng.Uniform(5, 9));
  for (int op = 0; op < ops; ++op) {
    const std::string& name = tables[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(tables.size()) - 1))];
    Table* table = catalog.GetTable(name);
    int choice = static_cast<int>(rng.Uniform(0, 2));
    if (choice == 0 && table->size() > 3) {
      std::vector<Row> deleted = ApplyBaseDelete(
          table, SampleKeys(*table, &rng,
                            static_cast<int>(rng.Uniform(1, 6))));
      maintainer.OnDelete(name, deleted);
    } else if (choice == 1 && table->size() > 3) {
      // UPDATE: rewrite the join columns of a few existing rows.
      std::vector<Row> keys = SampleKeys(*table, &rng, 2);
      std::vector<Row> new_rows;
      for (const Row& key : keys) {
        Row row = *table->FindByKey(key);
        row[1] = rng.Chance(0.15) ? Value::Null()
                                  : Value::Int64(rng.Uniform(0, domain - 1));
        new_rows.push_back(std::move(row));
      }
      std::vector<Row> old_rows;
      ApplyBaseUpdate(table, keys, new_rows, &old_rows);
      maintainer.OnUpdate(name, old_rows, new_rows);
    } else {
      std::vector<Row> inserted = ApplyBaseInsert(
          table, RandomRstuRows(name, &rng,
                                static_cast<int>(rng.Uniform(1, 8)), domain,
                                &fresh_key));
      maintainer.OnInsert(name, inserted);
    }
    ASSERT_TRUE(ViewMatchesRecompute(catalog, view, maintainer.view(), &diff))
        << "view " << view.tree()->ToString() << " op " << op << " on "
        << name << ": " << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomViews, PropertyTest,
    ::testing::Combine(::testing::Range<uint64_t>(1, 31),
                       ::testing::Values(OptionCombo::kDefault,
                                         OptionCombo::kBushy,
                                         OptionCombo::kSecondaryFromBase,
                                         OptionCombo::kNoForeignKeys,
                                         OptionCombo::kBushyFromBase)),
    [](const ::testing::TestParamInfo<PropertyTest::ParamType>& info) {
      return std::string(ComboName(std::get<1>(info.param))) + "_seed" +
             std::to_string(std::get<0>(info.param));
    });

// All option combinations must agree with each other row for row — a
// sharper check than each-vs-recompute.
class StrategyAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyAgreementTest, AllStrategiesProduceTheSameView) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Catalog catalog;
  std::vector<std::string> tables = CreateRandomSchema(&catalog, 4);
  int64_t next_key = 1;
  for (const std::string& name : tables) {
    Table* table = catalog.GetTable(name);
    for (Row& row : RandomRstuRows(name, &rng, 15, 4, &next_key)) {
      table->Insert(std::move(row));
    }
  }
  ViewDef view = RandomSpojView(catalog, tables, &rng);

  std::vector<std::unique_ptr<ViewMaintainer>> maintainers;
  for (OptionCombo combo :
       {OptionCombo::kDefault, OptionCombo::kBushy,
        OptionCombo::kSecondaryFromBase, OptionCombo::kNoForeignKeys}) {
    maintainers.push_back(
        std::make_unique<ViewMaintainer>(&catalog, view, OptionsFor(combo)));
    maintainers.back()->InitializeView();
  }

  int64_t fresh_key = 500000;
  for (int op = 0; op < 6; ++op) {
    const std::string& name = tables[static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(tables.size()) - 1))];
    Table* table = catalog.GetTable(name);
    if (rng.Chance(0.5) && table->size() > 3) {
      std::vector<Row> deleted =
          ApplyBaseDelete(table, SampleKeys(*table, &rng, 3));
      for (auto& m : maintainers) m->OnDelete(name, deleted);
    } else {
      std::vector<Row> inserted = ApplyBaseInsert(
          table, RandomRstuRows(name, &rng, 4, 4, &fresh_key));
      for (auto& m : maintainers) m->OnInsert(name, inserted);
    }
    for (size_t i = 1; i < maintainers.size(); ++i) {
      std::string diff;
      ASSERT_TRUE(SameBag(maintainers[0]->view().AsRelation(),
                          maintainers[i]->view().AsRelation(), &diff))
          << "op " << op << " strategy " << i << ": " << diff;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomViews, StrategyAgreementTest,
                         ::testing::Range<uint64_t>(81, 106));

}  // namespace
}  // namespace ojv
