# Empty dependencies file for ojv_tpch.
# This may be replaced when dependencies are built.
