file(REMOVE_RECURSE
  "CMakeFiles/ojv_normalform.dir/jdnf.cc.o"
  "CMakeFiles/ojv_normalform.dir/jdnf.cc.o.d"
  "CMakeFiles/ojv_normalform.dir/maintenance_graph.cc.o"
  "CMakeFiles/ojv_normalform.dir/maintenance_graph.cc.o.d"
  "CMakeFiles/ojv_normalform.dir/subsumption_graph.cc.o"
  "CMakeFiles/ojv_normalform.dir/subsumption_graph.cc.o.d"
  "CMakeFiles/ojv_normalform.dir/term.cc.o"
  "CMakeFiles/ojv_normalform.dir/term.cc.o.d"
  "libojv_normalform.a"
  "libojv_normalform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ojv_normalform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
