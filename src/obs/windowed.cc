#include "obs/windowed.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ojv {
namespace obs {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

WindowedHistogram::WindowedHistogram(int64_t epoch_micros, int epochs)
    : epoch_micros_(epoch_micros),
      ring_(static_cast<size_t>(std::max(epochs, 1))) {
  OJV_CHECK(epoch_micros > 0, "windowed histogram epoch must be positive");
}

void WindowedHistogram::Record(int64_t value, int64_t now_micros) {
  if (value < 0) value = 0;  // same clamp as Histogram::Record
  const int64_t index = now_micros / epoch_micros_;
  Epoch& epoch = ring_[static_cast<size_t>(index) % ring_.size()];
  if (epoch.index != index) {
    // The slot last held an epoch a full ring ago: it has aged out of
    // every window that could still include this sample. Recycle it.
    epoch.buckets.fill(0);
    epoch.count = 0;
    epoch.sum = 0;
    epoch.index = index;
  }
  ++epoch.buckets[static_cast<size_t>(Histogram::BucketOf(value))];
  ++epoch.count;
  epoch.sum += value;
}

int64_t WindowedHistogram::WindowCount(int64_t now_micros) const {
  const int64_t now_index = now_micros / epoch_micros_;
  int64_t count = 0;
  for (const Epoch& e : ring_) {
    if (Live(e, now_index)) count += e.count;
  }
  return count;
}

int64_t WindowedHistogram::WindowSum(int64_t now_micros) const {
  const int64_t now_index = now_micros / epoch_micros_;
  int64_t sum = 0;
  for (const Epoch& e : ring_) {
    if (Live(e, now_index)) sum += e.sum;
  }
  return sum;
}

int64_t WindowedHistogram::PercentileBound(double p, int64_t now_micros) const {
  const int64_t now_index = now_micros / epoch_micros_;
  const int64_t total = WindowCount(now_micros);
  if (total <= 0) return 0;
  // Same ceil-rank rule as Histogram::PercentileBound.
  int64_t rank = static_cast<int64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total)));
  rank = std::clamp<int64_t>(rank, 1, total);
  int64_t seen = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    for (const Epoch& e : ring_) {
      if (Live(e, now_index)) seen += e.buckets[static_cast<size_t>(b)];
    }
    if (seen >= rank) return Histogram::BucketUpperBound(b);
  }
  return Histogram::BucketUpperBound(Histogram::kBuckets - 1);
}

void WindowedHistogram::Reset() {
  for (Epoch& e : ring_) {
    e.buckets.fill(0);
    e.count = 0;
    e.sum = 0;
    e.index = -1;
  }
}

}  // namespace obs
}  // namespace ojv
