
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv.cc" "src/io/CMakeFiles/ojv_io.dir/csv.cc.o" "gcc" "src/io/CMakeFiles/ojv_io.dir/csv.cc.o.d"
  "/root/repo/src/io/statement_log.cc" "src/io/CMakeFiles/ojv_io.dir/statement_log.cc.o" "gcc" "src/io/CMakeFiles/ojv_io.dir/statement_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ivm/CMakeFiles/ojv_ivm.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/ojv_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/ojv_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ojv_common.dir/DependInfo.cmake"
  "/root/repo/build/src/normalform/CMakeFiles/ojv_normalform.dir/DependInfo.cmake"
  "/root/repo/build/src/algebra/CMakeFiles/ojv_algebra.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
