// ViewDef validation: the paper's §2 restrictions are enforced at view
// creation time with clear failures.

#include "ivm/view_def.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace ojv {
namespace {

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

class ViewDefTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing_util::CreateRstuSchema(&catalog_);
  }

  std::vector<ColumnRef> FullOutput(std::vector<std::string> tables) {
    std::vector<ColumnRef> out;
    for (const std::string& t : tables) {
      std::string p(1, static_cast<char>(std::tolower(t[0])));
      for (const char* suffix : {"_id", "_a", "_b", "_v"}) {
        out.push_back(ColumnRef{t, p + suffix});
      }
    }
    return out;
  }

  Catalog catalog_;
};

TEST_F(ViewDefTest, ValidViewCollectsMetadata) {
  RelExprPtr tree = RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("R"),
                                  RelExpr::Scan("S"),
                                  Eq("R", "r_a", "S", "s_a"));
  ViewDef view("v", tree, FullOutput({"R", "S"}), catalog_);
  EXPECT_EQ(view.tables(), (std::set<std::string>{"R", "S"}));
  EXPECT_EQ(view.conjuncts().size(), 1u);
  EXPECT_TRUE(view.output_schema().HasFullKey("R"));
  EXPECT_TRUE(view.output_schema().HasFullKey("S"));
}

TEST_F(ViewDefTest, CoreViewReplacesOuterJoins) {
  RelExprPtr tree = RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("R"),
                                  RelExpr::Scan("S"),
                                  Eq("R", "r_a", "S", "s_a"));
  ViewDef view("v", tree, FullOutput({"R", "S"}), catalog_);
  ViewDef core = view.CoreView(catalog_);
  EXPECT_EQ(core.tree()->ToString(), "(R join S)");
  EXPECT_EQ(core.name(), "v_core");
}

using ViewDefDeathTest = ViewDefTest;

TEST_F(ViewDefDeathTest, RejectsSelfJoins) {
  RelExprPtr tree = RelExpr::Join(JoinKind::kInner, RelExpr::Scan("R"),
                                  RelExpr::Scan("R"),
                                  Eq("R", "r_a", "R", "r_b"));
  EXPECT_DEATH(ViewDef("v", tree, FullOutput({"R"}), catalog_),
               "references a table twice");
}

TEST_F(ViewDefDeathTest, RejectsNonNullRejectingPredicates) {
  // IS NULL predicates are not null-rejecting (§2).
  RelExprPtr tree = RelExpr::Join(
      JoinKind::kLeftOuter, RelExpr::Scan("R"), RelExpr::Scan("S"),
      ScalarExpr::Or({Eq("R", "r_a", "S", "s_a"),
                      ScalarExpr::IsNull(ScalarExpr::Column("S", "s_a"))}));
  EXPECT_DEATH(ViewDef("v", tree, FullOutput({"R", "S"}), catalog_),
               "null-rejecting");
}

TEST_F(ViewDefDeathTest, RejectsDisconnectedJoinPredicates) {
  RelExprPtr tree = RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("R"), RelExpr::Scan("S"),
      ScalarExpr::Compare(CompareOp::kGt, ScalarExpr::Column("R", "r_a"),
                          ScalarExpr::Literal(Value::Int64(0))));
  EXPECT_DEATH(ViewDef("v", tree, FullOutput({"R", "S"}), catalog_),
               "connect both inputs");
}

TEST_F(ViewDefDeathTest, RejectsOutputMissingKeys) {
  RelExprPtr tree = RelExpr::Join(JoinKind::kInner, RelExpr::Scan("R"),
                                  RelExpr::Scan("S"),
                                  Eq("R", "r_a", "S", "s_a"));
  std::vector<ColumnRef> output = {{"R", "r_id"}, {"S", "s_a"}};  // no s_id
  EXPECT_DEATH(ViewDef("v", tree, output, catalog_),
               "unique key");
}

TEST_F(ViewDefDeathTest, RejectsPredicatesOverThreeTables) {
  RelExprPtr rs = RelExpr::Join(JoinKind::kInner, RelExpr::Scan("R"),
                                RelExpr::Scan("S"),
                                Eq("R", "r_a", "S", "s_a"));
  // A single conjunct referencing three tables is outside the paper's
  // model (predicates reference at most two tables).
  ScalarExprPtr three = ScalarExpr::Or(
      {Eq("R", "r_b", "T", "t_b"), Eq("S", "s_b", "T", "t_a")});
  RelExprPtr tree =
      RelExpr::Join(JoinKind::kLeftOuter, rs, RelExpr::Scan("T"), three);
  EXPECT_DEATH(ViewDef("v", tree, FullOutput({"R", "S", "T"}), catalog_),
               "2 tables");
}

TEST_F(ViewDefDeathTest, RejectsSelectionOutsideSubtree) {
  RelExprPtr tree = RelExpr::Select(
      RelExpr::Scan("R"),
      ScalarExpr::Compare(CompareOp::kGt, ScalarExpr::Column("S", "s_a"),
                          ScalarExpr::Literal(Value::Int64(0))));
  EXPECT_DEATH(ViewDef("v", tree, FullOutput({"R"}), catalog_),
               "outside its subtree");
}

}  // namespace
}  // namespace ojv
