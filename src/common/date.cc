#include "common/date.h"

#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace ojv {

// Algorithms from Howard Hinnant's chrono-compatible date algorithms.
int64_t DaysFromCivil(int year, int month, int day) {
  OJV_CHECK(month >= 1 && month <= 12, "month out of range");
  OJV_CHECK(day >= 1 && day <= 31, "day out of range");
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(day) - 1u;
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) -
         719468;
}

void CivilFromDays(int64_t days, int* year, int* month, int* day) {
  days += 719468;
  const int64_t era = (days >= 0 ? days : days - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(days - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *month = static_cast<int>(mp < 10 ? mp + 3 : mp - 9);
  *year = static_cast<int>(y + (*month <= 2));
}

int64_t ParseDate(const std::string& text) {
  int y = 0;
  int m = 0;
  int d = 0;
  OJV_CHECK(std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) == 3,
            "malformed date");
  return DaysFromCivil(y, m, d);
}

std::string FormatDate(int64_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace ojv
