// Initial materialization cost: full computation of the paper's views
// (outer-join view, its inner-join core, and the aggregated dashboard).
// Not a paper figure, but the baseline every incremental number in
// EXPERIMENTS.md is implicitly compared against: maintenance only pays
// off if it beats re-running this.

#include "bench_util.h"
#include "ivm/aggregate_view.h"
#include "ivm/maintainer.h"
#include "tpch/views.h"

namespace ojv {
namespace bench {
namespace {

int Run(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  std::printf("TPC-H SF=%.3f\n", options.scale_factor);
  TpchInstance instance(options);

  PrintHeader("Initial materialization",
              {"View", "Rows", "Time"});

  {
    ViewDef v3 = tpch::MakeV3(instance.catalog);
    ViewMaintainer maintainer(&instance.catalog, v3, MaintenanceOptions());
    double ms = TimeMs([&] { maintainer.InitializeView(); });
    PrintRow({"v3", FormatCount(maintainer.view().size()), FormatMs(ms)});
  }
  {
    ViewDef core = tpch::MakeV3(instance.catalog).CoreView(instance.catalog);
    ViewMaintainer maintainer(&instance.catalog, core, MaintenanceOptions());
    double ms = TimeMs([&] { maintainer.InitializeView(); });
    PrintRow({"v3_core", FormatCount(maintainer.view().size()),
              FormatMs(ms)});
  }
  {
    ViewDef oj = tpch::MakeOjView(instance.catalog);
    ViewMaintainer maintainer(&instance.catalog, oj, MaintenanceOptions());
    double ms = TimeMs([&] { maintainer.InitializeView(); });
    PrintRow({"oj_view", FormatCount(maintainer.view().size()),
              FormatMs(ms)});
  }
  {
    std::vector<ColumnRef> group_by = {{"customer", "c_mktsegment"}};
    std::vector<AggregateSpec> aggs = {
        {AggregateSpec::Kind::kCountStar, {}, "rows"},
        {AggregateSpec::Kind::kSum, {"lineitem", "l_extendedprice"},
         "revenue"}};
    AggViewMaintainer agg(&instance.catalog, tpch::MakeV3(instance.catalog),
                          group_by, aggs);
    double ms = TimeMs([&] { agg.InitializeView(); });
    PrintRow({"v3_by_segment", FormatCount(agg.num_groups()), FormatMs(ms)});
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace ojv

int main(int argc, char** argv) { return ojv::bench::Run(argc, argv); }
