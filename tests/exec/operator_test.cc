// Operator-level semantics of the executor: the four join types with SQL
// NULL behavior, semijoin/antijoin, outer union, removal of subsumed
// tuples, minimum union, duplicate elimination, and the null-if operator.

#include "exec/evaluator.h"

#include <gtest/gtest.h>

namespace ojv {
namespace {

class OperatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.CreateTable(
        "L",
        Schema({ColumnDef{"lid", ValueType::kInt64, false},
                ColumnDef{"lk", ValueType::kInt64, true}}),
        {"lid"});
    catalog_.CreateTable(
        "R",
        Schema({ColumnDef{"rid", ValueType::kInt64, false},
                ColumnDef{"rk", ValueType::kInt64, true}}),
        {"rid"});
    Table* l = catalog_.GetTable("L");
    // lid 1 matches two R rows; lid 2 matches none; lid 3 has NULL key.
    l->Insert(Row{Value::Int64(1), Value::Int64(10)});
    l->Insert(Row{Value::Int64(2), Value::Int64(20)});
    l->Insert(Row{Value::Int64(3), Value::Null()});
    Table* r = catalog_.GetTable("R");
    r->Insert(Row{Value::Int64(101), Value::Int64(10)});
    r->Insert(Row{Value::Int64(102), Value::Int64(10)});
    r->Insert(Row{Value::Int64(103), Value::Int64(30)});
    r->Insert(Row{Value::Int64(104), Value::Null()});
  }

  RelExprPtr JoinExpr(JoinKind kind) {
    return RelExpr::Join(kind, RelExpr::Scan("L"), RelExpr::Scan("R"),
                         ScalarExpr::ColumnsEqual({"L", "lk"}, {"R", "rk"}));
  }

  Relation Eval(const RelExprPtr& e) {
    Evaluator evaluator(&catalog_);
    return evaluator.EvalToRelation(e);
  }

  Catalog catalog_;
};

TEST_F(OperatorTest, InnerJoinSkipsNullKeys) {
  Relation out = Eval(JoinExpr(JoinKind::kInner));
  EXPECT_EQ(out.size(), 2);  // lid 1 x {101, 102}
  for (const Row& row : out.rows()) {
    EXPECT_EQ(row[0], Value::Int64(1));
  }
}

TEST_F(OperatorTest, LeftOuterJoinPreservesUnmatchedAndNullKeyRows) {
  Relation out = Eval(JoinExpr(JoinKind::kLeftOuter));
  EXPECT_EQ(out.size(), 4);  // 2 matches + lid 2 + lid 3 null-extended
  int null_extended = 0;
  for (const Row& row : out.rows()) {
    if (row[2].is_null()) ++null_extended;
  }
  EXPECT_EQ(null_extended, 2);
}

TEST_F(OperatorTest, RightOuterJoinPreservesRightSide) {
  Relation out = Eval(JoinExpr(JoinKind::kRightOuter));
  EXPECT_EQ(out.size(), 4);  // 2 matches + rid 103 + rid 104
  int unmatched = 0;
  for (const Row& row : out.rows()) {
    if (row[0].is_null()) ++unmatched;
  }
  EXPECT_EQ(unmatched, 2);
}

TEST_F(OperatorTest, FullOuterJoinPreservesBothSides) {
  Relation out = Eval(JoinExpr(JoinKind::kFullOuter));
  EXPECT_EQ(out.size(), 6);  // 2 matches + 2 left-only + 2 right-only
}

TEST_F(OperatorTest, SemiAndAntiJoin) {
  Relation semi = Eval(JoinExpr(JoinKind::kLeftSemi));
  EXPECT_EQ(semi.size(), 1);
  EXPECT_EQ(semi.row(0)[0], Value::Int64(1));
  EXPECT_EQ(semi.schema().num_columns(), 2);  // left columns only

  Relation anti = Eval(JoinExpr(JoinKind::kLeftAnti));
  EXPECT_EQ(anti.size(), 2);  // lid 2 and lid 3 (NULL never matches)
}

TEST_F(OperatorTest, NonEquiJoinFallsBackToNestedLoop) {
  RelExprPtr expr = RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("L"), RelExpr::Scan("R"),
      ScalarExpr::Compare(CompareOp::kLt, ScalarExpr::Column("L", "lk"),
                          ScalarExpr::Column("R", "rk")));
  Relation out = Eval(expr);
  // lk=10 < rk=30: lid 1; lk=20 < 30: lid 2; NULLs never qualify.
  EXPECT_EQ(out.size(), 2);
}

TEST_F(OperatorTest, SelectWithThreeValuedLogic) {
  // lk > 15 is unknown for the NULL row and false for lk=10.
  RelExprPtr expr = RelExpr::Select(
      RelExpr::Scan("L"),
      ScalarExpr::Compare(CompareOp::kGt, ScalarExpr::Column("L", "lk"),
                          ScalarExpr::Literal(Value::Int64(15))));
  Relation out = Eval(expr);
  EXPECT_EQ(out.size(), 1);
  EXPECT_EQ(out.row(0)[0], Value::Int64(2));
}

TEST_F(OperatorTest, IsNullPredicate) {
  RelExprPtr expr = RelExpr::Select(
      RelExpr::Scan("L"),
      ScalarExpr::IsNull(ScalarExpr::Column("L", "lk")));
  EXPECT_EQ(Eval(expr).size(), 1);
}

TEST_F(OperatorTest, ProjectKeepsTagsAndKeyInfo) {
  RelExprPtr expr = RelExpr::Project(
      RelExpr::Scan("L"), {ColumnRef{"L", "lid"}});
  Relation out = Eval(expr);
  EXPECT_EQ(out.schema().num_columns(), 1);
  EXPECT_TRUE(out.schema().HasFullKey("L"));

  // Projecting away the key loses key knowledge but keeps tags.
  RelExprPtr no_key = RelExpr::Project(
      RelExpr::Scan("L"), {ColumnRef{"L", "lk"}});
  Relation out2 = Eval(no_key);
  EXPECT_FALSE(out2.schema().HasFullKey("L"));
  EXPECT_TRUE(out2.schema().HasTable("L"));
}

TEST_F(OperatorTest, OuterUnionAlignsByTaggedColumns) {
  Relation out = Eval(RelExpr::OuterUnion(RelExpr::Scan("L"),
                                          RelExpr::Scan("R")));
  EXPECT_EQ(out.size(), 7);
  EXPECT_EQ(out.schema().num_columns(), 4);
  // L rows are null-extended on R's columns and vice versa.
  for (const Row& row : out.rows()) {
    EXPECT_TRUE(row[0].is_null() || row[2].is_null());
  }
}

TEST_F(OperatorTest, DedupRemovesExactDuplicatesOnly) {
  Relation in(Evaluator::SchemaFor(*catalog_.GetTable("L")));
  in.Add(Row{Value::Int64(1), Value::Int64(10)});
  in.Add(Row{Value::Int64(1), Value::Int64(10)});
  in.Add(Row{Value::Int64(1), Value::Null()});
  Relation out = Evaluator::DedupRows(std::move(in));
  EXPECT_EQ(out.size(), 2);
}

TEST_F(OperatorTest, RemoveSubsumedDropsNullExtendedDuplicates) {
  // Combined L+R schema with a subsumed row: (1,10,NULL,NULL) is
  // subsumed by (1,10,101,10).
  Relation joined = Eval(JoinExpr(JoinKind::kLeftOuter));
  Relation extra(joined.schema());
  for (const Row& row : joined.rows()) extra.Add(row);
  extra.Add(Row{Value::Int64(1), Value::Int64(10), Value::Null(),
                Value::Null()});
  int64_t before = extra.size();
  Relation out = Evaluator::RemoveSubsumed(std::move(extra));
  EXPECT_EQ(out.size(), before - 1);
}

TEST_F(OperatorTest, RemoveSubsumedRequiresAgreementOnSharedColumns) {
  Relation in(Eval(JoinExpr(JoinKind::kLeftOuter)).schema());
  in.Add(Row{Value::Int64(1), Value::Int64(10), Value::Null(), Value::Null()});
  in.Add(Row{Value::Int64(2), Value::Int64(20), Value::Int64(103),
             Value::Int64(30)});
  // Different lid: no subsumption.
  Relation out = Evaluator::RemoveSubsumed(std::move(in));
  EXPECT_EQ(out.size(), 2);
}

TEST_F(OperatorTest, MinUnionIsOuterUnionPlusSubsumptionRemoval) {
  // L ⊕ (L join R): the joined rows subsume their L-only counterparts.
  RelExprPtr expr =
      RelExpr::MinUnion(RelExpr::Scan("L"), JoinExpr(JoinKind::kInner));
  Relation out = Eval(expr);
  // L-only rows for lid 2 and 3 survive; lid 1 appears only joined.
  EXPECT_EQ(out.size(), 4);
  for (const Row& row : out.rows()) {
    if (row[0] == Value::Int64(1)) {
      EXPECT_FALSE(row[2].is_null());
    }
  }
}

TEST_F(OperatorTest, NullIfNullsTablesWhenPredicateNotTrue) {
  // Null out R's columns unless rk = 10; unknown (NULL rk) also nulls.
  RelExprPtr expr = RelExpr::NullIf(
      JoinExpr(JoinKind::kFullOuter), {"R"},
      ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column("R", "rk"),
                          ScalarExpr::Literal(Value::Int64(10))));
  Relation out = Eval(expr);
  for (const Row& row : out.rows()) {
    if (!row[3].is_null()) {
      EXPECT_EQ(row[3], Value::Int64(10));
    } else {
      EXPECT_TRUE(row[2].is_null());  // rid nulled together with rk
    }
  }
}

TEST_F(OperatorTest, DeltaScanBindsNamedRelations) {
  Relation delta(Evaluator::SchemaFor(*catalog_.GetTable("L")));
  delta.Add(Row{Value::Int64(99), Value::Int64(10)});
  Evaluator evaluator(&catalog_);
  evaluator.BindDelta("L", &delta);
  Relation out = evaluator.EvalToRelation(RelExpr::Join(
      JoinKind::kInner, RelExpr::DeltaScan("L"), RelExpr::Scan("R"),
      ScalarExpr::ColumnsEqual({"L", "lk"}, {"R", "rk"})));
  EXPECT_EQ(out.size(), 2);
  for (const Row& row : out.rows()) {
    EXPECT_EQ(row[0], Value::Int64(99));
  }
}

TEST_F(OperatorTest, TableOverrideSubstitutesState) {
  Relation old_state(Evaluator::SchemaFor(*catalog_.GetTable("R")));
  old_state.Add(Row{Value::Int64(500), Value::Int64(10)});
  Evaluator evaluator(&catalog_);
  evaluator.OverrideTable("R", &old_state);
  Relation out = evaluator.EvalToRelation(JoinExpr(JoinKind::kInner));
  EXPECT_EQ(out.size(), 1);
  EXPECT_EQ(out.row(0)[2], Value::Int64(500));
}

}  // namespace
}  // namespace ojv
