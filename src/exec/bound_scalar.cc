#include "exec/bound_scalar.h"

#include "common/check.h"

namespace ojv {

BoundScalar BoundScalar::Compile(const ScalarExprPtr& expr,
                                 const BoundSchema& schema) {
  OJV_CHECK(expr != nullptr, "null scalar expression");
  BoundScalar out;
  out.kind_ = expr->kind();
  switch (expr->kind()) {
    case ScalarKind::kColumn:
      out.position_ = schema.IndexOf(expr->column());
      break;
    case ScalarKind::kLiteral:
      out.literal_ = expr->literal();
      break;
    case ScalarKind::kCompare:
      out.compare_op_ = expr->compare_op();
      out.children_.push_back(Compile(expr->left(), schema));
      out.children_.push_back(Compile(expr->right(), schema));
      break;
    case ScalarKind::kAnd:
    case ScalarKind::kOr:
      for (const ScalarExprPtr& c : expr->children()) {
        out.children_.push_back(Compile(c, schema));
      }
      break;
    case ScalarKind::kNot:
    case ScalarKind::kIsNull:
      out.children_.push_back(Compile(expr->child(), schema));
      break;
  }
  return out;
}

Value BoundScalar::Eval(const Row& row) const {
  switch (kind_) {
    case ScalarKind::kColumn:
      return row[static_cast<size_t>(position_)];
    case ScalarKind::kLiteral:
      return literal_;
    case ScalarKind::kCompare: {
      Value l = children_[0].Eval(row);
      Value r = children_[1].Eval(row);
      int cmp = 0;
      if (!l.SqlCompare(r, &cmp)) return Value::Null();
      bool result = false;
      switch (compare_op_) {
        case CompareOp::kEq:
          result = cmp == 0;
          break;
        case CompareOp::kNe:
          result = cmp != 0;
          break;
        case CompareOp::kLt:
          result = cmp < 0;
          break;
        case CompareOp::kLe:
          result = cmp <= 0;
          break;
        case CompareOp::kGt:
          result = cmp > 0;
          break;
        case CompareOp::kGe:
          result = cmp >= 0;
          break;
      }
      return Value::Int64(result ? 1 : 0);
    }
    case ScalarKind::kAnd: {
      bool any_unknown = false;
      for (const BoundScalar& c : children_) {
        Value v = c.Eval(row);
        if (v.is_null()) {
          any_unknown = true;
        } else if (v.int64() == 0) {
          return Value::Int64(0);
        }
      }
      return any_unknown ? Value::Null() : Value::Int64(1);
    }
    case ScalarKind::kOr: {
      bool any_unknown = false;
      for (const BoundScalar& c : children_) {
        Value v = c.Eval(row);
        if (v.is_null()) {
          any_unknown = true;
        } else if (v.int64() != 0) {
          return Value::Int64(1);
        }
      }
      return any_unknown ? Value::Null() : Value::Int64(0);
    }
    case ScalarKind::kNot: {
      Value v = children_[0].Eval(row);
      if (v.is_null()) return Value::Null();
      return Value::Int64(v.int64() == 0 ? 1 : 0);
    }
    case ScalarKind::kIsNull: {
      Value v = children_[0].Eval(row);
      return Value::Int64(v.is_null() ? 1 : 0);
    }
  }
  return Value::Null();
}

bool BoundScalar::EvalBool(const Row& row) const {
  Value v = Eval(row);
  return !v.is_null() && v.int64() != 0;
}

}  // namespace ojv
