#include "opt/cardinality.h"

#include <algorithm>
#include <cmath>

namespace ojv {
namespace opt {

namespace {

double Clamp01(double s) {
  if (s < 0) return 0;
  if (s > 1) return 1;
  return s;
}

}  // namespace

void CardinalityEstimator::SetDeltaRows(const std::string& table,
                                        double rows) {
  delta_rows_[table] = rows < 0 ? 0 : rows;
}

void CardinalityEstimator::SetFanoutOverride(const std::string& right_table,
                                             double fanout) {
  fanout_overrides_[right_table] = fanout < 0 ? 0 : fanout;
}

void CardinalityEstimator::SetPartitionExclusion(const std::string& table,
                                                 PartitionExclusion ex) {
  ex.rows = std::max(ex.rows, 0.0);
  ex.keys = std::max(ex.keys, 0.0);
  exclusions_[table] = ex;
}

double CardinalityEstimator::TableRows(const std::string& table) const {
  const TableStats* stats = stats_ ? stats_->Get(table) : nullptr;
  if (stats == nullptr) return kUnknownTableRows;
  double rows = static_cast<double>(stats->row_count);
  auto it = exclusions_.find(table);
  if (it != exclusions_.end()) rows = std::max(rows - it->second.rows, 0.0);
  return rows;
}

double CardinalityEstimator::Ndv(const ColumnRef& ref) const {
  const TableStats* stats = stats_ ? stats_->Get(ref.table) : nullptr;
  if (stats == nullptr) return std::sqrt(kUnknownTableRows);
  double fallback = std::sqrt(std::max(1.0, static_cast<double>(stats->row_count)));
  double ndv = stats->DistinctOf(ref.column, fallback);
  auto it = exclusions_.find(ref.table);
  if (it != exclusions_.end()) ndv = std::max(ndv - it->second.keys, 1.0);
  return ndv;
}

double CardinalityEstimator::Estimate(const RelExprPtr& expr) {
  if (expr == nullptr) return 0;
  switch (expr->kind()) {
    case RelKind::kScan:
      return TableRows(expr->table());
    case RelKind::kDeltaScan: {
      auto it = delta_rows_.find(expr->table());
      return it != delta_rows_.end() ? it->second : 1.0;
    }
    case RelKind::kSelect:
      return Estimate(expr->input()) * Selectivity(expr->predicate());
    case RelKind::kProject:
    case RelKind::kDedup:
    case RelKind::kSubsumeRemove:
    case RelKind::kNullIf:
      // λ never changes counts; δ/↓ only shrink — pass-through is a safe
      // (pessimistic) bound for ordering decisions.
      return Estimate(expr->input());
    case RelKind::kJoin: {
      double left = Estimate(expr->left());
      std::set<std::string> rtabs = expr->right()->ReferencedTables();
      std::string right_table =
          rtabs.size() == 1 ? *rtabs.begin() : std::string();
      double fanout =
          JoinFanout(expr->right(), expr->predicate(), right_table);
      double inner = left * fanout;
      switch (expr->join_kind()) {
        case JoinKind::kInner:
          return inner;
        case JoinKind::kLeftOuter:
          return std::max(inner, left);
        case JoinKind::kRightOuter:
          return std::max(inner, Estimate(expr->right()));
        case JoinKind::kFullOuter:
          return std::max(inner,
                          std::max(left, Estimate(expr->right())));
        case JoinKind::kLeftSemi:
          return std::min(left, inner);
        case JoinKind::kLeftAnti:
          return std::max(left - inner, 0.0);
      }
      return inner;
    }
    case RelKind::kOuterUnion:
    case RelKind::kMinUnion:
      return Estimate(expr->left()) + Estimate(expr->right());
  }
  return 0;
}

double CardinalityEstimator::JoinFanout(const RelExprPtr& right,
                                        const ScalarExprPtr& pred,
                                        const std::string& right_table) {
  if (!right_table.empty()) {
    auto it = fanout_overrides_.find(right_table);
    if (it != fanout_overrides_.end()) return it->second;
  }
  double fanout = Estimate(right);
  for (const ScalarExprPtr& c : SplitConjuncts(pred)) {
    if (c->kind() == ScalarKind::kCompare &&
        c->compare_op() == CompareOp::kEq &&
        c->left()->kind() == ScalarKind::kColumn &&
        c->right()->kind() == ScalarKind::kColumn) {
      // Containment of values: matching rows per left row is
      // |right| / max(ndv_l, ndv_r).
      double ndv = std::max(
          {Ndv(c->left()->column()), Ndv(c->right()->column()), 1.0});
      fanout /= ndv;
    } else {
      fanout *= ConjunctSelectivity(c);
    }
  }
  return std::max(fanout, 0.0);
}

double CardinalityEstimator::Selectivity(const ScalarExprPtr& pred) {
  if (pred == nullptr) return 1.0;
  double sel = 1.0;
  for (const ScalarExprPtr& c : SplitConjuncts(pred)) {
    sel *= ConjunctSelectivity(c);
  }
  return Clamp01(sel);
}

double CardinalityEstimator::ConjunctSelectivity(const ScalarExprPtr& c) {
  switch (c->kind()) {
    case ScalarKind::kLiteral:
      return c->literal().is_null() ? 0.0 : 1.0;
    case ScalarKind::kAnd: {
      double sel = 1.0;
      for (const ScalarExprPtr& child : c->children()) {
        sel *= ConjunctSelectivity(child);
      }
      return Clamp01(sel);
    }
    case ScalarKind::kOr: {
      double none = 1.0;
      for (const ScalarExprPtr& child : c->children()) {
        none *= 1.0 - ConjunctSelectivity(child);
      }
      return Clamp01(1.0 - none);
    }
    case ScalarKind::kNot:
      return Clamp01(1.0 - ConjunctSelectivity(c->child()));
    case ScalarKind::kIsNull: {
      if (c->child()->kind() == ScalarKind::kColumn) {
        const ColumnRef& ref = c->child()->column();
        const TableStats* stats = stats_ ? stats_->Get(ref.table) : nullptr;
        const ColumnStats* col =
            stats != nullptr ? stats->Column(ref.column) : nullptr;
        if (col != nullptr && stats->row_count > 0) {
          return Clamp01(static_cast<double>(col->null_count) /
                         static_cast<double>(stats->row_count));
        }
      }
      return 0.1;
    }
    case ScalarKind::kCompare: {
      const ScalarExprPtr& l = c->left();
      const ScalarExprPtr& r = c->right();
      bool l_col = l->kind() == ScalarKind::kColumn;
      bool r_col = r->kind() == ScalarKind::kColumn;
      if (l_col && r_col) {
        if (c->compare_op() == CompareOp::kEq) {
          double ndv =
              std::max({Ndv(l->column()), Ndv(r->column()), 1.0});
          return 1.0 / ndv;
        }
        return kDefaultSelectivity;
      }
      const ScalarExpr* col_side = l_col ? l.get() : (r_col ? r.get() : nullptr);
      const ScalarExpr* lit_side = l_col ? r.get() : (r_col ? l.get() : nullptr);
      if (col_side == nullptr || lit_side->kind() != ScalarKind::kLiteral) {
        return kDefaultSelectivity;
      }
      double ndv = Ndv(col_side->column());
      CompareOp op = c->compare_op();
      // Normalize to column-on-the-left.
      if (!l_col) {
        switch (op) {
          case CompareOp::kLt: op = CompareOp::kGt; break;
          case CompareOp::kLe: op = CompareOp::kGe; break;
          case CompareOp::kGt: op = CompareOp::kLt; break;
          case CompareOp::kGe: op = CompareOp::kLe; break;
          default: break;
        }
      }
      if (op == CompareOp::kEq) return 1.0 / std::max(ndv, 1.0);
      if (op == CompareOp::kNe) {
        return Clamp01(1.0 - 1.0 / std::max(ndv, 1.0));
      }
      // Range comparison: interpolate against the min/max sketch.
      const Value& lit = lit_side->literal();
      if (!lit.is_null() && !lit.is_string()) {
        const TableStats* stats =
            stats_ ? stats_->Get(col_side->column().table) : nullptr;
        const ColumnStats* col =
            stats != nullptr ? stats->Column(col_side->column().column)
                             : nullptr;
        if (col != nullptr && col->has_range && col->max > col->min) {
          double v = lit.AsDouble();
          double frac = (v - col->min) / (col->max - col->min);
          if (op == CompareOp::kLt || op == CompareOp::kLe) {
            return Clamp01(frac);
          }
          return Clamp01(1.0 - frac);
        }
      }
      return kDefaultSelectivity;
    }
    case ScalarKind::kColumn:
      return kDefaultSelectivity;
  }
  return kDefaultSelectivity;
}

}  // namespace opt
}  // namespace ojv
