#ifndef OJV_OPT_FINGERPRINT_H_
#define OJV_OPT_FINGERPRINT_H_

#include <set>
#include <string>
#include <vector>

#include "algebra/rel_expr.h"

namespace ojv {
namespace opt {

/// Leaf name used by shared suffix expressions: the multiview layer
/// evaluates a group's common prefix once and binds the resulting
/// relation under this name (Evaluator::BindDelta), so the per-view
/// suffixes read it like a delta scan. The '#' prefix keeps it out of
/// the base-table namespace.
inline constexpr char kSharedPrefixLeaf[] = "#mv.prefix";

/// One main-path step of a decomposed left-deep delta expression, plus
/// a structural signature used to compare steps across views. Two steps
/// with equal signatures compute the same operator over the same
/// inputs, so a run of equal signatures starting at the ΔT leaf is a
/// shareable prefix.
struct FingerprintStep {
  RelKind kind = RelKind::kJoin;
  // kJoin
  JoinKind join_kind = JoinKind::kInner;
  RelExprPtr right;         // original right operand (leaf or σ(leaf))
  std::string right_table;  // single right table, "" when composite
  // kJoin / kSelect / kNullIf
  ScalarExprPtr pred;
  // kNullIf
  std::set<std::string> null_tables;
  /// Structural rendering, e.g. "join|lojn|sel(O.o_a>=5)O|C.c_id=O.o_fk".
  std::string signature;
};

/// A view's delta expression for one base table, decomposed into the ΔT
/// base leaf and the bottom-up main-path steps. `ok` is false when the
/// expression falls outside the left-deep delta grammar (or the base
/// leaf is not ΔT of the expected table); such views never share.
struct DeltaFingerprint {
  bool ok = false;
  std::string delta_table;          // the ΔT source table
  std::vector<FingerprintStep> steps;

  /// Signature of the first `prefix_len` steps joined with ";", prefixed
  /// by the delta table. Signature(0) identifies just the ΔT source.
  std::string Signature(size_t prefix_len) const;
};

/// Decomposes `expr` (a per-table primary-delta expression whose base
/// leaf must be DeltaScan(delta_table)) into a fingerprint. Mirrors the
/// planner's left-deep decomposition: Scan/DeltaScan terminate;
/// Select/NullIf/Dedup/SubsumeRemove/Join with a simple right operand
/// become steps; anything else yields ok = false.
DeltaFingerprint FingerprintDelta(const RelExprPtr& expr,
                                  const std::string& delta_table);

/// Length of the longest common step prefix of two fingerprints with
/// the same delta table (0 when tables differ or either is not ok).
size_t CommonPrefixLength(const DeltaFingerprint& a, const DeltaFingerprint& b);

/// Rebuilds the prefix expression: steps [0, len) applied bottom-up
/// over DeltaScan(delta_table). Uses the retained operand/predicate
/// pointers, so the rebuilt tree evaluates identically to the original.
RelExprPtr BuildPrefixExpr(const DeltaFingerprint& fp, size_t len);

/// Rebuilds the suffix expression: steps [len, size) applied bottom-up
/// over DeltaScan(leaf_name). The caller binds the evaluated prefix
/// relation under `leaf_name` (normally kSharedPrefixLeaf) before
/// evaluating. BuildSuffixExpr(fp, 0, table) reproduces the full plan.
RelExprPtr BuildSuffixExpr(const DeltaFingerprint& fp, size_t len,
                           const std::string& leaf_name);

}  // namespace opt
}  // namespace ojv

#endif  // OJV_OPT_FINGERPRINT_H_
