file(REMOVE_RECURSE
  "CMakeFiles/ojv_cli.dir/ojv_cli.cc.o"
  "CMakeFiles/ojv_cli.dir/ojv_cli.cc.o.d"
  "ojv_cli"
  "ojv_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ojv_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
