#ifndef OJV_OBS_METRICS_H_
#define OJV_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs_config.h"

namespace ojv {
namespace obs {

/// Escapes a string for embedding in a JSON string literal. Shared by
/// every obs JSON writer (metric registry, trace export).
std::string JsonEscape(const std::string& s);

/// Monotonic process counter. Add is a single relaxed fetch_add, safe
/// from any thread including pool workers in the middle of a morsel
/// loop. Counters are owned by the Registry and live for the process;
/// call sites cache the reference in a function-local static:
///
///   if constexpr (obs::kEnabled) {
///     static obs::Counter& c =
///         obs::Registry::Global().GetCounter("ojv.exec.pool.morsels");
///     c.Add(n);
///   }
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time level. Unlike Counter, a Gauge can go down: Set stores
/// the current level (log depth, group count, hot-phase flag), Add
/// applies a delta for call sites that track increments/decrements.
/// Both are single relaxed atomics, safe from any thread. Same caching
/// idiom as Counter:
///
///   if constexpr (obs::kEnabled) {
///     static obs::Gauge& g =
///         obs::Registry::Global().GetGauge("ojv.deferred.log_depth_rows");
///     g.Set(static_cast<int64_t>(entries_.size()));
///   }
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Builds a per-instance metric name in the Prometheus label idiom:
/// LabeledMetric("ojv.deferred.view.staleness_micros", "view", "mv1")
/// => `ojv.deferred.view.staleness_micros{view="mv1"}`. The registry
/// treats the whole string as an opaque key; the exporter splits the
/// base name from the label block so Prometheus sees one metric family
/// with a `view` label rather than one family per view. Label values
/// are escaped per the exposition format (backslash, quote, newline).
std::string LabeledMetric(const std::string& base, const std::string& label_key,
                          const std::string& label_value);

/// Lock-free histogram over power-of-two buckets: bucket b counts
/// samples in [2^(b-1), 2^b) (bucket 0 holds <= 0 and 1... precisely,
/// samples v <= 1). Good to a factor of two, which is all the
/// maintenance latencies need, and Record is two relaxed fetch_adds.
/// Negative samples are clamped to 0 at record time: they would land in
/// bucket 0 anyway but drive sum_ negative, corrupting means (durations
/// can come out negative under wall-clock adjustment).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  /// Bucket index for a sample: 0 for v <= 1, else 1 + floor(log2(v-1)),
  /// clamped to the last bucket. Shared with WindowedHistogram so both
  /// agree on bucket boundaries.
  static int BucketOf(int64_t value);
  /// Upper bound of bucket b (the value PercentileBound reports).
  static int64_t BucketUpperBound(int b) {
    return b == 0 ? 1 : int64_t{1} << b;
  }

  void Record(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket(int b) const {
    return buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }
  /// Upper bound of the bucket containing the p-th percentile
  /// (0 < p <= 100) of the recorded samples; 0 when empty.
  int64_t PercentileBound(double p) const;
  void Reset();

 private:
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Snapshot of one histogram, for reports.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t p50 = 0;
  int64_t p99 = 0;
};

/// Process-wide metric registry, sharded by name hash so concurrent
/// first-time lookups from different subsystems do not serialize on one
/// mutex. Lookups after the first are expected to be cached by the call
/// site (see Counter); the maps' node stability makes the returned
/// references permanent. Names follow `ojv.<subsystem>.<metric>`.
class Registry {
 public:
  static Registry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// All counters (name, value), sorted by name. Zero-valued counters
  /// are included: a registered-but-zero counter is information.
  std::vector<std::pair<std::string, int64_t>> CounterSnapshot() const;
  std::vector<std::pair<std::string, int64_t>> GaugeSnapshot() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> HistogramSnapshots()
      const;

  /// JSON object fragment:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  void WriteJson(std::ostream& out) const;

  /// Zeroes every metric (tests). References stay valid — entries are
  /// reset, never erased.
  void ResetForTest();

 private:
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, Histogram> histograms;
  };
  Shard& ShardFor(const std::string& name);

  std::array<Shard, kShards> shards_;
};

}  // namespace obs
}  // namespace ojv

#endif  // OJV_OBS_METRICS_H_
