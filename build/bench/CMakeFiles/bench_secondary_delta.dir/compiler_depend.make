# Empty compiler generated dependencies file for bench_secondary_delta.
# This may be replaced when dependencies are built.
