#ifndef OJV_OBS_FLIGHT_RECORDER_H_
#define OJV_OBS_FLIGHT_RECORDER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs_config.h"
#include "obs/trace.h"

namespace ojv {
namespace obs {

/// Always-on flight recorder: fixed-capacity per-thread ring buffers of
/// the most recent finished spans, recorded from every obs::Span (and
/// the evaluator's per-node events) whether or not a TraceContext is
/// attached. When a latency spike happens, the last ~kRingCapacity
/// spans per thread are still in memory and can be dumped — via API or
/// SIGUSR2 — into the same Chrome trace_event JSON that
/// TraceContext::WriteChromeTrace produces.
///
/// Cost model: one relaxed-atomic sampling check per span construction
/// plus four relaxed stores per finished span. Memory is bounded at
/// kRingCapacity slots per thread that ever records; rings are leaked
/// like the metric Registry so dumps work during shutdown. Slots are
/// individually-atomic fields with no cross-field ordering: a snapshot
/// racing a wrapping writer can observe a torn event (name from one
/// span, duration from another). That is the accepted price for a
/// zero-lock hot path — the dump is a diagnostic, not a ledger.
///
/// Span names/categories are stored as `const char*` and must be
/// string literals (every Span call site passes literals; the evaluator
/// uses ExecSpanNameFor's literal table).
///
/// Under -DOJV_OBS=OFF every method is an if-constexpr no-op: no rings
/// are allocated, no poller thread starts, Sample() is constant false.
class FlightRecorder {
 public:
  static constexpr size_t kRingCapacity = 4096;  // spans per thread

  static FlightRecorder& Global();

  /// Master switch (default on — it is a *flight* recorder). Turning it
  /// off stops new records; existing ring contents stay dumpable.
  void SetEnabled(bool enabled);
  bool enabled() const;

  /// Record every n-th span per thread (default 1 = everything). The
  /// knob for workloads where even ring writes are too hot.
  void SetSampleEvery(int n);
  int sample_every() const;

  /// Sampling gate for Span: true when the recorder is on and the
  /// calling thread's sample counter fires. Advances the counter.
  bool Sample();

  /// Micros since the recorder's epoch (steady clock, process-wide —
  /// unlike TraceContext::NowMicros which is per-context).
  int64_t NowMicros() const;

  /// Appends one finished span to the calling thread's ring,
  /// overwriting the oldest entry once full.
  void Record(const char* name, const char* category, int64_t start_micros,
              int64_t dur_micros);

  /// All live ring contents as TraceEvents (tid = ring registration
  /// order, parent = -1), sorted by start time.
  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace_event JSON of Snapshot() (see WriteChromeTraceEvents).
  void WriteChromeTrace(std::ostream& out) const;

  /// Atomic (tmp + rename) Chrome-trace dump. The on-demand API path.
  bool DumpToFile(const std::string& path, std::string* error = nullptr) const;

  // --- SIGUSR2 dump path ---
  //
  // The signal handler only sets an atomic flag (async-signal-safe); a
  // background poller thread notices and performs the dump with regular
  // file I/O. Dumps land in `dir` as flight-<n>.json, n increasing.

  /// Installs the SIGUSR2 handler and starts the poller. Returns false
  /// when observability is compiled out. Idempotent; a second call just
  /// updates the directory.
  bool StartSignalDumps(const std::string& dir);
  void StopSignalDumps();

  /// Requests a dump exactly as SIGUSR2 would (shared flag).
  void RequestDump();

  /// Performs the pending dump now, if one was requested; returns the
  /// written path or "". Called by the poller; tests call it directly
  /// after raise(SIGUSR2) for a deterministic dump point.
  std::string DrainPendingDump();

  /// Zeroes every ring (entries, not registrations) and the dump
  /// sequence number. Tests only.
  void ClearForTest();

 private:
  struct Slot {
    std::atomic<const char*> name{nullptr};  // nullptr = never written
    std::atomic<const char*> category{nullptr};
    std::atomic<int64_t> start_micros{0};
    std::atomic<int64_t> dur_micros{0};
  };
  struct Ring {
    std::array<Slot, kRingCapacity> slots;
    std::atomic<uint64_t> next{0};  // monotone; slot = next % capacity
    int tid = 0;
  };

  FlightRecorder();
  Ring* RingForThisThread();

  std::atomic<bool> enabled_{true};
  std::atomic<int> sample_every_{1};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex rings_mu_;
  std::vector<Ring*> rings_;  // leaked: threads may outlive any joiner

  std::mutex dump_mu_;  // guards dump_dir_, poller_, dump_seq_
  std::string dump_dir_;
  std::thread poller_;
  std::atomic<bool> poller_stop_{false};
  int dump_seq_ = 0;
};

}  // namespace obs
}  // namespace ojv

#endif  // OJV_OBS_FLIGHT_RECORDER_H_
