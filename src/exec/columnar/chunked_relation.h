#ifndef OJV_EXEC_COLUMNAR_CHUNKED_RELATION_H_
#define OJV_EXEC_COLUMNAR_CHUNKED_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/relation.h"

namespace ojv {
namespace columnar {

/// Storage class of a column: every value of a column shares one class,
/// so kernels loop over contiguous typed arrays instead of dispatching
/// on per-value tags.
enum class ColumnClass {
  kI64,    // kInt64 / kDate (dates are day counts)
  kF64,    // kFloat64
  kValue,  // kString, or a column whose values defied its declared type
};

ColumnClass ClassOf(ValueType type);

/// One column of a chunked relation: a contiguous typed array over all
/// rows plus a packed validity bitmap (bit r set = row r non-null).
/// Exactly one of the payload vectors is populated, per `cls`. The
/// bitmap is authoritative: payload slots of invalid rows hold
/// unspecified values and must never be read as data.
struct Column {
  ColumnClass cls = ColumnClass::kI64;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<Value> val;
  std::vector<uint64_t> valid;

  bool Valid(int64_t row) const {
    return (valid[static_cast<size_t>(row >> 6)] >>
            (static_cast<size_t>(row) & 63)) &
           1;
  }
  void SetValid(int64_t row) {
    valid[static_cast<size_t>(row >> 6)] |= uint64_t{1}
                                            << (static_cast<size_t>(row) & 63);
  }
  void ClearValid(int64_t row) {
    valid[static_cast<size_t>(row >> 6)] &=
        ~(uint64_t{1} << (static_cast<size_t>(row) & 63));
  }
};

/// Selection vector: row indexes into a ChunkedRelation, in ascending
/// order within one kernel invocation. 32-bit on purpose — it halves
/// the gather bandwidth and AVX2's i32gather consumes it directly.
using SelVector = std::vector<int32_t>;

/// Columnar twin of Relation: the same bound schema over per-column
/// contiguous typed arrays with packed validity bitmaps, plus one
/// packed null-extension bitmask per source table (bit r = row r is
/// null-extended on that table, i.e. the table's key is NULL — the test
/// every outer-join maintenance expression keeps asking). Rows are
/// processed in fixed-size chunks: chunk c covers rows
/// [c*chunk_rows, min((c+1)*chunk_rows, num_rows)), and chunks are also
/// the morsel unit of the parallel kernel loops.
class ChunkedRelation {
 public:
  ChunkedRelation() = default;

  /// Converts a row relation (chunk_rows must be >= 1). Columns whose
  /// declared type mismatches an actual non-null value degrade to
  /// ColumnClass::kValue, so conversion never loses information.
  static ChunkedRelation FromRelation(const Relation& rel,
                                      int64_t chunk_rows);

  /// Converts back to a row relation (validity-aware: invalid slots
  /// come back as NULL values).
  Relation ToRelation() const;

  /// An all-NULL relation of `rows` rows: zeroed payloads, zeroed
  /// validity, null masks all set. Kernels building an output fill the
  /// typed arrays and validity, then call RebuildNullMasks. `classes`
  /// carries over source-column degradations (one entry per column).
  static ChunkedRelation Allocate(BoundSchema schema,
                                  const std::vector<ColumnClass>& classes,
                                  int64_t rows, int64_t chunk_rows);

  /// Recomputes every table's null-extension mask from the validity of
  /// its first key column (derived state; call after mutating validity).
  void RebuildNullMasks();

  const BoundSchema& schema() const { return schema_; }
  int num_columns() const { return static_cast<int>(cols_.size()); }
  int64_t num_rows() const { return num_rows_; }
  int64_t chunk_rows() const { return chunk_rows_; }
  int64_t num_chunks() const {
    return chunk_rows_ == 0 ? 0
                            : (num_rows_ + chunk_rows_ - 1) / chunk_rows_;
  }
  /// Row range of chunk c.
  int64_t ChunkBegin(int64_t c) const { return c * chunk_rows_; }
  int64_t ChunkEnd(int64_t c) const {
    const int64_t end = (c + 1) * chunk_rows_;
    return end < num_rows_ ? end : num_rows_;
  }

  const Column& column(int c) const { return cols_[static_cast<size_t>(c)]; }
  Column* mutable_column(int c) { return &cols_[static_cast<size_t>(c)]; }

  /// Tables with their full key present (the ones with a null-extension
  /// mask), in deterministic order.
  const std::vector<std::string>& mask_tables() const { return mask_tables_; }
  /// Packed null-extension bitmask of mask_tables()[t].
  const std::vector<uint64_t>& table_null_mask(int t) const {
    return table_null_[static_cast<size_t>(t)];
  }
  std::vector<uint64_t>* mutable_table_null_mask(int t) {
    return &table_null_[static_cast<size_t>(t)];
  }
  /// True when `row` is null-extended on mask_tables()[t].
  bool IsNullExtended(int t, int64_t row) const {
    return (table_null_[static_cast<size_t>(t)]
                       [static_cast<size_t>(row >> 6)] >>
            (static_cast<size_t>(row) & 63)) &
           1;
  }

  /// Materializes one cell as a Value (any class; NULL when invalid).
  /// Slow path — kernels use the typed arrays; this serves fallbacks,
  /// conversion, and cross-class comparisons.
  Value GetValue(int c, int64_t row) const;

  /// Typed equality of two cells in possibly different relations,
  /// matching Value::operator== (NULL == NULL is true).
  static bool CellsEqual(const ChunkedRelation& a, int ca, int64_t ra,
                         const ChunkedRelation& b, int cb, int64_t rb);

 private:
  BoundSchema schema_;
  int64_t chunk_rows_ = 0;
  int64_t num_rows_ = 0;
  std::vector<Column> cols_;
  std::vector<std::string> mask_tables_;
  std::vector<std::vector<uint64_t>> table_null_;
};

}  // namespace columnar
}  // namespace ojv

#endif  // OJV_EXEC_COLUMNAR_CHUNKED_RELATION_H_
