# Empty dependencies file for bench_fk_fastpath.
# This may be replaced when dependencies are built.
