// Checks that the ΔV^D construction reproduces the paper's
// transformations exactly:
//  - equation (3)/(4) and Figure 2: V1 -> ΔV1^D (bushy)
//  - equation (6) and Figure 3: left-deep conversion of ΔV1^D
//  - Example 10: foreign-key SimplifyTree
// plus semantic equivalence of every transformation stage.

#include "ivm/primary_delta.h"

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ivm/left_deep.h"
#include "ivm/simplify_tree.h"
#include "normalform/jdnf.h"
#include "test_util.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace {

using testing_util::CreateRstuSchema;
using testing_util::MakeV1;
using testing_util::PopulateRandomRstu;

TEST(PrimaryDeltaTest, V1DeltaTreeMatchesFigure2d) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  ViewDef v1 = MakeV1(catalog);
  // Equation (4): ΔV1^D = (ΔT lo U) join (R fo S).
  RelExprPtr delta = BuildPrimaryDeltaExpr(v1, "T");
  EXPECT_EQ(delta->ToString(),
            "((dT lojn U) join (R fojn S))");
}

TEST(PrimaryDeltaTest, V1DeltaForEachTable) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  ViewDef v1 = MakeV1(catalog);
  // Updating R: R is on the left spine already; fo weakens to lo along
  // the path and the top lo keeps R on the left.
  EXPECT_EQ(BuildPrimaryDeltaExpr(v1, "R")->ToString(),
            "((dR lojn S) lojn (T fojn U))");
  // Updating S: commute R fo S to S fo R, then weaken fo -> lo (the
  // {S}-only term survives, so the delta side must be preserved).
  EXPECT_EQ(BuildPrimaryDeltaExpr(v1, "S")->ToString(),
            "((dS lojn R) lojn (T fojn U))");
  // Updating U: commute T fo U to U fo T (-> lo); the top lo with the
  // delta on the right becomes an inner join.
  EXPECT_EQ(BuildPrimaryDeltaExpr(v1, "U")->ToString(),
            "((dU lojn T) join (R fojn S))");
}

TEST(PrimaryDeltaTest, V1LeftDeepMatchesEquation6) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  ViewDef v1 = MakeV1(catalog);
  RelExprPtr delta = BuildPrimaryDeltaExpr(v1, "T");
  RelExprPtr left_deep = ToLeftDeep(delta);
  EXPECT_TRUE(IsLeftDeep(left_deep));
  // Equation (6): ((ΔT lo U) join R) lo S — the (R fo S) right operand is
  // pulled apart; joining R first is exact (rule: e1 join (e2 fo e3) =
  // (e1 join e2) lo e3 with e2 = R because the main predicate references
  // R, not S).
  EXPECT_EQ(left_deep->ToString(),
            "(((dT lojn U) join R) lojn S)");
}

TEST(PrimaryDeltaTest, DirectPartEqualsDirectTermsUnion) {
  // V^D built by the join-weakening rewrite must equal the minimum union
  // of the directly affected terms (paper §4).
  Catalog catalog;
  CreateRstuSchema(&catalog);
  Rng rng(99);
  PopulateRandomRstu(&catalog, &rng, 35, 5);
  ViewDef v1 = MakeV1(catalog);
  std::vector<Term> terms = ComputeJdnf(v1.tree(), catalog);

  for (const char* updated : {"R", "S", "T", "U"}) {
    RelExprPtr direct_expr = BuildDirectPartExpr(v1, updated);
    // Minimum union of the terms containing `updated`.
    RelExprPtr expected_expr;
    for (const Term& term : terms) {
      if (term.source.count(updated) == 0) continue;
      RelExprPtr t = term.ToRelExpr();
      expected_expr = expected_expr == nullptr
                          ? t
                          : RelExpr::MinUnion(expected_expr, t);
    }
    Evaluator evaluator(&catalog);
    Relation actual = evaluator.EvalToRelation(direct_expr);
    Relation expected = evaluator.EvalToRelation(expected_expr);
    std::string diff;
    EXPECT_TRUE(SameBag(expected, actual, &diff))
        << "V^D mismatch for " << updated << ": " << diff;
  }
}

TEST(PrimaryDeltaTest, LeftDeepIsSemanticallyEquivalent) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  Rng rng(1234);
  PopulateRandomRstu(&catalog, &rng, 40, 4);
  ViewDef v1 = MakeV1(catalog);

  for (const char* updated : {"R", "S", "T", "U"}) {
    RelExprPtr bushy = BuildPrimaryDeltaExpr(v1, updated);
    RelExprPtr left_deep = ToLeftDeep(bushy);
    // Treat a fresh batch as the delta.
    int64_t key = 50000;
    std::vector<Row> rows =
        testing_util::RandomRstuRows(updated, &rng, 10, 4, &key);
    Relation delta(
        Evaluator::SchemaFor(*catalog.GetTable(updated)));
    for (Row& r : rows) delta.Add(std::move(r));

    Evaluator evaluator(&catalog);
    evaluator.BindDelta(updated, &delta);
    Relation bushy_result = evaluator.EvalToRelation(bushy);
    Relation ld_result = evaluator.EvalToRelation(left_deep);
    std::string diff;
    EXPECT_TRUE(SameBag(bushy_result, ld_result, &diff))
        << "left-deep mismatch for " << updated << ": " << diff;
  }
}

TEST(PrimaryDeltaTest, SimplifyTreeExample10) {
  // Example 10: add FK U.u_b -> T.t_id and join T fo U on t_id = u_b.
  // The primary delta for T then loses the lo U join entirely:
  // ΔV1^D = (ΔT join R) lo S.
  Catalog catalog;
  CreateRstuSchema(&catalog);
  catalog.AddForeignKey({"U", {"u_b"}, "T", {"t_id"}});

  auto eq = [](const char* t1, const char* c1, const char* t2,
               const char* c2) {
    return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                               ScalarExpr::Column(t2, c2));
  };
  RelExprPtr rs = RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("R"),
                                RelExpr::Scan("S"),
                                eq("R", "r_a", "S", "s_a"));
  RelExprPtr tu = RelExpr::Join(JoinKind::kFullOuter, RelExpr::Scan("T"),
                                RelExpr::Scan("U"),
                                eq("T", "t_id", "U", "u_b"));
  RelExprPtr tree = RelExpr::Join(JoinKind::kLeftOuter, rs, tu,
                                  eq("R", "r_b", "T", "t_b"));
  std::vector<ColumnRef> output;
  for (const char* name : {"R", "S", "T", "U"}) {
    std::string p(1, static_cast<char>(std::tolower(name[0])));
    for (const char* suffix : {"_id", "_a", "_b", "_v"}) {
      output.push_back(ColumnRef{name, p + suffix});
    }
  }
  ViewDef view("v1_fk", tree, output, catalog);

  RelExprPtr delta = BuildPrimaryDeltaExpr(view, "T");
  EXPECT_EQ(delta->ToString(), "((dT lojn U) join (R fojn S))");

  std::set<std::string> children = FkChildrenJoinedOnKey(view, "T", catalog);
  EXPECT_EQ(children, std::set<std::string>{"U"});

  SimplifyResult simplified = SimplifyDeltaTree(delta, children);
  ASSERT_FALSE(simplified.empty);
  EXPECT_EQ(simplified.joins_eliminated, 1);
  EXPECT_EQ(ToLeftDeep(simplified.expr)->ToString(),
            "((dT join R) lojn S)");
}

TEST(PrimaryDeltaTest, SimplifyTreeProvesEmptyDeltaForInnerJoin) {
  // If the FK child is reached through an inner join, the whole delta is
  // empty (no new T row can produce any view row through that join).
  Catalog catalog;
  CreateRstuSchema(&catalog);
  catalog.AddForeignKey({"U", {"u_b"}, "T", {"t_id"}});
  auto eq = [](const char* t1, const char* c1, const char* t2,
               const char* c2) {
    return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                               ScalarExpr::Column(t2, c2));
  };
  RelExprPtr tu = RelExpr::Join(JoinKind::kInner, RelExpr::Scan("T"),
                                RelExpr::Scan("U"),
                                eq("T", "t_id", "U", "u_b"));
  std::vector<ColumnRef> output = {{"T", "t_id"}, {"U", "u_id"}};
  ViewDef view("tu", tu, output, catalog);

  RelExprPtr delta = BuildPrimaryDeltaExpr(view, "T");
  SimplifyResult simplified =
      SimplifyDeltaTree(delta, FkChildrenJoinedOnKey(view, "T", catalog));
  EXPECT_TRUE(simplified.empty);
}

TEST(PrimaryDeltaTest, OjViewPartInsertFastPath) {
  // Example 1 / §6: inserting parts reduces to inserting ΔP itself.
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  ViewDef oj_view = tpch::MakeOjView(catalog);
  RelExprPtr delta = BuildPrimaryDeltaExpr(oj_view, "part");
  SimplifyResult simplified = SimplifyDeltaTree(
      delta, FkChildrenJoinedOnKey(oj_view, "part", catalog));
  ASSERT_FALSE(simplified.empty);
  EXPECT_EQ(simplified.expr->ToString(), "dpart");
}

TEST(PrimaryDeltaTest, V3LineitemDeltaIsLeftDeep) {
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  ViewDef v3 = tpch::MakeV3(catalog);
  RelExprPtr delta = ToLeftDeep(BuildPrimaryDeltaExpr(v3, "lineitem"));
  EXPECT_TRUE(IsLeftDeep(delta));
  // Shape of the paper's Q1: Δlineitem join orders (σ dates) join
  // customer, then lo part.
  EXPECT_EQ(delta->ToString(),
            "(((dlineitem join sel[(orders.o_orderdate >= 8917 AND "
            "orders.o_orderdate <= 9130)](orders)) join customer) lojn part)");
}

}  // namespace
}  // namespace ojv
