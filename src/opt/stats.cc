#include "opt/stats.h"

#include <algorithm>
#include <cmath>

namespace ojv {
namespace opt {

namespace {

// Rebuild once deletions exceed this fraction of the rows an entry was
// built from: the insert-only sketches can no longer be trusted.
constexpr double kDeleteStaleFraction = 0.30;
constexpr int64_t kDeleteStaleFloor = 64;

// Finalizes the value hash for sketch insertion. Value::Hash is a good
// per-value hash but KMV needs uniform high bits; a Fibonacci-style
// mix spreads clustered hashes across the full 64-bit range.
uint64_t MixHash(size_t h) {
  uint64_t x = static_cast<uint64_t>(h);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

bool IsNumeric(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kFloat64 ||
         t == ValueType::kDate;
}

// Catalog::GetTable aborts on unknown names; the planner must instead
// degrade to default estimates for tables it cannot see.
const Table* Lookup(const Catalog* catalog, const std::string& name) {
  return catalog->HasTable(name) ? catalog->GetTable(name) : nullptr;
}

}  // namespace

KmvSketch::KmvSketch(int k) : k_(k < 2 ? 2 : k) { mins_.reserve(k_); }

void KmvSketch::Insert(uint64_t hash) {
  auto it = std::lower_bound(mins_.begin(), mins_.end(), hash);
  if (it != mins_.end() && *it == hash) return;
  if (static_cast<int>(mins_.size()) < k_) {
    mins_.insert(it, hash);
    return;
  }
  if (hash >= mins_.back()) return;
  mins_.insert(it, hash);
  mins_.pop_back();
}

double KmvSketch::Estimate() const {
  if (static_cast<int>(mins_.size()) < k_) {
    return static_cast<double>(mins_.size());
  }
  // (k-1) / normalized k-th minimum.
  double rk = (static_cast<double>(mins_.back()) + 1.0) /
              std::pow(2.0, 64);
  if (rk <= 0) return static_cast<double>(k_);
  return static_cast<double>(k_ - 1) / rk;
}

double ColumnStats::DistinctEstimate(int64_t row_count) const {
  double est = distinct.Estimate();
  double cap = static_cast<double>(row_count);
  if (est > cap) est = cap;
  if (est < 1.0) est = 1.0;
  return est;
}

const ColumnStats* TableStats::Column(const std::string& name) const {
  auto it = column_index.find(name);
  if (it == column_index.end()) return nullptr;
  return &columns[static_cast<size_t>(it->second)];
}

double TableStats::DistinctOf(const std::string& name, double fallback) const {
  const ColumnStats* col = Column(name);
  if (col == nullptr || !col->tracked) return fallback;
  return col->DistinctEstimate(row_count);
}

const TableStats* StatsCatalog::Get(const std::string& table) {
  const Table* t = Lookup(catalog_, table);
  if (t == nullptr) return nullptr;
  Entry& entry = entries_[table];
  bool fresh = !entry.stale && entry.expected_version == t->version() &&
               entry.stats.row_count == t->size();
  if (!fresh) Rebuild(table, *t, &entry);
  return &entry.stats;
}

void StatsCatalog::OnInsert(const std::string& table,
                            const std::vector<Row>& rows) {
  const Table* t = Lookup(catalog_, table);
  if (t == nullptr || rows.empty()) return;
  auto it = entries_.find(table);
  if (it == entries_.end()) return;  // never scanned; Get will build fresh
  Entry& entry = it->second;
  if (entry.stale) return;
  if (entry.expected_version == t->version()) return;  // already accounted
  if (entry.expected_version + rows.size() != t->version()) {
    // The table moved in a way we did not observe.
    entry.stale = true;
    return;
  }
  for (const Row& row : rows) AddRow(*t, row, &entry.stats);
  entry.stats.row_count += static_cast<int64_t>(rows.size());
  entry.expected_version = t->version();
}

void StatsCatalog::OnDelete(const std::string& table,
                            const std::vector<Row>& rows) {
  const Table* t = Lookup(catalog_, table);
  if (t == nullptr || rows.empty()) return;
  auto it = entries_.find(table);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  if (entry.stale) return;
  if (entry.expected_version == t->version()) return;  // already accounted
  if (entry.expected_version + rows.size() != t->version()) {
    entry.stale = true;
    return;
  }
  entry.stats.row_count -= static_cast<int64_t>(rows.size());
  if (entry.stats.row_count < 0) entry.stats.row_count = 0;
  entry.deleted_since_rebuild += static_cast<int64_t>(rows.size());
  entry.expected_version = t->version();
  int64_t limit = static_cast<int64_t>(
      kDeleteStaleFraction * static_cast<double>(entry.rows_at_rebuild));
  if (limit < kDeleteStaleFloor) limit = kDeleteStaleFloor;
  if (entry.deleted_since_rebuild > limit) entry.stale = true;
}

void StatsCatalog::OnUpdate(const std::string& table,
                            const std::vector<Row>& old_rows,
                            const std::vector<Row>& new_rows) {
  const Table* t = Lookup(catalog_, table);
  if (t == nullptr || (old_rows.empty() && new_rows.empty())) return;
  auto it = entries_.find(table);
  if (it == entries_.end()) return;
  Entry& entry = it->second;
  if (entry.stale) return;
  if (entry.expected_version == t->version()) return;  // already accounted
  if (entry.expected_version + old_rows.size() + new_rows.size() !=
      t->version()) {
    entry.stale = true;
    return;
  }
  for (const Row& row : new_rows) AddRow(*t, row, &entry.stats);
  entry.stats.row_count += static_cast<int64_t>(new_rows.size()) -
                           static_cast<int64_t>(old_rows.size());
  if (entry.stats.row_count < 0) entry.stats.row_count = 0;
  entry.deleted_since_rebuild += static_cast<int64_t>(old_rows.size());
  entry.expected_version = t->version();
  int64_t limit = static_cast<int64_t>(
      kDeleteStaleFraction * static_cast<double>(entry.rows_at_rebuild));
  if (limit < kDeleteStaleFloor) limit = kDeleteStaleFloor;
  if (entry.deleted_since_rebuild > limit) entry.stale = true;
}

void StatsCatalog::RestrictColumns(const std::string& table,
                                   const std::vector<std::string>& columns) {
  std::unordered_set<std::string>& set = interest_[table];
  size_t before = set.size();
  for (const std::string& column : columns) set.insert(column);
  // Widening the set after a build must re-sketch the new columns.
  if (set.size() != before) Invalidate(table);
}

void StatsCatalog::Invalidate(const std::string& table) {
  auto it = entries_.find(table);
  if (it != entries_.end()) it->second.stale = true;
}

void StatsCatalog::InvalidateAll() {
  for (auto& [name, entry] : entries_) entry.stale = true;
}

bool StatsCatalog::IsFresh(const std::string& table) const {
  auto it = entries_.find(table);
  if (it == entries_.end()) return false;
  const Table* t = Lookup(catalog_, table);
  if (t == nullptr) return false;
  return !it->second.stale && it->second.expected_version == t->version();
}

void StatsCatalog::Rebuild(const std::string& name, const Table& table,
                           Entry* entry) {
  TableStats stats;
  stats.columns.assign(static_cast<size_t>(table.schema().num_columns()),
                       ColumnStats());
  for (int i = 0; i < table.schema().num_columns(); ++i) {
    stats.column_index[table.schema().column(i).name] = i;
  }
  auto interest = interest_.find(name);
  if (interest != interest_.end()) {
    for (int i = 0; i < table.schema().num_columns(); ++i) {
      stats.columns[static_cast<size_t>(i)].tracked =
          interest->second.count(table.schema().column(i).name) > 0;
    }
  }
  table.ForEach([&](const Row& row) { AddRow(table, row, &stats); });
  stats.row_count = table.size();
  entry->stats = std::move(stats);
  entry->expected_version = table.version();
  entry->rows_at_rebuild = table.size();
  entry->deleted_since_rebuild = 0;
  entry->stale = false;
  ++rebuild_count_;
}

void StatsCatalog::AddRow(const Table& table, const Row& row,
                          TableStats* stats) {
  for (size_t i = 0; i < stats->columns.size() && i < row.size(); ++i) {
    ColumnStats& col = stats->columns[i];
    if (!col.tracked) continue;
    const Value& v = row[i];
    if (v.is_null()) {
      ++col.null_count;
      continue;
    }
    col.distinct.Insert(MixHash(v.Hash()));
    if (IsNumeric(table.schema().column(static_cast<int>(i)).type) &&
        !v.is_string()) {
      double d = v.AsDouble();
      if (!col.has_range) {
        col.min = col.max = d;
        col.has_range = true;
      } else {
        if (d < col.min) col.min = d;
        if (d > col.max) col.max = d;
      }
    }
  }
}

}  // namespace opt
}  // namespace ojv
