// Property test for shared multi-view maintenance: a randomized catalog
// of ~50 overlapping SPOJ and aggregate views over a C/O/L schema is
// maintained twice — once under MultiviewMode::kShared, once under
// kIndependent — against identical random statement streams with
// deferred refresh policies. After every synchronization point the two
// databases' view contents must be identical, and spot-checked views
// must equal a from-scratch recompute. Mid-stream single-view refreshes
// under temporarily-independent mode force group members onto diverging
// high-water marks, exercising the cohort-split replay path.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/recompute.h"
#include "common/rng.h"
#include "ivm/database.h"
#include "obs/metrics.h"

namespace ojv {
namespace {

using deferred::RefreshPolicy;

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

void CreateColSchema(Catalog* catalog) {
  catalog->CreateTable(
      "C",
      Schema({ColumnDef{"c_id", ValueType::kInt64, false},
              ColumnDef{"c_a", ValueType::kInt64, true}}),
      {"c_id"});
  catalog->CreateTable(
      "O",
      Schema({ColumnDef{"o_id", ValueType::kInt64, false},
              ColumnDef{"o_c", ValueType::kInt64, true},
              ColumnDef{"o_a", ValueType::kInt64, true}}),
      {"o_id"});
  catalog->CreateTable(
      "L",
      Schema({ColumnDef{"l_id", ValueType::kInt64, false},
              ColumnDef{"l_o", ValueType::kInt64, true},
              ColumnDef{"l_q", ValueType::kInt64, true}}),
      {"l_id"});
}

// A random view drawn from a deliberately small shape space, so a
// 50-view catalog contains many views sharing delta-plan prefixes (the
// interesting regime) alongside singletons.
struct RandomView {
  std::string name;
  bool aggregate = false;
  RelExprPtr tree;
  std::vector<ColumnRef> cols;
};

JoinKind RandomJoinKind(Rng* rng) {
  switch (rng->Uniform(0, 2)) {
    case 0:
      return JoinKind::kInner;
    case 1:
      return JoinKind::kLeftOuter;
    default:
      return JoinKind::kFullOuter;
  }
}

RandomView MakeRandomView(Rng* rng, int index) {
  RandomView out;
  out.name = "v" + std::to_string(index);

  const int shape = static_cast<int>(rng->Uniform(0, 3));
  RelExprPtr tree;
  std::vector<ColumnRef> cols = {{"C", "c_id"}, {"C", "c_a"}};
  if (shape == 0 || shape == 1) {
    // C x O, optionally pre-filtered on O and optionally extended to L.
    RelExprPtr right = RelExpr::Scan("O");
    if (rng->Chance(0.5)) {
      right = RelExpr::Select(
          right, ScalarExpr::Compare(
                     CompareOp::kGe, ScalarExpr::Column("O", "o_a"),
                     ScalarExpr::Literal(Value::Int64(rng->Uniform(0, 2)))));
    }
    tree = RelExpr::Join(RandomJoinKind(rng), RelExpr::Scan("C"),
                         std::move(right), Eq("C", "c_id", "O", "o_c"));
    cols.push_back({"O", "o_id"});
    cols.push_back({"O", "o_a"});
    if (shape == 1) {
      tree = RelExpr::Join(rng->Chance(0.5) ? JoinKind::kLeftOuter
                                            : JoinKind::kInner,
                           std::move(tree), RelExpr::Scan("L"),
                           Eq("O", "o_id", "L", "l_o"));
      cols.push_back({"L", "l_id"});
      cols.push_back({"L", "l_q"});
    }
  } else {
    // C x L on the small-domain attribute pair.
    tree = RelExpr::Join(RandomJoinKind(rng), RelExpr::Scan("C"),
                         RelExpr::Scan("L"), Eq("C", "c_a", "L", "l_q"));
    cols.push_back({"L", "l_id"});
    cols.push_back({"L", "l_o"});
  }
  out.aggregate = rng->Chance(0.15);
  out.tree = std::move(tree);
  out.cols = std::move(cols);
  return out;
}

std::vector<Row> SortedRows(Relation rel) {
  std::vector<Row> rows = std::move(*rel.mutable_rows());
  SortRows(&rows);
  return rows;
}

class MultiviewPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MultiviewPropertyTest, SharedEqualsIndependentOnRandomCatalog) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  Database shared;
  Database independent;
  CreateColSchema(shared.catalog());
  CreateColSchema(independent.catalog());
  shared.SetMultiviewMode(MultiviewMode::kShared);

  constexpr int kNumViews = 50;
  std::vector<RandomView> views;
  for (int i = 0; i < kNumViews; ++i) {
    views.push_back(MakeRandomView(&rng, i));
  }
  for (const RandomView& v : views) {
    for (Database* db : {&shared, &independent}) {
      ViewDef def(v.name, v.tree, v.cols, *db->catalog());
      if (v.aggregate) {
        db->CreateAggregateView(
            std::move(def), {{"C", "c_a"}},
            {AggregateSpec{AggregateSpec::Kind::kCountStar, {}, "cnt"}});
      } else {
        db->CreateMaterializedView(std::move(def));
      }
      db->SetRefreshPolicy(v.name, RefreshPolicy::kOnDemand);
    }
  }
  // Sanity: the shape space is small enough that groups actually form.
  ASSERT_FALSE(shared.ViewGroups().empty()) << "seed " << seed;

  int64_t next_c = 1;
  int64_t next_o = 1;
  int64_t next_l = 1;
  auto apply_both = [&](const std::string& table, std::vector<Row> rows,
                        bool insert) {
    for (Database* db : {&shared, &independent}) {
      if (insert) {
        db->Insert(table, rows);
      } else {
        db->Delete(table, rows);
      }
    }
  };
  auto random_statement = [&] {
    switch (rng.Uniform(0, 6)) {
      case 0:
        apply_both("C",
                   {{Value::Int64(next_c++), Value::Int64(rng.Uniform(0, 3))}},
                   true);
        break;
      case 1:
        apply_both("O",
                   {{Value::Int64(next_o++),
                     Value::Int64(1 + rng.Uniform(0, std::max<int64_t>(
                                                         1, next_c - 1))),
                     Value::Int64(rng.Uniform(0, 3))}},
                   true);
        break;
      case 2:
        apply_both("L",
                   {{Value::Int64(next_l++),
                     Value::Int64(1 + rng.Uniform(0, std::max<int64_t>(
                                                         1, next_o - 1))),
                     Value::Int64(rng.Uniform(0, 3))}},
                   true);
        break;
      case 3:
        if (next_c > 1) {
          apply_both("C", {{Value::Int64(1 + rng.Uniform(0, next_c - 1))}},
                     false);
        }
        break;
      case 4:
        if (next_o > 1) {
          apply_both("O", {{Value::Int64(1 + rng.Uniform(0, next_o - 1))}},
                     false);
        }
        break;
      default:
        if (next_l > 1) {
          apply_both("L", {{Value::Int64(1 + rng.Uniform(0, next_l - 1))}},
                     false);
        }
        break;
    }
  };

  auto expect_views_match = [&](const char* when) {
    for (const RandomView& v : views) {
      if (v.aggregate) {
        AggViewMaintainer* s = shared.GetAggregateView(v.name);
        AggViewMaintainer* i = independent.GetAggregateView(v.name);
        ASSERT_EQ(SortedRows(s->AsRelation()), SortedRows(i->AsRelation()))
            << when << " aggregate " << v.name << " seed " << seed;
      } else {
        ViewMaintainer* s = shared.GetView(v.name);
        ViewMaintainer* i = independent.GetView(v.name);
        ASSERT_EQ(SortedRows(s->view().AsRelation()),
                  SortedRows(i->view().AsRelation()))
            << when << " view " << v.name << " seed " << seed;
      }
    }
    // Spot-check a handful against a from-scratch recompute (recomputing
    // all 50 every round would dominate the test's runtime).
    for (int k = 0; k < 5; ++k) {
      const RandomView& v =
          views[static_cast<size_t>(rng.Uniform(0, kNumViews - 1))];
      std::string diff;
      if (v.aggregate) {
        ASSERT_TRUE(shared.GetAggregateView(v.name)->MatchesRecompute(1e-9,
                                                                      &diff))
            << when << " " << v.name << " seed " << seed << ": " << diff;
      } else {
        ViewMaintainer* s = shared.GetView(v.name);
        ASSERT_TRUE(ViewMatchesRecompute(*shared.catalog(), s->view_def(),
                                         s->view(), &diff))
            << when << " " << v.name << " seed " << seed << ": " << diff;
      }
    }
  };

  for (int round = 0; round < 6; ++round) {
    const int statements = 4 + static_cast<int>(rng.Uniform(0, 5));
    for (int i = 0; i < statements; ++i) random_statement();

    if (rng.Chance(0.4)) {
      // Knock one random view off its group's shared high-water mark:
      // refresh it alone (independent mode applies per-refresh), so the
      // next group refresh must split into cohorts and still converge.
      const RandomView& v =
          views[static_cast<size_t>(rng.Uniform(0, kNumViews - 1))];
      shared.SetMultiviewMode(MultiviewMode::kIndependent);
      shared.Refresh(v.name);
      shared.SetMultiviewMode(MultiviewMode::kShared);
      independent.Refresh(v.name);
    }
    if (rng.Chance(0.4)) {
      // Group-draining refresh of a random member in shared mode.
      const RandomView& v =
          views[static_cast<size_t>(rng.Uniform(0, kNumViews - 1))];
      shared.Refresh(v.name);
    }
    if (rng.Chance(0.5)) {
      shared.RefreshAll();
      independent.RefreshAll();
      expect_views_match("after round sync");
    }
  }
  shared.RefreshAll();
  independent.RefreshAll();
  expect_views_match("final");
}

INSTANTIATE_TEST_SUITE_P(RandomCatalogs, MultiviewPropertyTest,
                         ::testing::Range<uint64_t>(4201, 4204));

}  // namespace
}  // namespace ojv
