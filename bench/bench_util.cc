#include "bench_util.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/obs_config.h"

// Build identity for the JSON header: a Debug, sanitized, or
// tracing-enabled binary does not produce numbers comparable to a plain
// Release build, so every report says which one it was.
#ifndef OJV_BUILD_TYPE
#define OJV_BUILD_TYPE "unknown"
#endif
#ifndef OJV_SANITIZE_MODE
#define OJV_SANITIZE_MODE "none"
#endif

namespace ojv {
namespace bench {

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--sf=", 5) == 0) {
      options.scale_factor = std::atof(arg + 5);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--batches=", 10) == 0) {
      options.batches.clear();
      const char* p = arg + 10;
      while (*p != '\0') {
        options.batches.push_back(std::atoll(p));
        const char* comma = std::strchr(p, ',');
        if (comma == nullptr) break;
        p = comma + 1;
      }
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      options.threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      options.json_path = arg + 7;
    } else if (std::strcmp(arg, "--json") == 0 && i + 1 < argc) {
      options.json_path = argv[++i];
    } else if (std::strncmp(arg, "--metrics-port=", 15) == 0) {
      options.metrics_port = std::atoi(arg + 15);
    }
  }
  if (!options.ParallelValid()) {
    std::fprintf(
        stderr,
        "\n"
        "*** WARNING ***********************************************\n"
        "*** --threads=%d exceeds this host's %u hardware threads.\n"
        "*** The parallel columns below measure OVERSUBSCRIPTION,\n"
        "*** not speedup; any JSON output is stamped\n"
        "*** \"parallel_valid\": false.\n"
        "***********************************************************\n\n",
        options.threads, std::thread::hardware_concurrency());
  }
  return options;
}

bool BenchOptions::ParallelValid() const {
  return threads <= static_cast<int>(std::thread::hardware_concurrency());
}

TpchInstance::TpchInstance(const BenchOptions& options) {
  tpch::CreateSchema(&catalog);
  tpch::DbgenOptions dbgen_options;
  dbgen_options.scale_factor = options.scale_factor;
  dbgen_options.seed = options.seed;
  dbgen = std::make_unique<tpch::Dbgen>(dbgen_options);
  dbgen->Populate(&catalog);
  refresh = std::make_unique<tpch::RefreshStream>(&catalog, dbgen.get(),
                                                  options.seed + 1);
}

double TimeMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns) {
  std::printf("\n== %s ==\n", title.c_str());
  for (const std::string& c : columns) {
    std::printf("%16s", c.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns.size(); ++i) {
    std::printf("%16s", "---------------");
  }
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& c : cells) {
    std::printf("%16s", c.c_str());
  }
  std::printf("\n");
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f ms", ms);
  return buf;
}

std::string FormatCount(int64_t n) { return std::to_string(n); }

JsonReport::JsonReport(std::string benchmark, const BenchOptions& options)
    : benchmark_(std::move(benchmark)), options_(options) {}

void JsonReport::BeginRow() { rows_.emplace_back(); }

void JsonReport::Num(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  std::string& row = rows_.back();
  if (!row.empty()) row += ", ";
  row += "\"" + key + "\": " + buf;
}

void JsonReport::Count(const std::string& key, int64_t value) {
  std::string& row = rows_.back();
  if (!row.empty()) row += ", ";
  row += "\"" + key + "\": " + std::to_string(value);
}

void JsonReport::Str(const std::string& key, const std::string& value) {
  std::string& row = rows_.back();
  if (!row.empty()) row += ", ";
  row += "\"" + key + "\": \"" + value + "\"";
}

void JsonReport::Obj(const std::string& key, const std::string& raw_json) {
  std::string& row = rows_.back();
  if (!row.empty()) row += ", ";
  row += "\"" + key + "\": " + raw_json;
}

bool JsonReport::Write() const {
  if (options_.json_path.empty()) return false;
  std::FILE* f = std::fopen(options_.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", options_.json_path.c_str());
    std::abort();
  }
  std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n", benchmark_.c_str());
  std::fprintf(f, "  \"scale_factor\": %.6g,\n", options_.scale_factor);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(options_.seed));
  std::fprintf(f, "  \"threads\": %d,\n", options_.threads);
  std::fprintf(f, "  \"host_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"build_type\": \"%s\",\n", OJV_BUILD_TYPE);
  std::fprintf(f, "  \"sanitize\": \"%s\",\n", OJV_SANITIZE_MODE);
  std::fprintf(f, "  \"obs_enabled\": %s,\n",
               obs::kEnabled ? "true" : "false");
  std::fprintf(f, "  \"parallel_valid\": %s,\n",
               options_.ParallelValid() ? "true" : "false");
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < rows_.size(); ++i) {
    std::fprintf(f, "    {%s}%s\n", rows_[i].c_str(),
                 i + 1 < rows_.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", options_.json_path.c_str());
  return true;
}

std::string StagesJson(const MaintenanceStats& stats) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"primary_ms\": %.6g, \"apply_ms\": %.6g, "
                "\"secondary_ms\": %.6g, \"total_ms\": %.6g, "
                "\"primary_rows\": %lld, \"secondary_rows\": %lld, "
                "\"fk_fast_path\": %s}",
                stats.primary_micros / 1000.0, stats.apply_micros / 1000.0,
                stats.secondary_micros / 1000.0, stats.total_micros / 1000.0,
                static_cast<long long>(stats.primary_rows),
                static_cast<long long>(stats.secondary_rows),
                stats.fk_fast_path ? "true" : "false");
  return buf;
}

}  // namespace bench
}  // namespace ojv
