#ifndef OJV_BENCH_BENCH_UTIL_H_
#define OJV_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"

namespace ojv {
namespace bench {

/// Command-line knobs shared by all paper-table benchmarks:
///   --sf=<double>      TPC-H scale factor (default 0.05)
///   --seed=<uint64>    generator seed
///   --batches=a,b,c    insert/delete batch sizes (default 60,600,6000;
///                      pass --batches=60,600,6000,60000 for the full
///                      sweep of the paper — the GK baseline takes
///                      minutes at 60000)
struct BenchOptions {
  double scale_factor = 0.05;
  uint64_t seed = 19940601;
  std::vector<int64_t> batches = {60, 600, 6000};

  static BenchOptions Parse(int argc, char** argv);
};

/// A populated TPC-H database plus its refresh stream.
struct TpchInstance {
  Catalog catalog;
  std::unique_ptr<tpch::Dbgen> dbgen;
  std::unique_ptr<tpch::RefreshStream> refresh;

  explicit TpchInstance(const BenchOptions& options);
};

/// Milliseconds spent in fn.
double TimeMs(const std::function<void()>& fn);

/// Fixed-width table printing helpers.
void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);
std::string FormatMs(double ms);
std::string FormatCount(int64_t n);

}  // namespace bench
}  // namespace ojv

#endif  // OJV_BENCH_BENCH_UTIL_H_
