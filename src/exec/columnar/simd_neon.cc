// NEON backend (AArch64): 2 int64 lanes. Compares run vectorized;
// hashing and gathers stay on the scalar_ref loops — NEON has no
// indexed gather, and at 2 lanes the emulated 64-bit multiplies of the
// hash mix do not pay for themselves. This TU is only compiled on
// aarch64 (where NEON is architecturally guaranteed), so there is no
// runtime feature check.

#include "exec/columnar/simd_neon.h"

#if defined(OJV_HAVE_NEON)

#include <arm_neon.h>

#include "exec/columnar/simd_common.h"

namespace ojv {
namespace columnar {
namespace simd {
namespace neon {

namespace {

template <CompareOp op>
inline uint64x2_t CmpLanes(int64x2_t a, int64x2_t b) {
  switch (op) {
    case CompareOp::kEq:
      return vceqq_s64(a, b);
    case CompareOp::kNe:
      return veorq_u64(vceqq_s64(a, b), vdupq_n_u64(~0ULL));
    case CompareOp::kGt:
      return vcgtq_s64(a, b);
    case CompareOp::kLe:
      return veorq_u64(vcgtq_s64(a, b), vdupq_n_u64(~0ULL));
    case CompareOp::kLt:
      return vcltq_s64(a, b);
    case CompareOp::kGe:
      return veorq_u64(vcltq_s64(a, b), vdupq_n_u64(~0ULL));
  }
  return vdupq_n_u64(0);
}

template <CompareOp op>
void CmpI64LitImpl(const int64_t* vals, int64_t n, int64_t literal,
                   uint8_t* out) {
  const int64x2_t lit = vdupq_n_s64(literal);
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t m = CmpLanes<op>(vld1q_s64(vals + i), lit);
    out[i] = static_cast<uint8_t>(vgetq_lane_u64(m, 0) & 1);
    out[i + 1] = static_cast<uint8_t>(vgetq_lane_u64(m, 1) & 1);
  }
  for (; i < n; ++i) {
    out[i] = scalar_ref::CmpI64<op>(vals[i], literal) ? 1 : 0;
  }
}

template <CompareOp op>
void CmpI64ColsImpl(const int64_t* a, const int64_t* b, int64_t n,
                    uint8_t* out) {
  int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t m = CmpLanes<op>(vld1q_s64(a + i), vld1q_s64(b + i));
    out[i] = static_cast<uint8_t>(vgetq_lane_u64(m, 0) & 1);
    out[i + 1] = static_cast<uint8_t>(vgetq_lane_u64(m, 1) & 1);
  }
  for (; i < n; ++i) {
    out[i] = scalar_ref::CmpI64<op>(a[i], b[i]) ? 1 : 0;
  }
}

}  // namespace

void CmpI64Lit(const int64_t* vals, int64_t n, CompareOp op, int64_t literal,
               uint8_t* out) {
  switch (op) {
    case CompareOp::kEq:
      return CmpI64LitImpl<CompareOp::kEq>(vals, n, literal, out);
    case CompareOp::kNe:
      return CmpI64LitImpl<CompareOp::kNe>(vals, n, literal, out);
    case CompareOp::kLt:
      return CmpI64LitImpl<CompareOp::kLt>(vals, n, literal, out);
    case CompareOp::kLe:
      return CmpI64LitImpl<CompareOp::kLe>(vals, n, literal, out);
    case CompareOp::kGt:
      return CmpI64LitImpl<CompareOp::kGt>(vals, n, literal, out);
    case CompareOp::kGe:
      return CmpI64LitImpl<CompareOp::kGe>(vals, n, literal, out);
  }
}

void CmpI64Cols(const int64_t* a, const int64_t* b, int64_t n, CompareOp op,
                uint8_t* out) {
  switch (op) {
    case CompareOp::kEq:
      return CmpI64ColsImpl<CompareOp::kEq>(a, b, n, out);
    case CompareOp::kNe:
      return CmpI64ColsImpl<CompareOp::kNe>(a, b, n, out);
    case CompareOp::kLt:
      return CmpI64ColsImpl<CompareOp::kLt>(a, b, n, out);
    case CompareOp::kLe:
      return CmpI64ColsImpl<CompareOp::kLe>(a, b, n, out);
    case CompareOp::kGt:
      return CmpI64ColsImpl<CompareOp::kGt>(a, b, n, out);
    case CompareOp::kGe:
      return CmpI64ColsImpl<CompareOp::kGe>(a, b, n, out);
  }
}

void CmpF64Lit(const double* vals, int64_t n, CompareOp op, double literal,
               uint8_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = scalar_ref::CmpF64Dyn(vals[i], literal, op) ? 1 : 0;
  }
}

void HashI64(const int64_t* vals, int64_t n, uint64_t* out) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = scalar_ref::Mix64(static_cast<uint64_t>(vals[i]));
  }
}

void HashCombineI64(const int64_t* vals, int64_t n, uint64_t* inout) {
  for (int64_t i = 0; i < n; ++i) {
    inout[i] = scalar_ref::CombineHash(
        inout[i], scalar_ref::Mix64(static_cast<uint64_t>(vals[i])));
  }
}

void GatherI64(const int64_t* src, const int32_t* idx, int64_t n,
               int64_t* dst) {
  for (int64_t i = 0; i < n; ++i) dst[i] = src[idx[i]];
}

void GatherF64(const double* src, const int32_t* idx, int64_t n, double* dst) {
  for (int64_t i = 0; i < n; ++i) dst[i] = src[idx[i]];
}

}  // namespace neon
}  // namespace simd
}  // namespace columnar
}  // namespace ojv

#endif  // OJV_HAVE_NEON
