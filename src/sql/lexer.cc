#include "sql/lexer.h"

#include <cctype>
#include <set>

namespace ojv {
namespace sql {
namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string>* keywords = new std::set<std::string>{
      "CREATE", "VIEW",  "AS",    "SELECT", "FROM",  "WHERE", "JOIN",
      "INNER",  "LEFT",  "RIGHT", "FULL",   "OUTER", "ON",    "AND",
      "BETWEEN", "DATE", "GROUP", "BY",     "COUNT", "SUM",   "AVG",
      "MIN",    "MAX",
      "IS",     "NOT",   "NULL",  "OR"};
  return *keywords;
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(c));
  return s;
}

}  // namespace

bool IsKeyword(const std::string& upper) {
  return Keywords().count(upper) > 0;
}

bool Lex(const std::string& sql, std::vector<Token>* tokens,
         std::string* error) {
  tokens->clear();
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      std::string word = sql.substr(start, i - start);
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        token.kind = TokenKind::kKeyword;
        token.text = upper;
      } else {
        token.kind = TokenKind::kIdentifier;
        token.text = word;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool seen_dot = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       (sql[i] == '.' && !seen_dot))) {
        if (sql[i] == '.') seen_dot = true;
        ++i;
      }
      token.kind = TokenKind::kNumber;
      token.text = sql.substr(start, i - start);
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // '' escape
            value.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        if (error != nullptr) {
          *error = "unterminated string literal at position " +
                   std::to_string(token.position);
        }
        return false;
      }
      token.kind = TokenKind::kString;
      token.text = std::move(value);
    } else {
      token.kind = TokenKind::kSymbol;
      // Two-character operators first.
      if (i + 1 < n) {
        std::string two = sql.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          token.text = two == "!=" ? "<>" : two;
          i += 2;
          tokens->push_back(std::move(token));
          continue;
        }
      }
      switch (c) {
        case '(':
        case ')':
        case ',':
        case '.':
        case '*':
        case '=':
        case '<':
        case '>':
          token.text = std::string(1, c);
          ++i;
          break;
        default:
          if (error != nullptr) {
            *error = std::string("unexpected character '") + c +
                     "' at position " + std::to_string(token.position);
          }
          return false;
      }
    }
    tokens->push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = static_cast<int>(n);
  tokens->push_back(std::move(end));
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace sql
}  // namespace ojv
