# Empty dependencies file for aggregate_view_test.
# This may be replaced when dependencies are built.
