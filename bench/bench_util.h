#ifndef OJV_BENCH_BENCH_UTIL_H_
#define OJV_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"

namespace ojv {
namespace bench {

/// Command-line knobs shared by all paper-table benchmarks:
///   --sf=<double>      TPC-H scale factor (default 0.05)
///   --seed=<uint64>    generator seed
///   --batches=a,b,c    insert/delete batch sizes (default 60,600,6000;
///                      pass --batches=60,600,6000,60000 for the full
///                      sweep of the paper — the GK baseline takes
///                      minutes at 60000)
///   --threads=<int>    executor threads for the parallel maintainer
///                      columns (default 1 = serial)
///   --json <path>      also write results as JSON to <path>
///                      (--json=<path> works too); the file carries the
///                      benchmark name, options, host core count, and
///                      one object per printed row
struct BenchOptions {
  double scale_factor = 0.05;
  uint64_t seed = 19940601;
  std::vector<int64_t> batches = {60, 600, 6000};
  int threads = 1;
  std::string json_path;

  static BenchOptions Parse(int argc, char** argv);
};

/// A populated TPC-H database plus its refresh stream.
struct TpchInstance {
  Catalog catalog;
  std::unique_ptr<tpch::Dbgen> dbgen;
  std::unique_ptr<tpch::RefreshStream> refresh;

  explicit TpchInstance(const BenchOptions& options);
};

/// Milliseconds spent in fn.
double TimeMs(const std::function<void()>& fn);

/// Fixed-width table printing helpers.
void PrintHeader(const std::string& title,
                 const std::vector<std::string>& columns);
void PrintRow(const std::vector<std::string>& cells);
std::string FormatMs(double ms);
std::string FormatCount(int64_t n);

/// Machine-readable benchmark results. Each benchmark builds one report
/// (mirroring its printed rows field by field) and calls Write() at the
/// end; Write is a no-op unless --json was given, so the human-readable
/// table stays the default output. The emitted document is
///
///   { "benchmark": ..., "scale_factor": ..., "seed": ..., "threads": ...,
///     "host_cores": ..., "results": [ {row fields...}, ... ] }
///
/// which the trajectory file BENCH_pipeline.json aggregates across runs.
class JsonReport {
 public:
  JsonReport(std::string benchmark, const BenchOptions& options);

  /// Starts a new result object; Num/Count/Str attach fields to it.
  void BeginRow();
  void Num(const std::string& key, double value);
  void Count(const std::string& key, int64_t value);
  void Str(const std::string& key, const std::string& value);

  /// Writes the report to the --json path. Returns false (and writes
  /// nothing) when no path was given; aborts if the path is unwritable.
  bool Write() const;

 private:
  std::string benchmark_;
  const BenchOptions options_;
  std::vector<std::string> rows_;  // accumulated "k": v fragments per row
};

}  // namespace bench
}  // namespace ojv

#endif  // OJV_BENCH_BENCH_UTIL_H_
