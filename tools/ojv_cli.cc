// ojv_cli — script-driven command-line front end for the library.
//
// Usage:
//   ojv_cli gen --sf=0.01 --out=DIR        generate TPC-H .tbl files
//   ojv_cli run SCRIPT [--sf=0.01]         execute a script
//
// Script statements (terminated by ';', '--' starts a comment):
//   GENERATE TPCH;                         create + populate TPC-H tables
//   LOAD TPCH FROM 'dir';                  create tables, load .tbl files
//   CREATE VIEW name AS SELECT ...;        register a maintained view
//   INSERT INTO table FROM 'file.tbl';     FK-checked insert + maintenance
//   DELETE FROM table KEYS 'file.tbl';     delete by keys + maintenance
//   EXPLAIN name;                          print the maintenance report
//   SHOW name;                             view/table row counts
//   DUMP VIEW name TO 'file';              write the view contents
//   CHECK name;                            view == recompute (exit 1 if not)
//   STATS;                                 cumulative maintenance counters
//   BEGIN; / COMMIT; / ROLLBACK;           deferred-FK transactions
//   QUERY SELECT ...;                      run a query; answered from a
//                                          matching view when possible
//
// See tools/demo.ojv for a complete example.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "baseline/recompute.h"
#include "io/csv.h"
#include "io/statement_log.h"
#include "ivm/database.h"
#include "ivm/explain.h"
#include "matching/view_matching.h"
#include "sql/parser.h"
#include "tpch/dbgen.h"
#include "tpch/tpch_schema.h"

namespace ojv {
namespace cli {
namespace {

struct Options {
  double scale_factor = 0.01;
  std::string out_dir = "tpch_data";
  std::string script;
};

// Splits a script into ';'-terminated statements, stripping '--'
// comments.
std::vector<std::string> SplitStatements(const std::string& text) {
  std::vector<std::string> statements;
  std::string current;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    size_t comment = line.find("--");
    if (comment != std::string::npos) line = line.substr(0, comment);
    for (char c : line) {
      if (c == ';') {
        // Trim whitespace.
        size_t begin = current.find_first_not_of(" \t\r\n");
        if (begin != std::string::npos) {
          size_t end = current.find_last_not_of(" \t\r\n");
          statements.push_back(current.substr(begin, end - begin + 1));
        }
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    current.push_back('\n');
  }
  return statements;
}

// Case-insensitive prefix match; advances *rest past the prefix.
bool ConsumeWord(const std::string& statement, const char* word,
                 std::string* rest) {
  size_t n = std::strlen(word);
  if (statement.size() < n) return false;
  for (size_t i = 0; i < n; ++i) {
    if (std::toupper(statement[i]) != word[i]) return false;
  }
  size_t after = statement.find_first_not_of(" \t\r\n", n);
  *rest = after == std::string::npos ? "" : statement.substr(after);
  return true;
}

// Extracts a 'quoted' or bare token from the front of *text.
std::string TakeToken(std::string* text) {
  if (text->empty()) return "";
  std::string token;
  size_t end;
  if ((*text)[0] == '\'') {
    end = text->find('\'', 1);
    if (end == std::string::npos) return "";
    token = text->substr(1, end - 1);
    ++end;
  } else {
    end = text->find_first_of(" \t\r\n");
    token = text->substr(0, end);
  }
  size_t after = text->find_first_not_of(" \t\r\n", end);
  *text = after == std::string::npos ? "" : text->substr(after);
  return token;
}

class Interpreter {
 public:
  explicit Interpreter(const Options& options) : options_(options) {}

  int RunScript(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open script %s\n", path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    for (const std::string& statement : SplitStatements(buffer.str())) {
      if (!Execute(statement)) {
        std::fprintf(stderr, "error in statement: %.60s...\n  %s\n",
                     statement.c_str(), error_.c_str());
        return 1;
      }
    }
    return 0;
  }

 private:
  bool Fail(const std::string& message) {
    error_ = message;
    return false;
  }

  bool Execute(const std::string& statement) {
    std::string rest;
    if (ConsumeWord(statement, "GENERATE TPCH", &rest)) {
      tpch::CreateSchema(db_.catalog());
      tpch::DbgenOptions dbgen_options;
      dbgen_options.scale_factor = options_.scale_factor;
      tpch::Dbgen dbgen(dbgen_options);
      dbgen.Populate(db_.catalog());
      std::printf("generated TPC-H SF=%.3f (%lld lineitems)\n",
                  options_.scale_factor,
                  static_cast<long long>(
                      db_.catalog()->GetTable("lineitem")->size()));
      return true;
    }
    if (ConsumeWord(statement, "LOAD TPCH FROM", &rest)) {
      std::string dir = TakeToken(&rest);
      tpch::CreateSchema(db_.catalog());
      std::string error;
      if (!io::LoadCatalog(db_.catalog(), dir, io::TextFormat(), &error)) {
        return Fail(error);
      }
      std::printf("loaded TPC-H from %s\n", dir.c_str());
      return true;
    }
    if (ConsumeWord(statement, "CREATE VIEW", &rest)) {
      std::string error;
      if (!sql::ExecuteCreateView(statement, &db_, &error)) {
        return Fail(error);
      }
      std::string name = statement.substr(12);
      name = TakeToken(&name);
      ViewMaintainer* view = db_.GetView(name);
      if (view != nullptr) {
        std::printf("created view %s (%lld rows)\n", name.c_str(),
                    static_cast<long long>(view->view().size()));
      } else {
        AggViewMaintainer* agg = db_.GetAggregateView(name);
        std::printf("created aggregate view %s (%lld groups)\n", name.c_str(),
                    static_cast<long long>(agg->num_groups()));
      }
      return true;
    }
    if (ConsumeWord(statement, "INSERT INTO", &rest)) {
      std::string table = TakeToken(&rest);
      std::string from;
      if (!ConsumeWord(rest, "FROM", &from)) return Fail("expected FROM");
      std::string file = TakeToken(&from);
      if (!db_.catalog()->HasTable(table)) return Fail("unknown table");
      // Stage rows through a scratch table with the same schema.
      Table staging("#staging", db_.catalog()->GetTable(table)->schema(),
                    db_.catalog()->GetTable(table)->key_columns());
      std::string error;
      if (!io::LoadTable(&staging, file, io::TextFormat(), &error)) {
        return Fail(error);
      }
      Database::StatementResult result =
          db_.Insert(table, staging.Snapshot());
      std::printf("insert into %s: %lld applied, %lld rejected "
                  "(maintenance %.2f ms)\n",
                  table.c_str(), static_cast<long long>(result.rows_affected),
                  static_cast<long long>(result.rows_rejected),
                  result.maintenance_micros / 1000.0);
      return result.ok() ? true : Fail(result.error);
    }
    if (ConsumeWord(statement, "DELETE FROM", &rest)) {
      std::string table = TakeToken(&rest);
      std::string keys_clause;
      if (!ConsumeWord(rest, "KEYS", &keys_clause)) {
        return Fail("expected KEYS");
      }
      std::string file = TakeToken(&keys_clause);
      if (!db_.catalog()->HasTable(table)) return Fail("unknown table");
      const Table* base = db_.catalog()->GetTable(table);
      // A scratch table holding just the key columns.
      std::vector<ColumnDef> key_defs;
      for (int pos : base->key_positions()) {
        key_defs.push_back(base->schema().column(pos));
      }
      Table staging("#keys", Schema(key_defs), base->key_columns());
      std::string error;
      if (!io::LoadTable(&staging, file, io::TextFormat(), &error)) {
        return Fail(error);
      }
      Database::StatementResult result = db_.Delete(table, staging.Snapshot());
      std::printf("delete from %s: %lld applied (maintenance %.2f ms)\n",
                  table.c_str(), static_cast<long long>(result.rows_affected),
                  result.maintenance_micros / 1000.0);
      return result.ok() ? true : Fail(result.error);
    }
    if (ConsumeWord(statement, "EXPLAIN", &rest)) {
      std::string name = TakeToken(&rest);
      ViewMaintainer* view = db_.GetView(name);
      if (view == nullptr) return Fail("unknown view " + name);
      std::printf("%s", ExplainMaintenance(*view).c_str());
      return true;
    }
    if (ConsumeWord(statement, "SHOW", &rest)) {
      std::string name = TakeToken(&rest);
      if (ViewMaintainer* view = db_.GetView(name)) {
        std::printf("%s: %lld rows\n", name.c_str(),
                    static_cast<long long>(view->view().size()));
        return true;
      }
      if (AggViewMaintainer* agg = db_.GetAggregateView(name)) {
        std::printf("%s: %lld groups\n", name.c_str(),
                    static_cast<long long>(agg->num_groups()));
        return true;
      }
      if (db_.catalog()->HasTable(name)) {
        std::printf("%s: %lld rows\n", name.c_str(),
                    static_cast<long long>(
                        db_.catalog()->GetTable(name)->size()));
        return true;
      }
      return Fail("unknown object " + name);
    }
    if (ConsumeWord(statement, "DUMP VIEW", &rest)) {
      std::string name = TakeToken(&rest);
      std::string to_clause;
      if (!ConsumeWord(rest, "TO", &to_clause)) return Fail("expected TO");
      std::string file = TakeToken(&to_clause);
      ViewMaintainer* view = db_.GetView(name);
      Relation contents = view != nullptr
                              ? view->view().AsRelation()
                              : Relation();
      if (view == nullptr) {
        AggViewMaintainer* agg = db_.GetAggregateView(name);
        if (agg == nullptr) return Fail("unknown view " + name);
        contents = agg->AsRelation();
      }
      std::string error;
      if (!io::WriteRelation(contents, file, io::TextFormat(), &error)) {
        return Fail(error);
      }
      std::printf("dumped %s (%lld rows) to %s\n", name.c_str(),
                  static_cast<long long>(contents.size()), file.c_str());
      return true;
    }
    if (ConsumeWord(statement, "STATS", &rest)) {
      std::printf("%s", db_.StatsReport().c_str());
      return true;
    }
    if (ConsumeWord(statement, "BEGIN", &rest)) {
      if (!db_.BeginTransaction()) return Fail("transaction already open");
      std::printf("transaction started (FK checks deferred)\n");
      return true;
    }
    if (ConsumeWord(statement, "COMMIT", &rest)) {
      Database::StatementResult result = db_.Commit();
      if (!result.ok()) {
        std::printf("%s (rolled back)\n", result.error.c_str());
        return true;  // a failed commit is a reported outcome, not a bug
      }
      std::printf("committed\n");
      return true;
    }
    if (ConsumeWord(statement, "ROLLBACK", &rest)) {
      if (!db_.in_transaction()) return Fail("no open transaction");
      db_.Rollback();
      std::printf("rolled back\n");
      return true;
    }
    if (ConsumeWord(statement, "QUERY", &rest)) {
      // Parse the SELECT through the view parser (wrapped as a view),
      // then try to answer it from a registered view before falling
      // back to direct evaluation.
      std::string sql = "CREATE VIEW __query AS " + rest;
      std::string error;
      std::optional<sql::ParsedView> parsed =
          sql::ParseCreateView(sql, *db_.catalog(), &error);
      if (!parsed.has_value()) return Fail(error);
      if (parsed->is_aggregate) {
        return Fail("QUERY supports non-aggregate SELECTs");
      }
      std::string which;
      std::optional<Relation> answer =
          AnswerFromDatabase(parsed->view, &db_, &which);
      Relation result = answer.has_value()
                            ? std::move(*answer)
                            : RecomputeView(*db_.catalog(), parsed->view);
      std::printf("query: %lld rows (%s)\n",
                  static_cast<long long>(result.size()),
                  answer.has_value()
                      ? ("answered from view " + which).c_str()
                      : "evaluated from base tables");
      std::vector<Row> rows = result.rows();
      SortRows(&rows);
      int64_t shown = 0;
      for (const Row& row : rows) {
        if (shown++ == 10) {
          std::printf("  ... (%lld more)\n",
                      static_cast<long long>(rows.size()) - 10);
          break;
        }
        std::string line = " ";
        for (const Value& v : row) line += " " + v.ToString();
        std::printf("%s\n", line.c_str());
      }
      return true;
    }
    if (ConsumeWord(statement, "CHECK", &rest)) {
      std::string name = TakeToken(&rest);
      if (ViewMaintainer* view = db_.GetView(name)) {
        std::string diff;
        if (!ViewMatchesRecompute(*db_.catalog(), view->view_def(),
                                  view->view(), &diff)) {
          return Fail("view differs from recompute: " + diff);
        }
        std::printf("check %s: ok\n", name.c_str());
        return true;
      }
      if (AggViewMaintainer* agg = db_.GetAggregateView(name)) {
        std::string diff;
        if (!agg->MatchesRecompute(1e-9, &diff)) {
          return Fail("aggregate differs from recompute: " + diff);
        }
        std::printf("check %s: ok\n", name.c_str());
        return true;
      }
      return Fail("unknown view " + name);
    }
    return Fail("unrecognized statement");
  }

  Options options_;
  Database db_;
  std::string error_;
};

int Main(int argc, char** argv) {
  Options options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--sf=", 5) == 0) {
      options.scale_factor = std::atof(arg + 5);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      options.out_dir = arg + 6;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) {
    std::fprintf(stderr,
                 "usage: ojv_cli gen [--sf=X] [--out=DIR]\n"
                 "       ojv_cli run SCRIPT [--sf=X]\n");
    return 1;
  }
  if (positional[0] == "gen") {
    Catalog catalog;
    tpch::CreateSchema(&catalog);
    tpch::DbgenOptions dbgen_options;
    dbgen_options.scale_factor = options.scale_factor;
    tpch::Dbgen dbgen(dbgen_options);
    dbgen.Populate(&catalog);
    std::string error;
    if (!io::DumpCatalog(catalog, options.out_dir, io::TextFormat(),
                         &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::printf("wrote TPC-H SF=%.3f to %s/\n", options.scale_factor,
                options.out_dir.c_str());
    return 0;
  }
  if (positional[0] == "run" && positional.size() >= 2) {
    Interpreter interpreter(options);
    return interpreter.RunScript(positional[1]);
  }
  std::fprintf(stderr, "unknown command '%s'\n", positional[0].c_str());
  return 1;
}

}  // namespace
}  // namespace cli
}  // namespace ojv

int main(int argc, char** argv) { return ojv::cli::Main(argc, argv); }
