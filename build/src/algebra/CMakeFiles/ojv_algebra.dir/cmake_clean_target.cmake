file(REMOVE_RECURSE
  "libojv_algebra.a"
)
