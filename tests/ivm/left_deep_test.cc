// Unit tests for the left-deep conversion rules (§4.1), including the
// null-if + fix-up rules 1, 4 and 5 and the orientation handling when
// the main predicate references the right join's right side.

#include "ivm/left_deep.h"

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "ivm/maintainer.h"
#include "ivm/primary_delta.h"
#include "test_util.h"

namespace ojv {
namespace {

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

// Three tables A, B, C with small domains for join fan-out.
class LeftDeepFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    tables_ = testing_util::CreateRandomSchema(&catalog_, 3);
    Rng rng(17);
    int64_t key = 1;
    for (const std::string& name : tables_) {
      Table* table = catalog_.GetTable(name);
      for (Row& row : testing_util::RandomRstuRows(name, &rng, 30, 4, &key)) {
        table->Insert(std::move(row));
      }
    }
  }

  // Evaluates `expr` with a fresh delta bound for table A.
  std::pair<Relation, Relation> EvalBoth(const RelExprPtr& bushy,
                                         const RelExprPtr& left_deep) {
    Rng rng(99);
    int64_t key = 1000;
    Relation delta(Evaluator::SchemaFor(*catalog_.GetTable("A")));
    for (Row& row : testing_util::RandomRstuRows("A", &rng, 12, 4, &key)) {
      delta.Add(std::move(row));
    }
    Evaluator evaluator(&catalog_);
    evaluator.BindDelta("A", &delta);
    return {evaluator.EvalToRelation(bushy),
            evaluator.EvalToRelation(left_deep)};
  }

  void CheckRule(const RelExprPtr& bushy) {
    RelExprPtr left_deep = ToLeftDeep(bushy);
    EXPECT_TRUE(IsLeftDeep(left_deep)) << left_deep->ToString();
    auto [b, ld] = EvalBoth(bushy, left_deep);
    std::string diff;
    EXPECT_TRUE(SameBag(b, ld, &diff))
        << bushy->ToString() << " vs " << left_deep->ToString() << ": "
        << diff;
  }

  Catalog catalog_;
  std::vector<std::string> tables_;
};

TEST_F(LeftDeepFixture, Rule1SelectionOverComplexOperand) {
  // dA lo σ(B join C): the selection must be pulled via λ + fix-up.
  RelExprPtr bc = RelExpr::Join(JoinKind::kInner, RelExpr::Scan("B"),
                                RelExpr::Scan("C"), Eq("B", "b_a", "C", "c_a"));
  RelExprPtr selected = RelExpr::Select(
      bc, ScalarExpr::Compare(CompareOp::kLe, ScalarExpr::Column("B", "b_b"),
                              ScalarExpr::Literal(Value::Int64(2))));
  RelExprPtr bushy = RelExpr::Join(JoinKind::kLeftOuter,
                                   RelExpr::DeltaScan("A"), selected,
                                   Eq("A", "a_a", "B", "b_a"));
  CheckRule(bushy);
}

TEST_F(LeftDeepFixture, Rules2And3OuterJoinRightOperands) {
  for (JoinKind inner_kind : {JoinKind::kLeftOuter, JoinKind::kFullOuter}) {
    RelExprPtr bc = RelExpr::Join(inner_kind, RelExpr::Scan("B"),
                                  RelExpr::Scan("C"),
                                  Eq("B", "b_a", "C", "c_a"));
    RelExprPtr bushy = RelExpr::Join(JoinKind::kLeftOuter,
                                     RelExpr::DeltaScan("A"), bc,
                                     Eq("A", "a_a", "B", "b_a"));
    CheckRule(bushy);
  }
}

TEST_F(LeftDeepFixture, Rules4And5InnerAndRightOuterRightOperands) {
  for (JoinKind inner_kind : {JoinKind::kInner, JoinKind::kRightOuter}) {
    RelExprPtr bc = RelExpr::Join(inner_kind, RelExpr::Scan("B"),
                                  RelExpr::Scan("C"),
                                  Eq("B", "b_a", "C", "c_a"));
    RelExprPtr bushy = RelExpr::Join(JoinKind::kLeftOuter,
                                     RelExpr::DeltaScan("A"), bc,
                                     Eq("A", "a_a", "B", "b_a"));
    RelExprPtr left_deep = ToLeftDeep(bushy);
    // These rules introduce λ + δ + ↓ fix-ups.
    EXPECT_NE(left_deep->ToString().find("nullif"), std::string::npos);
    CheckRule(bushy);
  }
}

TEST_F(LeftDeepFixture, InnerMainPathVariants) {
  for (JoinKind inner_kind :
       {JoinKind::kInner, JoinKind::kLeftOuter, JoinKind::kRightOuter,
        JoinKind::kFullOuter}) {
    RelExprPtr bc = RelExpr::Join(inner_kind, RelExpr::Scan("B"),
                                  RelExpr::Scan("C"),
                                  Eq("B", "b_a", "C", "c_a"));
    RelExprPtr bushy =
        RelExpr::Join(JoinKind::kInner, RelExpr::DeltaScan("A"), bc,
                      Eq("A", "a_a", "B", "b_a"));
    CheckRule(bushy);
  }
}

TEST_F(LeftDeepFixture, OrientationWhenPredicateHitsTheFarSide) {
  // The main predicate references C — the *right* child of (B lo C) —
  // so the converter must commute the right join before pulling.
  RelExprPtr bc = RelExpr::Join(JoinKind::kLeftOuter, RelExpr::Scan("B"),
                                RelExpr::Scan("C"), Eq("B", "b_a", "C", "c_a"));
  RelExprPtr bushy = RelExpr::Join(JoinKind::kLeftOuter,
                                   RelExpr::DeltaScan("A"), bc,
                                   Eq("A", "a_a", "C", "c_b"));
  CheckRule(bushy);
}

TEST_F(LeftDeepFixture, FallbackWhenPredicateSpansBothSides) {
  // Main predicate references both B and C: no rule applies; the
  // converter must keep the (correct) bushy join rather than crash.
  RelExprPtr bc = RelExpr::Join(JoinKind::kInner, RelExpr::Scan("B"),
                                RelExpr::Scan("C"), Eq("B", "b_a", "C", "c_a"));
  ScalarExprPtr pred = ScalarExpr::And(
      {Eq("A", "a_a", "B", "b_a"), Eq("A", "a_b", "C", "c_b")});
  RelExprPtr bushy = RelExpr::Join(JoinKind::kLeftOuter,
                                   RelExpr::DeltaScan("A"), bc, pred);
  RelExprPtr converted = ToLeftDeep(bushy);
  EXPECT_FALSE(IsLeftDeep(converted));
  auto [b, ld] = EvalBoth(bushy, converted);
  std::string diff;
  EXPECT_TRUE(SameBag(b, ld, &diff)) << diff;
}

TEST_F(LeftDeepFixture, SimpleRightOperandsAreUntouched) {
  RelExprPtr bushy = RelExpr::Join(
      JoinKind::kLeftOuter, RelExpr::DeltaScan("A"),
      RelExpr::Select(RelExpr::Scan("B"),
                      ScalarExpr::Compare(CompareOp::kLe,
                                          ScalarExpr::Column("B", "b_b"),
                                          ScalarExpr::Literal(Value::Int64(2)))),
      Eq("A", "a_a", "B", "b_a"));
  EXPECT_EQ(ToLeftDeep(bushy)->ToString(), bushy->ToString());
  EXPECT_TRUE(IsLeftDeep(bushy));
}

}  // namespace
}  // namespace ojv
