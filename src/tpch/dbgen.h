#ifndef OJV_TPCH_DBGEN_H_
#define OJV_TPCH_DBGEN_H_

#include <cstdint>

#include "catalog/catalog.h"
#include "common/rng.h"

namespace ojv {
namespace tpch {

/// Generator parameters. Cardinalities follow the TPC-H specification
/// scaled by `scale_factor`:
///   supplier 10k·SF, part 200k·SF, customer 150k·SF, orders 1.5M·SF,
///   lineitem 1..7 lines per order (avg ≈ 4), partsupp 4 per part.
struct DbgenOptions {
  double scale_factor = 0.01;
  uint64_t seed = 19940601;
};

/// Deterministic in-memory dbgen. Reproduces the structural properties
/// the paper's experiments depend on:
///  - sparse o_orderkey values (every 4th key used) so refresh streams
///    can insert new orders;
///  - one third of customers place no orders (c_custkey % 3 == 0), which
///    populates the view's {customer} orphan term;
///  - p_retailprice follows the spec formula (≈ 900..2098), so the
///    "p_retailprice < 2000" filter of view V3 selects a real subset;
///  - o_orderdate uniform over 1992-01-01 .. 1998-08-02, so V3's
///    1994-06-01..1994-12-31 window selects ≈ 9% of orders;
///  - many parts are never referenced by a lineitem, populating the
///    {part} orphan term.
class Dbgen {
 public:
  explicit Dbgen(DbgenOptions options);

  /// Generates all eight tables into an already-CreateSchema'd catalog.
  void Populate(Catalog* catalog);

  int64_t num_supplier() const { return num_supplier_; }
  int64_t num_part() const { return num_part_; }
  int64_t num_customer() const { return num_customer_; }
  int64_t num_orders() const { return num_orders_; }

  /// i-th (1-based) order key under the sparse-key scheme.
  static int64_t SparseOrderKey(int64_t i);

  // --- row builders shared with the refresh streams ---
  Row MakePartRow(int64_t partkey, Rng* rng) const;
  Row MakeCustomerRow(int64_t custkey, Rng* rng) const;
  Row MakeOrderRow(int64_t orderkey, int64_t custkey, Rng* rng) const;
  Row MakeLineitemRow(int64_t orderkey, int64_t linenumber, int64_t orderdate,
                      Rng* rng) const;
  Row MakeSupplierRow(int64_t suppkey, Rng* rng) const;

  /// A customer key that places orders (never divisible by 3).
  int64_t RandomOrderingCustomer(Rng* rng) const;
  int64_t RandomPart(Rng* rng) const { return 1 + rng->Uniform(0, num_part_ - 1); }
  int64_t RandomSupplier(Rng* rng) const {
    return 1 + rng->Uniform(0, num_supplier_ - 1);
  }

 private:
  DbgenOptions options_;
  int64_t num_supplier_;
  int64_t num_part_;
  int64_t num_customer_;
  int64_t num_orders_;
};

}  // namespace tpch
}  // namespace ojv

#endif  // OJV_TPCH_DBGEN_H_
