#include "tpch/tpch_schema.h"

namespace ojv {
namespace tpch {
namespace {

ColumnDef NotNull(const char* name, ValueType type) {
  return ColumnDef{name, type, /*nullable=*/false};
}

}  // namespace

void CreateSchema(Catalog* catalog) {
  catalog->CreateTable(
      "region",
      Schema({NotNull("r_regionkey", ValueType::kInt64),
              NotNull("r_name", ValueType::kString),
              NotNull("r_comment", ValueType::kString)}),
      {"r_regionkey"});

  catalog->CreateTable(
      "nation",
      Schema({NotNull("n_nationkey", ValueType::kInt64),
              NotNull("n_name", ValueType::kString),
              NotNull("n_regionkey", ValueType::kInt64),
              NotNull("n_comment", ValueType::kString)}),
      {"n_nationkey"});

  catalog->CreateTable(
      "supplier",
      Schema({NotNull("s_suppkey", ValueType::kInt64),
              NotNull("s_name", ValueType::kString),
              NotNull("s_address", ValueType::kString),
              NotNull("s_nationkey", ValueType::kInt64),
              NotNull("s_phone", ValueType::kString),
              NotNull("s_acctbal", ValueType::kFloat64),
              NotNull("s_comment", ValueType::kString)}),
      {"s_suppkey"});

  catalog->CreateTable(
      "part",
      Schema({NotNull("p_partkey", ValueType::kInt64),
              NotNull("p_name", ValueType::kString),
              NotNull("p_mfgr", ValueType::kString),
              NotNull("p_brand", ValueType::kString),
              NotNull("p_type", ValueType::kString),
              NotNull("p_size", ValueType::kInt64),
              NotNull("p_container", ValueType::kString),
              NotNull("p_retailprice", ValueType::kFloat64),
              NotNull("p_comment", ValueType::kString)}),
      {"p_partkey"});

  catalog->CreateTable(
      "partsupp",
      Schema({NotNull("ps_partkey", ValueType::kInt64),
              NotNull("ps_suppkey", ValueType::kInt64),
              NotNull("ps_availqty", ValueType::kInt64),
              NotNull("ps_supplycost", ValueType::kFloat64),
              NotNull("ps_comment", ValueType::kString)}),
      {"ps_partkey", "ps_suppkey"});

  catalog->CreateTable(
      "customer",
      Schema({NotNull("c_custkey", ValueType::kInt64),
              NotNull("c_name", ValueType::kString),
              NotNull("c_address", ValueType::kString),
              NotNull("c_nationkey", ValueType::kInt64),
              NotNull("c_phone", ValueType::kString),
              NotNull("c_acctbal", ValueType::kFloat64),
              NotNull("c_mktsegment", ValueType::kString),
              NotNull("c_comment", ValueType::kString)}),
      {"c_custkey"});

  catalog->CreateTable(
      "orders",
      Schema({NotNull("o_orderkey", ValueType::kInt64),
              NotNull("o_custkey", ValueType::kInt64),
              NotNull("o_orderstatus", ValueType::kString),
              NotNull("o_totalprice", ValueType::kFloat64),
              NotNull("o_orderdate", ValueType::kDate),
              NotNull("o_orderpriority", ValueType::kString),
              NotNull("o_clerk", ValueType::kString),
              NotNull("o_shippriority", ValueType::kInt64),
              NotNull("o_comment", ValueType::kString)}),
      {"o_orderkey"});

  catalog->CreateTable(
      "lineitem",
      Schema({NotNull("l_orderkey", ValueType::kInt64),
              NotNull("l_partkey", ValueType::kInt64),
              NotNull("l_suppkey", ValueType::kInt64),
              NotNull("l_linenumber", ValueType::kInt64),
              NotNull("l_quantity", ValueType::kFloat64),
              NotNull("l_extendedprice", ValueType::kFloat64),
              NotNull("l_discount", ValueType::kFloat64),
              NotNull("l_tax", ValueType::kFloat64),
              NotNull("l_returnflag", ValueType::kString),
              NotNull("l_linestatus", ValueType::kString),
              NotNull("l_shipdate", ValueType::kDate),
              NotNull("l_commitdate", ValueType::kDate),
              NotNull("l_receiptdate", ValueType::kDate),
              NotNull("l_shipinstruct", ValueType::kString),
              NotNull("l_shipmode", ValueType::kString),
              NotNull("l_comment", ValueType::kString)}),
      {"l_orderkey", "l_linenumber"});

  catalog->AddForeignKey(
      {"nation", {"n_regionkey"}, "region", {"r_regionkey"}});
  catalog->AddForeignKey(
      {"supplier", {"s_nationkey"}, "nation", {"n_nationkey"}});
  catalog->AddForeignKey(
      {"customer", {"c_nationkey"}, "nation", {"n_nationkey"}});
  catalog->AddForeignKey(
      {"partsupp", {"ps_partkey"}, "part", {"p_partkey"}});
  catalog->AddForeignKey(
      {"partsupp", {"ps_suppkey"}, "supplier", {"s_suppkey"}});
  catalog->AddForeignKey(
      {"orders", {"o_custkey"}, "customer", {"c_custkey"}});
  catalog->AddForeignKey(
      {"lineitem", {"l_orderkey"}, "orders", {"o_orderkey"}});
  catalog->AddForeignKey({"lineitem", {"l_partkey"}, "part", {"p_partkey"}});
  catalog->AddForeignKey(
      {"lineitem", {"l_suppkey"}, "supplier", {"s_suppkey"}});
}

}  // namespace tpch
}  // namespace ojv
