// End-to-end incremental maintenance of the running-example view V1:
// inserts and deletes on every base table, under every combination of
// maintenance options, always compared against full recomputation.

#include "ivm/maintainer.h"

#include <gtest/gtest.h>

#include "baseline/recompute.h"
#include "test_util.h"

namespace ojv {
namespace {

using testing_util::CreateRstuSchema;
using testing_util::MakeV1;
using testing_util::PopulateRandomRstu;
using testing_util::RandomRstuRows;
using testing_util::SampleKeys;

struct V1Fixture {
  Catalog catalog;
  Rng rng{12345};
  int64_t next_key = 1000000;

  V1Fixture() {
    CreateRstuSchema(&catalog);
    PopulateRandomRstu(&catalog, &rng, 30, 5);
  }

  void CheckInsertAndDelete(const MaintenanceOptions& options) {
    ViewDef v1 = MakeV1(catalog);
    ViewMaintainer maintainer(&catalog, v1, options);
    maintainer.InitializeView();

    for (const char* table_name : {"R", "S", "T", "U"}) {
      Table* table = catalog.GetTable(table_name);
      // Insert a batch.
      std::vector<Row> rows =
          RandomRstuRows(table_name, &rng, 8, 5, &next_key);
      std::vector<Row> inserted = ApplyBaseInsert(table, rows);
      maintainer.OnInsert(table_name, inserted);
      std::string diff;
      ASSERT_TRUE(ViewMatchesRecompute(catalog, v1, maintainer.view(), &diff))
          << "after insert into " << table_name << ": " << diff;

      // Delete a batch.
      std::vector<Row> keys = SampleKeys(*table, &rng, 6);
      std::vector<Row> deleted = ApplyBaseDelete(table, keys);
      maintainer.OnDelete(table_name, deleted);
      ASSERT_TRUE(ViewMatchesRecompute(catalog, v1, maintainer.view(), &diff))
          << "after delete from " << table_name << ": " << diff;
    }
  }
};

TEST(MaintainerTest, V1DefaultOptions) {
  V1Fixture fixture;
  fixture.CheckInsertAndDelete(MaintenanceOptions());
}

TEST(MaintainerTest, V1BushyTree) {
  V1Fixture fixture;
  MaintenanceOptions options;
  options.use_left_deep = false;
  fixture.CheckInsertAndDelete(options);
}

TEST(MaintainerTest, V1NoForeignKeys) {
  V1Fixture fixture;
  MaintenanceOptions options;
  options.exploit_foreign_keys = false;
  fixture.CheckInsertAndDelete(options);
}

TEST(MaintainerTest, V1SecondaryFromBaseTables) {
  V1Fixture fixture;
  MaintenanceOptions options;
  options.secondary_strategy = SecondaryStrategy::kFromBaseTables;
  fixture.CheckInsertAndDelete(options);
}

TEST(MaintainerTest, V1SecondaryFromBaseTablesBushy) {
  V1Fixture fixture;
  MaintenanceOptions options;
  options.secondary_strategy = SecondaryStrategy::kFromBaseTables;
  options.use_left_deep = false;
  fixture.CheckInsertAndDelete(options);
}

TEST(MaintainerTest, EmptyDeltaIsANoop) {
  V1Fixture fixture;
  ViewDef v1 = MakeV1(fixture.catalog);
  ViewMaintainer maintainer(&fixture.catalog, v1, MaintenanceOptions());
  maintainer.InitializeView();
  int64_t before = maintainer.view().size();
  MaintenanceStats stats = maintainer.OnInsert("T", {});
  EXPECT_EQ(stats.primary_rows, 0);
  EXPECT_EQ(maintainer.view().size(), before);
}

TEST(MaintainerTest, StatsReportAffectedTerms) {
  V1Fixture fixture;
  ViewDef v1 = MakeV1(fixture.catalog);
  ViewMaintainer maintainer(&fixture.catalog, v1, MaintenanceOptions());
  maintainer.InitializeView();
  std::vector<Row> rows = RandomRstuRows("T", &fixture.rng, 3, 5,
                                         &fixture.next_key);
  std::vector<Row> inserted =
      ApplyBaseInsert(fixture.catalog.GetTable("T"), rows);
  MaintenanceStats stats = maintainer.OnInsert("T", inserted);
  EXPECT_EQ(stats.delta_rows, 3);
  EXPECT_EQ(stats.direct_terms, 4);    // Figure 1(b): TURS, TUR, TRS, TR
  EXPECT_EQ(stats.indirect_terms, 2);  // RS, R
  EXPECT_GT(stats.primary_rows, 0);
}

// Updates of S exercise the "delta on the right side of a left outer
// join input" commutation path; updates of U the doubly-nested case.
TEST(MaintainerTest, RepeatedMixedUpdatesStayConsistent) {
  V1Fixture fixture;
  ViewDef v1 = MakeV1(fixture.catalog);
  ViewMaintainer maintainer(&fixture.catalog, v1, MaintenanceOptions());
  maintainer.InitializeView();

  const char* tables[] = {"T", "U", "S", "R"};
  for (int round = 0; round < 12; ++round) {
    const char* name = tables[round % 4];
    Table* table = fixture.catalog.GetTable(name);
    if (round % 3 == 0) {
      std::vector<Row> deleted =
          ApplyBaseDelete(table, SampleKeys(*table, &fixture.rng, 4));
      maintainer.OnDelete(name, deleted);
    } else {
      std::vector<Row> inserted = ApplyBaseInsert(
          table, RandomRstuRows(name, &fixture.rng, 5, 5, &fixture.next_key));
      maintainer.OnInsert(name, inserted);
    }
    std::string diff;
    ASSERT_TRUE(ViewMatchesRecompute(fixture.catalog, v1, maintainer.view(),
                                     &diff))
        << "round " << round << " (" << name << "): " << diff;
  }
}

// Degenerate but legal: a single-table selection view (no joins at
// all). The machinery must handle one term, no secondary deltas.
TEST(MaintainerTest, SingleTableSelectionView) {
  Catalog catalog;
  CreateRstuSchema(&catalog);
  Rng rng(31);
  PopulateRandomRstu(&catalog, &rng, 30, 5);

  RelExprPtr tree = RelExpr::Select(
      RelExpr::Scan("T"),
      ScalarExpr::Compare(CompareOp::kLe, ScalarExpr::Column("T", "t_a"),
                          ScalarExpr::Literal(Value::Int64(2))));
  ViewDef view("t_only", tree,
               {{"T", "t_id"}, {"T", "t_a"}, {"T", "t_v"}}, catalog);
  ViewMaintainer maintainer(&catalog, view, MaintenanceOptions());
  maintainer.InitializeView();
  EXPECT_EQ(maintainer.terms().size(), 1u);
  EXPECT_EQ(maintainer.delta_expr("T")->ToString(),
            "sel[T.t_a <= 2](dT)");

  int64_t key = 777000;
  Table* t = catalog.GetTable("T");
  MaintenanceStats stats = maintainer.OnInsert(
      "T", ApplyBaseInsert(t, RandomRstuRows("T", &rng, 10, 5, &key)));
  EXPECT_TRUE(stats.fk_fast_path);  // selection over the delta itself
  EXPECT_EQ(stats.indirect_terms, 0);
  std::string diff;
  ASSERT_TRUE(ViewMatchesRecompute(catalog, view, maintainer.view(), &diff))
      << diff;

  maintainer.OnDelete("T", ApplyBaseDelete(t, SampleKeys(*t, &rng, 8)));
  ASSERT_TRUE(ViewMatchesRecompute(catalog, view, maintainer.view(), &diff))
      << diff;
}

}  // namespace
}  // namespace ojv
