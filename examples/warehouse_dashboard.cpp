// OLAP dashboard — the paper's first motivation: "Queries containing
// outer joins are common in OLAP applications, typically joining a fact
// table with some number of dimension tables followed by aggregation."
//
// Materializes an aggregated outer-join view over V3 — revenue and
// lineitem counts by market segment — and keeps it fresh under a stream
// of inserts and deletes. Outer joins matter here: segments whose
// customers have no in-window orders still appear on the dashboard with
// zero order activity.

#include <cstdio>

#include "ivm/aggregate_view.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

using namespace ojv;

namespace {

void PrintDashboard(const AggViewMaintainer& agg) {
  Relation snapshot = agg.AsRelation();
  int seg = snapshot.schema().Find("customer", "c_mktsegment");
  int rows = snapshot.schema().Find("#agg", "rows");
  int items = snapshot.schema().Find("#agg", "lineitems");
  int revenue = snapshot.schema().Find("#agg", "revenue");

  std::vector<Row> sorted = snapshot.rows();
  SortRows(&sorted);
  std::printf("  %-12s %10s %10s %16s\n", "segment", "rows", "lineitems",
              "revenue");
  for (const Row& row : sorted) {
    std::printf("  %-12s %10s %10s %16s\n",
                row[static_cast<size_t>(seg)].ToString().c_str(),
                row[static_cast<size_t>(rows)].ToString().c_str(),
                row[static_cast<size_t>(items)].ToString().c_str(),
                row[static_cast<size_t>(revenue)].ToString().c_str());
  }
}

}  // namespace

int main() {
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  tpch::DbgenOptions options;
  options.scale_factor = 0.004;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(&catalog);
  tpch::RefreshStream refresh(&catalog, &dbgen, 99);

  std::vector<ColumnRef> group_by = {{"customer", "c_mktsegment"}};
  std::vector<AggregateSpec> aggs = {
      {AggregateSpec::Kind::kCountStar, {}, "rows"},
      {AggregateSpec::Kind::kCount, {"lineitem", "l_orderkey"}, "lineitems"},
      {AggregateSpec::Kind::kSum, {"lineitem", "l_extendedprice"}, "revenue"},
  };
  AggViewMaintainer dashboard(&catalog, tpch::MakeV3(catalog), group_by,
                              aggs);
  dashboard.InitializeView();

  std::printf("initial dashboard (%lld groups):\n",
              static_cast<long long>(dashboard.num_groups()));
  PrintDashboard(dashboard);

  // A business day: lineitem inserts and deletes arrive in bursts; the
  // dashboard is maintained incrementally after each statement.
  Table* lineitem = catalog.GetTable("lineitem");
  for (int burst = 0; burst < 3; ++burst) {
    std::vector<Row> inserted =
        ApplyBaseInsert(lineitem, refresh.NewLineitems(400));
    MaintenanceStats ins =
        dashboard.OnInsert("lineitem", inserted);
    std::vector<Row> deleted = ApplyBaseDelete(
        lineitem, refresh.PickLineitemDeleteKeys(200));
    MaintenanceStats del = dashboard.OnDelete("lineitem", deleted);
    std::printf(
        "\nburst %d: +400/-200 lineitems "
        "(insert: %.2f ms, delete: %.2f ms)\n",
        burst + 1, ins.total_micros / 1000.0, del.total_micros / 1000.0);
  }

  std::printf("\nfinal dashboard:\n");
  PrintDashboard(dashboard);

  std::string diff;
  bool ok = dashboard.MatchesRecompute(1e-9, &diff);
  std::printf("\ndashboard == recompute: %s %s\n", ok ? "yes" : "NO",
              diff.c_str());
  return ok ? 0 : 1;
}
