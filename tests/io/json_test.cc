// JSON parser: round-trips of the benchmark document shape, escape and
// number handling, lookup helpers, and malformed-input diagnostics.

#include "io/json.h"

#include <gtest/gtest.h>

namespace ojv {
namespace io {
namespace {

TEST(JsonParseTest, Scalars) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson("null", &v, &error)) << error;
  EXPECT_TRUE(v.is_null());
  ASSERT_TRUE(ParseJson("true", &v, &error));
  EXPECT_TRUE(v.is_bool());
  EXPECT_TRUE(v.AsBool());
  ASSERT_TRUE(ParseJson("false", &v, &error));
  EXPECT_FALSE(v.AsBool());
  ASSERT_TRUE(ParseJson("-12.5e2", &v, &error));
  EXPECT_TRUE(v.is_number());
  EXPECT_DOUBLE_EQ(v.AsDouble(), -1250.0);
  ASSERT_TRUE(ParseJson("42", &v, &error));
  EXPECT_EQ(v.AsInt(), 42);
  ASSERT_TRUE(ParseJson("\"hi\"", &v, &error));
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "hi");
}

TEST(JsonParseTest, StringEscapes) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(R"("a\"b\\c\n\tA")", &v, &error)) << error;
  EXPECT_EQ(v.AsString(), "a\"b\\c\n\tA");
  // é is é, encoded as two UTF-8 bytes.
  ASSERT_TRUE(ParseJson(R"("é")", &v, &error));
  EXPECT_EQ(v.AsString(), "\xc3\xa9");
}

TEST(JsonParseTest, ArraysAndNesting) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson("[1, [2, 3], {\"k\": 4}, []]", &v, &error)) << error;
  ASSERT_TRUE(v.is_array());
  ASSERT_EQ(v.AsArray().size(), 4u);
  EXPECT_DOUBLE_EQ(v.AsArray()[0].AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(v.AsArray()[1].AsArray()[1].AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(v.AsArray()[2].NumberOr("k", -1), 4.0);
  EXPECT_TRUE(v.AsArray()[3].AsArray().empty());
}

TEST(JsonParseTest, BenchDocumentShape) {
  // The shape bench_util emits and bench_gate consumes.
  const std::string doc = R"({
    "benchmark": "fig5_insert",
    "scale_factor": 0.01,
    "threads": 4,
    "sanitize": "",
    "parallel_valid": true,
    "results": [
      {"batch_rows": 100, "ours_ms": 1.5,
       "stages": {"primary_ms": 0.8, "apply_ms": 0.2}},
      {"batch_rows": 1000, "ours_ms": 9.25}
    ]
  })";
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(doc, &v, &error)) << error;
  EXPECT_EQ(v.StringOr("benchmark", "?"), "fig5_insert");
  EXPECT_DOUBLE_EQ(v.NumberOr("scale_factor", 0), 0.01);
  EXPECT_TRUE(v.Find("parallel_valid")->AsBool());
  const JsonValue* results = v.Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->AsArray().size(), 2u);
  const JsonValue& row = results->AsArray()[0];
  EXPECT_EQ(row.NumberOr("batch_rows", 0), 100);
  const JsonValue* primary = row.FindPath({"stages", "primary_ms"});
  ASSERT_NE(primary, nullptr);
  EXPECT_DOUBLE_EQ(primary->AsDouble(), 0.8);
  // Second row has no stages object: path lookup misses cleanly.
  EXPECT_EQ(results->AsArray()[1].FindPath({"stages", "primary_ms"}), nullptr);
}

TEST(JsonParseTest, LookupHelpersOnWrongKinds) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson("{\"s\": \"x\", \"n\": 3}", &v, &error));
  EXPECT_EQ(v.Find("missing"), nullptr);
  EXPECT_DOUBLE_EQ(v.NumberOr("s", 7.0), 7.0);   // string, not number
  EXPECT_EQ(v.StringOr("n", "fb"), "fb");        // number, not string
  JsonValue arr;
  ASSERT_TRUE(ParseJson("[1]", &arr, &error));
  EXPECT_EQ(arr.Find("k"), nullptr);  // non-object Find is a clean miss
}

TEST(JsonParseTest, MalformedInputsReportOffset) {
  const char* bad[] = {
      "",            // empty document
      "{",           // unterminated object
      "[1, 2",       // unterminated array
      "{\"a\" 1}",   // missing colon
      "{\"a\": 1,}", // trailing comma
      "\"abc",       // unterminated string
      "nul",         // truncated keyword
      "1.2.3",       // malformed number
      "[1] trailing" // garbage after document
  };
  for (const char* text : bad) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(ParseJson(text, &v, &error)) << "accepted: " << text;
    EXPECT_NE(error.find("offset"), std::string::npos)
        << "no offset in error for: " << text << " (" << error << ")";
  }
}

TEST(JsonParseTest, DepthLimitRejectsDeepNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson(deep, &v, &error));
}

TEST(JsonParseTest, FileRoundTrip) {
  std::string error;
  JsonValue v;
  EXPECT_FALSE(ParseJsonFile("/nonexistent/path.json", &v, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace io
}  // namespace ojv
