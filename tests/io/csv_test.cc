// Delimited-text I/O: dbgen-style .tbl round trips, CSV quoting, NULL
// markers, error reporting, catalog dump/load.

#include "io/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/date.h"
#include "exec/evaluator.h"
#include "baseline/recompute.h"
#include "ivm/maintainer.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/views.h"
#include "tpch/tpch_schema.h"

namespace ojv {
namespace io {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("ojv_csv_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::string ReadAll(const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  std::filesystem::path dir_;
};

Table MakeSample() {
  Table t("sample",
          Schema({ColumnDef{"id", ValueType::kInt64, false},
                  ColumnDef{"name", ValueType::kString, true},
                  ColumnDef{"price", ValueType::kFloat64, true},
                  ColumnDef{"day", ValueType::kDate, true}}),
          {"id"});
  t.Insert(Row{Value::Int64(1), Value::String("widget"),
               Value::Float64(12.5), Value::Date(ParseDate("1994-06-01"))});
  t.Insert(Row{Value::Int64(2), Value::Null(), Value::Null(), Value::Null()});
  return t;
}

TEST_F(CsvTest, TblRoundTrip) {
  Table original = MakeSample();
  TextFormat format;  // dbgen style
  std::string error;
  ASSERT_TRUE(WriteTable(original, Path("sample.tbl"), format, &error))
      << error;

  std::string content = ReadAll(Path("sample.tbl"));
  EXPECT_NE(content.find("1|widget|12.50|1994-06-01|"), std::string::npos);
  EXPECT_NE(content.find("2|\\N|\\N|\\N|"), std::string::npos);

  Table reloaded("sample2",
                 Schema({ColumnDef{"id", ValueType::kInt64, false},
                         ColumnDef{"name", ValueType::kString, true},
                         ColumnDef{"price", ValueType::kFloat64, true},
                         ColumnDef{"day", ValueType::kDate, true}}),
                 {"id"});
  ASSERT_TRUE(LoadTable(&reloaded, Path("sample.tbl"), format, &error))
      << error;
  EXPECT_EQ(reloaded.Snapshot(), original.Snapshot());
}

TEST_F(CsvTest, CsvWithHeaderAndQuoting) {
  Table t("q",
          Schema({ColumnDef{"id", ValueType::kInt64, false},
                  ColumnDef{"text", ValueType::kString, true}}),
          {"id"});
  t.Insert(Row{Value::Int64(1), Value::String("a,b")});
  t.Insert(Row{Value::Int64(2), Value::String("say \"hi\"")});

  TextFormat format;
  format.delimiter = ',';
  format.header = true;
  format.trailing_delimiter = false;
  std::string error;
  ASSERT_TRUE(WriteTable(t, Path("q.csv"), format, &error)) << error;
  std::string content = ReadAll(Path("q.csv"));
  EXPECT_NE(content.find("id,text"), std::string::npos);
  EXPECT_NE(content.find("\"a,b\""), std::string::npos);
  EXPECT_NE(content.find("\"say \"\"hi\"\"\""), std::string::npos);

  Table back("q2",
             Schema({ColumnDef{"id", ValueType::kInt64, false},
                     ColumnDef{"text", ValueType::kString, true}}),
             {"id"});
  ASSERT_TRUE(LoadTable(&back, Path("q.csv"), format, &error)) << error;
  EXPECT_EQ(back.Snapshot(), t.Snapshot());
}

TEST_F(CsvTest, EmptyStringIsNotNull) {
  Table t("s",
          Schema({ColumnDef{"id", ValueType::kInt64, false},
                  ColumnDef{"text", ValueType::kString, true}}),
          {"id"});
  t.Insert(Row{Value::Int64(1), Value::String("")});
  t.Insert(Row{Value::Int64(2), Value::Null()});
  TextFormat format;
  std::string error;
  ASSERT_TRUE(WriteTable(t, Path("empty.tbl"), format, &error)) << error;
  Table back("s2",
             Schema({ColumnDef{"id", ValueType::kInt64, false},
                     ColumnDef{"text", ValueType::kString, true}}),
             {"id"});
  ASSERT_TRUE(LoadTable(&back, Path("empty.tbl"), format, &error)) << error;
  const Row* one = back.FindByKey(Row{Value::Int64(1)});
  ASSERT_NE(one, nullptr);
  EXPECT_TRUE((*one)[1].is_string());
  EXPECT_EQ((*one)[1].string(), "");
  const Row* two = back.FindByKey(Row{Value::Int64(2)});
  ASSERT_NE(two, nullptr);
  EXPECT_TRUE((*two)[1].is_null());
}

TEST_F(CsvTest, NullMarkerLookalikeStringSurvives) {
  Table t("m",
          Schema({ColumnDef{"id", ValueType::kInt64, false},
                  ColumnDef{"text", ValueType::kString, true}}),
          {"id"});
  t.Insert(Row{Value::Int64(1), Value::String("\\N")});
  TextFormat format;
  std::string error;
  ASSERT_TRUE(WriteTable(t, Path("marker.tbl"), format, &error)) << error;
  Table back("m2",
             Schema({ColumnDef{"id", ValueType::kInt64, false},
                     ColumnDef{"text", ValueType::kString, true}}),
             {"id"});
  ASSERT_TRUE(LoadTable(&back, Path("marker.tbl"), format, &error)) << error;
  const Row* row = back.FindByKey(Row{Value::Int64(1)});
  ASSERT_NE(row, nullptr);
  ASSERT_TRUE((*row)[1].is_string());
  EXPECT_EQ((*row)[1].string(), "\\N");
}

TEST_F(CsvTest, LoadErrors) {
  Table t("e",
          Schema({ColumnDef{"id", ValueType::kInt64, false},
                  ColumnDef{"v", ValueType::kInt64, true}}),
          {"id"});
  TextFormat format;
  std::string error;

  {
    std::ofstream out(Path("bad_arity.tbl"));
    out << "1|2|3|\n";
  }
  EXPECT_FALSE(LoadTable(&t, Path("bad_arity.tbl"), format, &error));
  EXPECT_NE(error.find("expected 2 fields"), std::string::npos);

  {
    std::ofstream out(Path("bad_int.tbl"));
    out << "1|oops|\n";
  }
  EXPECT_FALSE(LoadTable(&t, Path("bad_int.tbl"), format, &error));
  EXPECT_NE(error.find("cannot parse"), std::string::npos);

  {
    std::ofstream out(Path("null_key.tbl"));
    out << "\\N|5|\n";
  }
  EXPECT_FALSE(LoadTable(&t, Path("null_key.tbl"), format, &error));
  EXPECT_NE(error.find("non-nullable"), std::string::npos);

  {
    std::ofstream out(Path("dup.tbl"));
    out << "7|1|\n7|2|\n";
  }
  EXPECT_FALSE(LoadTable(&t, Path("dup.tbl"), format, &error));
  EXPECT_NE(error.find("duplicate key"), std::string::npos);

  EXPECT_FALSE(LoadTable(&t, Path("missing.tbl"), format, &error));
}

TEST_F(CsvTest, CatalogDumpAndReload) {
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  tpch::DbgenOptions options;
  options.scale_factor = 0.001;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(&catalog);

  TextFormat format;
  std::string error;
  ASSERT_TRUE(DumpCatalog(catalog, (dir_ / "dump").string(), format, &error))
      << error;

  Catalog reloaded;
  tpch::CreateSchema(&reloaded);
  ASSERT_TRUE(
      LoadCatalog(&reloaded, (dir_ / "dump").string(), format, &error))
      << error;
  for (const std::string& name : catalog.TableNames()) {
    EXPECT_EQ(reloaded.GetTable(name)->size(), catalog.GetTable(name)->size())
        << name;
  }
  // FK integrity survives the round trip.
  std::string violation;
  EXPECT_TRUE(reloaded.CheckForeignKeys(&violation)) << violation;
  // Lineitem rows identical (dates, floats, strings round-trip).
  EXPECT_EQ(reloaded.GetTable("lineitem")->Snapshot(),
            catalog.GetTable("lineitem")->Snapshot());
}

TEST_F(CsvTest, WriteRelationIncludesTaggedHeader) {
  Table t = MakeSample();
  Relation rel(Evaluator::SchemaFor(t));
  t.ForEach([&](const Row& row) { rel.Add(row); });
  TextFormat format;
  std::string error;
  ASSERT_TRUE(WriteRelation(rel, Path("rel.tbl"), format, &error)) << error;
  std::string content = ReadAll(Path("rel.tbl"));
  EXPECT_NE(content.find("sample.id|sample.name"), std::string::npos);
}

TEST_F(CsvTest, ViewSaveAndWarmRestart) {
  // Materialize a view, persist it, restart a fresh maintainer from the
  // file, and continue maintaining — without the initial recomputation.
  Catalog catalog;
  tpch::CreateSchema(&catalog);
  tpch::DbgenOptions options;
  options.scale_factor = 0.002;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(&catalog);

  ViewDef view = tpch::MakeOjView(catalog);
  ViewMaintainer first(&catalog, view, MaintenanceOptions());
  first.InitializeView();
  TextFormat format;
  std::string error;
  ASSERT_TRUE(WriteRelation(first.view().AsRelation(), Path("view.tbl"),
                            format, &error))
      << error;

  ViewMaintainer second(&catalog, view, MaintenanceOptions());
  std::vector<Row> rows;
  ASSERT_TRUE(LoadRelationRows(Path("view.tbl"), view.output_schema(), format,
                               &rows, &error))
      << error;
  second.RestoreView(rows);
  EXPECT_EQ(second.view().size(), first.view().size());

  // Maintenance continues from the restored state.
  tpch::RefreshStream refresh(&catalog, &dbgen, 91);
  std::vector<Row> inserted = ApplyBaseInsert(catalog.GetTable("lineitem"),
                                              refresh.NewLineitems(120));
  second.OnInsert("lineitem", inserted);
  std::string diff;
  EXPECT_TRUE(ViewMatchesRecompute(catalog, view, second.view(), &diff))
      << diff;

  // A schema-mismatched file is rejected.
  std::vector<Row> bogus;
  EXPECT_FALSE(LoadRelationRows(Path("view.tbl"),
                                tpch::MakeV3(catalog).output_schema(), format,
                                &bogus, &error));
  EXPECT_NE(error.find("header"), std::string::npos);
}

}  // namespace
}  // namespace io
}  // namespace ojv
