#include "ivm/left_deep.h"

#include "common/check.h"

namespace ojv {
namespace {

bool IsLeaf(const RelExprPtr& e) {
  return e->kind() == RelKind::kScan || e->kind() == RelKind::kDeltaScan;
}

// A right operand needing no pull: a base table, possibly selected.
bool IsSimpleRight(const RelExprPtr& e) {
  if (IsLeaf(e)) return true;
  return e->kind() == RelKind::kSelect && IsLeaf(e->input());
}

// δ then ↓ after a null-if: removes the duplicates λ creates and the
// null-extended rows that are subsumed by a surviving match.
RelExprPtr FixUp(RelExprPtr e, std::set<std::string> null_tables,
                 ScalarExprPtr keep_pred) {
  return RelExpr::SubsumeRemove(RelExpr::Dedup(
      RelExpr::NullIf(std::move(e), std::move(null_tables),
                      std::move(keep_pred))));
}

// Flips a join's operands: lo <-> ro; inner/fo are symmetric.
RelExprPtr CommuteJoin(const RelExprPtr& join) {
  JoinKind kind = join->join_kind();
  if (kind == JoinKind::kLeftOuter) kind = JoinKind::kRightOuter;
  else if (kind == JoinKind::kRightOuter) kind = JoinKind::kLeftOuter;
  return RelExpr::Join(kind, join->right(), join->left(), join->predicate());
}

bool Intersects(const std::set<std::string>& a,
                const std::set<std::string>& b) {
  for (const std::string& t : a) {
    if (b.count(t) > 0) return true;
  }
  return false;
}

// Builds a left-deep form of `left kind right ON pred`, where `left` is
// already left-deep and `kind` is inner or left-outer (the only kinds on
// a ΔV^D main path). Falls back to the bushy join when the paper's
// binary-predicate assumption does not let a rule fire.
RelExprPtr JoinLD(JoinKind kind, RelExprPtr left, RelExprPtr right,
                  ScalarExprPtr pred) {
  OJV_CHECK(kind == JoinKind::kInner || kind == JoinKind::kLeftOuter,
            "main-path joins must be inner or left-outer");
  if (IsSimpleRight(right)) {
    return RelExpr::Join(kind, std::move(left), std::move(right), pred);
  }

  if (right->kind() == RelKind::kSelect) {
    RelExprPtr e2 = right->input();
    ScalarExprPtr p2 = right->predicate();
    if (kind == JoinKind::kInner) {
      // σ commutes with inner join: hoist it onto the main path.
      return RelExpr::Select(JoinLD(kind, std::move(left), e2, pred), p2);
    }
    // Rule 1: e1 lo (σp2 e2) = δ λ^{e2.*}_{¬p2}(e1 lo e2).
    std::set<std::string> e2_tables = e2->ReferencedTables();
    RelExprPtr joined = JoinLD(kind, std::move(left), e2, pred);
    return FixUp(std::move(joined), std::move(e2_tables), p2);
  }

  OJV_CHECK(right->kind() == RelKind::kJoin,
            "unexpected right operand in delta tree");

  // Orient the right join so the main predicate references its left
  // side (the paper states the rules for p(1,2)).
  std::set<std::string> pred_tables = pred->ReferencedTables();
  std::set<std::string> e2_tables = right->left()->ReferencedTables();
  std::set<std::string> e3_tables = right->right()->ReferencedTables();
  bool hits_e2 = Intersects(pred_tables, e2_tables);
  bool hits_e3 = Intersects(pred_tables, e3_tables);
  if (hits_e2 && hits_e3) {
    // The main predicate spans both sides of the right join; no rule
    // applies. Keep the (still correct) bushy join.
    return RelExpr::Join(kind, std::move(left), std::move(right),
                         std::move(pred));
  }
  if (!hits_e2 && hits_e3) {
    return JoinLD(kind, std::move(left), CommuteJoin(right), std::move(pred));
  }

  RelExprPtr e2 = right->left();
  RelExprPtr e3 = right->right();
  ScalarExprPtr p23 = right->predicate();
  JoinKind k2 = right->join_kind();
  OJV_CHECK(k2 == JoinKind::kInner || k2 == JoinKind::kLeftOuter ||
                k2 == JoinKind::kRightOuter || k2 == JoinKind::kFullOuter,
            "unexpected join kind in right operand");

  if (kind == JoinKind::kInner) {
    // Tuples of the right operand that are null-extended on e2 can never
    // satisfy the (null-rejecting) main predicate, so ro degenerates to
    // inner and fo/lo to lo:
    //   e1 join (e2 join/ro e3) = (e1 join e2) join e3
    //   e1 join (e2 lo/fo   e3) = (e1 join e2) lo   e3
    RelExprPtr first = JoinLD(JoinKind::kInner, std::move(left), e2, pred);
    JoinKind next = (k2 == JoinKind::kInner || k2 == JoinKind::kRightOuter)
                        ? JoinKind::kInner
                        : JoinKind::kLeftOuter;
    return JoinLD(next, std::move(first), e3, p23);
  }

  // kind == lo.
  if (k2 == JoinKind::kLeftOuter || k2 == JoinKind::kFullOuter) {
    // Rules 2 and 3: e1 lo (e2 lo/fo e3) = (e1 lo e2) lo e3. (For fo, the
    // e3-only tuples are null on e2, fail the main predicate, and a left
    // outer join discards unmatched right tuples anyway.)
    RelExprPtr first = JoinLD(JoinKind::kLeftOuter, std::move(left), e2, pred);
    return JoinLD(JoinKind::kLeftOuter, std::move(first), e3, p23);
  }
  // Rules 4 and 5: e1 lo (e2 ro/join e3)
  //   = δ λ^{e2.*,e3.*}_{¬p23}((e1 lo e2) lo e3).
  std::set<std::string> null_tables = e2_tables;
  null_tables.insert(e3_tables.begin(), e3_tables.end());
  RelExprPtr first = JoinLD(JoinKind::kLeftOuter, std::move(left), e2, pred);
  RelExprPtr second = JoinLD(JoinKind::kLeftOuter, std::move(first), e3, p23);
  return FixUp(std::move(second), std::move(null_tables), p23);
}

}  // namespace

RelExprPtr ToLeftDeep(const RelExprPtr& delta_expr) {
  OJV_CHECK(delta_expr != nullptr, "null delta expression");
  switch (delta_expr->kind()) {
    case RelKind::kScan:
    case RelKind::kDeltaScan:
      return delta_expr;
    case RelKind::kSelect:
      return RelExpr::Select(ToLeftDeep(delta_expr->input()),
                             delta_expr->predicate());
    case RelKind::kJoin:
      return JoinLD(delta_expr->join_kind(), ToLeftDeep(delta_expr->left()),
                    delta_expr->right(), delta_expr->predicate());
    default:
      OJV_CHECK(false, "unexpected node in delta expression");
  }
}

bool IsLeftDeep(const RelExprPtr& expr) {
  switch (expr->kind()) {
    case RelKind::kScan:
    case RelKind::kDeltaScan:
      return true;
    case RelKind::kSelect:
    case RelKind::kDedup:
    case RelKind::kSubsumeRemove:
    case RelKind::kNullIf:
      return IsLeftDeep(expr->input());
    case RelKind::kJoin:
      return IsLeftDeep(expr->left()) && IsSimpleRight(expr->right());
    default:
      return false;
  }
}

}  // namespace ojv
