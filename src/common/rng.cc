#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ojv {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  s0_ = SplitMix64(&sm);
  s1_ = SplitMix64(&sm);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  OJV_CHECK(lo <= hi, "empty range");
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling for an unbiased bounded draw.
  uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

std::string Rng::Text(int min_len, int max_len) {
  int len = static_cast<int>(Uniform(min_len, max_len));
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    if (i > 0 && i % 6 == 5) {
      out.push_back(' ');
    } else {
      out.push_back(static_cast<char>('a' + Uniform(0, 25)));
    }
  }
  return out;
}

Rng Rng::Fork(uint64_t salt) {
  uint64_t seed = Next() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  return Rng(seed);
}

ZipfDistribution::ZipfDistribution(int64_t n, double s) : s_(s) {
  OJV_CHECK(n >= 1, "Zipf domain must be non-empty");
  OJV_CHECK(s >= 0, "Zipf exponent must be non-negative");
  cdf_.resize(static_cast<size_t>(n));
  double total = 0;
  for (int64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[static_cast<size_t>(k)] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

int64_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int64_t>(it - cdf_.begin());
}

}  // namespace ojv
