# Empty compiler generated dependencies file for graphs_tour.
# This may be replaced when dependencies are built.
