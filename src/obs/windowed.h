#ifndef OJV_OBS_WINDOWED_H_
#define OJV_OBS_WINDOWED_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace ojv {
namespace obs {

/// Microseconds on the steady clock, for feeding WindowedHistogram from
/// production code paths (tests pass synthetic times instead).
int64_t SteadyNowMicros();

/// Time-windowed histogram: a ring of bucketed epochs that decays by
/// dropping whole epochs as they age out. Where the cumulative Histogram
/// answers "p99 since process start", this answers "p99 over the last
/// `epochs * epoch_micros` microseconds" — the question admission
/// control asks of refresh/statement latency and staleness.
///
/// Samples land in the epoch containing `now_micros`; readers merge the
/// epochs still inside the window ending at their `now_micros`. Bucket
/// boundaries are Histogram's power-of-two buckets, so percentile
/// answers are good to a factor of two, and negative samples clamp to 0
/// exactly like Histogram::Record.
///
/// Callers pass time explicitly (SteadyNowMicros in production) — that
/// keeps the primitive deterministic under test. Not thread-safe: the
/// admission controller mutates it under the database mutex. Unlike the
/// Registry metrics this is a decision input, not an observability
/// surface, so it stays live under -DOJV_OBS=OFF.
class WindowedHistogram {
 public:
  /// `epoch_micros` must be > 0, `epochs` >= 1; the window spans
  /// `epochs * epoch_micros`.
  WindowedHistogram(int64_t epoch_micros, int epochs);

  void Record(int64_t value, int64_t now_micros);

  /// Samples inside the window ending at `now_micros`.
  int64_t WindowCount(int64_t now_micros) const;
  int64_t WindowSum(int64_t now_micros) const;

  /// Upper bound of the bucket holding the p-th percentile (0 < p <=
  /// 100) of the samples inside the window; 0 when the window is empty.
  int64_t PercentileBound(double p, int64_t now_micros) const;

  int64_t window_micros() const {
    return epoch_micros_ * static_cast<int64_t>(ring_.size());
  }
  void Reset();

 private:
  struct Epoch {
    int64_t index = -1;  // now / epoch_micros when live; -1 = empty
    std::array<int64_t, Histogram::kBuckets> buckets{};
    int64_t count = 0;
    int64_t sum = 0;
  };

  /// Epochs live in the window ending at `now_micros`, i.e. with index
  /// in (now_index - ring size, now_index].
  bool Live(const Epoch& e, int64_t now_index) const {
    return e.index >= 0 && e.index <= now_index &&
           e.index > now_index - static_cast<int64_t>(ring_.size());
  }

  int64_t epoch_micros_;
  std::vector<Epoch> ring_;
};

}  // namespace obs
}  // namespace ojv

#endif  // OJV_OBS_WINDOWED_H_
