// Soak: the whole system under sustained mixed traffic. A Database with
// TPC-H tables, three maintained views (outer-join, core, aggregated),
// a statement log, and a query answered through view matching — with
// periodic full verification of every invariant at once.

#include <gtest/gtest.h>

#include <filesystem>

#include "baseline/recompute.h"
#include "io/statement_log.h"
#include "matching/view_matching.h"
#include "sql/parser.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace {

TEST(SoakTest, SustainedMixedTrafficKeepsEveryInvariant) {
  Database db;
  tpch::CreateSchema(db.catalog());
  tpch::DbgenOptions options;
  options.scale_factor = 0.003;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(db.catalog());
  tpch::RefreshStream refresh(db.catalog(), &dbgen, 2026);

  // Views: hand-built outer-join view, its SQL-defined inner core, and
  // an aggregated dashboard.
  ViewMaintainer* oj =
      db.CreateMaterializedView(tpch::MakeOjView(*db.catalog()));
  std::string error;
  ASSERT_TRUE(sql::ExecuteCreateView(
      "CREATE VIEW core AS SELECT p_partkey, o_orderkey, l_orderkey, "
      "l_linenumber, l_quantity FROM part JOIN "
      "(orders JOIN lineitem ON l_orderkey = o_orderkey) "
      "ON p_partkey = l_partkey",
      &db, &error))
      << error;
  ASSERT_TRUE(sql::ExecuteCreateView(
      "CREATE VIEW seg AS SELECT c_mktsegment, COUNT(*) AS cnt, "
      "SUM(o_totalprice) AS total, MAX(o_totalprice) AS top "
      "FROM customer LEFT JOIN orders ON c_custkey = o_custkey "
      "GROUP BY c_mktsegment",
      &db, &error))
      << error;

  // The inner-join query the oj view can answer via matching.
  auto eq = [](const char* t1, const char* c1, const char* t2,
               const char* c2) {
    return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                               ScalarExpr::Column(t2, c2));
  };
  RelExprPtr q_tree = RelExpr::Join(
      JoinKind::kInner, RelExpr::Scan("part"),
      RelExpr::Join(JoinKind::kInner, RelExpr::Scan("orders"),
                    RelExpr::Scan("lineitem"),
                    eq("lineitem", "l_orderkey", "orders", "o_orderkey")),
      eq("part", "p_partkey", "lineitem", "l_partkey"));
  ViewDef query("q", q_tree, tpch::MakeOjView(*db.catalog()).output(),
                *db.catalog());

  // Statement log alongside.
  std::filesystem::path log_path =
      std::filesystem::temp_directory_path() /
      ("ojv_soak_" + std::to_string(::getpid()) + ".log");
  io::StatementLog log(log_path.string());
  ASSERT_TRUE(log.ok());

  Rng rng(5150);
  int64_t statements = 0;
  for (int round = 0; round < 40; ++round) {
    switch (rng.Uniform(0, 5)) {
      case 0: {
        std::vector<Row> rows =
            refresh.NewLineitems(rng.Uniform(5, 120));
        log.LogInsert(*db.catalog()->GetTable("lineitem"), rows);
        ASSERT_TRUE(db.Insert("lineitem", rows).ok());
        break;
      }
      case 1: {
        std::vector<Row> keys =
            refresh.PickLineitemDeleteKeys(rng.Uniform(5, 80));
        log.LogDelete(*db.catalog()->GetTable("lineitem"), keys);
        ASSERT_TRUE(db.Delete("lineitem", keys).ok());
        break;
      }
      case 2: {
        std::vector<Row> rows = refresh.NewParts(rng.Uniform(1, 25));
        log.LogInsert(*db.catalog()->GetTable("part"), rows);
        ASSERT_TRUE(db.Insert("part", rows).ok());
        break;
      }
      case 3: {
        std::vector<Row> orders = refresh.NewOrders(rng.Uniform(1, 15));
        log.LogInsert(*db.catalog()->GetTable("orders"), orders);
        ASSERT_TRUE(db.Insert("orders", orders).ok());
        std::vector<Row> lines = refresh.NewLineitemsFor(orders, 2);
        log.LogInsert(*db.catalog()->GetTable("lineitem"), lines);
        ASSERT_TRUE(db.Insert("lineitem", lines).ok());
        ++statements;
        break;
      }
      case 4: {
        std::vector<Row> rows = refresh.NewCustomers(rng.Uniform(1, 15));
        log.LogInsert(*db.catalog()->GetTable("customer"), rows);
        ASSERT_TRUE(db.Insert("customer", rows).ok());
        break;
      }
      case 5: {
        // UPDATE a few lineitems' quantity.
        const Table* lineitem = db.catalog()->GetTable("lineitem");
        std::vector<Row> keys;
        std::vector<Row> new_rows;
        lineitem->ForEach([&](const Row& row) {
          if (static_cast<int64_t>(keys.size()) >= 3) return;
          keys.push_back(Row{row[0], row[3]});
          Row updated = row;
          updated[4] = Value::Float64(row[4].float64() + 1);
          new_rows.push_back(std::move(updated));
        });
        log.LogUpdate(*lineitem, keys, new_rows);
        ASSERT_TRUE(db.Update("lineitem", keys, new_rows).ok());
        break;
      }
    }
    ++statements;

    if (round % 8 == 7) {
      // Full verification point.
      std::string diff;
      ASSERT_TRUE(ViewMatchesRecompute(*db.catalog(), oj->view_def(),
                                       oj->view(), &diff))
          << "round " << round << " oj: " << diff;
      ViewMaintainer* core = db.GetView("core");
      ASSERT_TRUE(ViewMatchesRecompute(*db.catalog(), core->view_def(),
                                       core->view(), &diff))
          << "round " << round << " core: " << diff;
      ASSERT_TRUE(db.GetAggregateView("seg")->MatchesRecompute(1e-9, &diff))
          << "round " << round << " seg: " << diff;
      std::string violation;
      ASSERT_TRUE(db.catalog()->CheckForeignKeys(&violation)) << violation;

      // Query answering stays exact.
      std::string which;
      std::optional<Relation> answer =
          AnswerFromDatabase(query, &db, &which);
      ASSERT_TRUE(answer.has_value());
      EXPECT_EQ(which, "oj_view");
      Relation direct = RecomputeView(*db.catalog(), query);
      ASSERT_TRUE(SameBag(direct, *answer, &diff))
          << "round " << round << " query: " << diff;
    }
  }
  log.Flush();
  EXPECT_GT(statements, 40);
  std::filesystem::remove(log_path);
}

}  // namespace
}  // namespace ojv
