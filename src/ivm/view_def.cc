#include "ivm/view_def.h"

#include "common/check.h"
#include "exec/evaluator.h"

namespace ojv {
namespace {

void CollectTables(const RelExprPtr& expr, std::set<std::string>* tables) {
  if (expr->kind() == RelKind::kScan) {
    OJV_CHECK(tables->insert(expr->table()).second,
              "view references a table twice (self-joins unsupported)");
    return;
  }
  OJV_CHECK(expr->kind() == RelKind::kSelect || expr->kind() == RelKind::kJoin,
            "view tree may contain only scans, selects and joins");
  for (const RelExprPtr& c : expr->children()) CollectTables(c, tables);
}

void CollectConjuncts(const RelExprPtr& expr,
                      std::vector<ScalarExprPtr>* conjuncts) {
  if (expr->kind() == RelKind::kScan) return;
  if (expr->kind() == RelKind::kSelect || expr->kind() == RelKind::kJoin) {
    for (const ScalarExprPtr& c : SplitConjuncts(expr->predicate())) {
      if (!c->ReferencedTables().empty()) conjuncts->push_back(c);
    }
  }
  for (const RelExprPtr& c : expr->children()) CollectConjuncts(c, conjuncts);
}

// Validates join/select predicate placement and the paper's predicate
// restrictions, recursively. Returns the subtree's table set.
std::set<std::string> ValidateTree(const RelExprPtr& expr) {
  if (expr->kind() == RelKind::kScan) {
    return {expr->table()};
  }
  if (expr->kind() == RelKind::kSelect) {
    std::set<std::string> tables = ValidateTree(expr->input());
    for (const ScalarExprPtr& c : SplitConjuncts(expr->predicate())) {
      std::set<std::string> refs = c->ReferencedTables();
      OJV_CHECK(refs.size() <= 2, "predicates must reference <= 2 tables");
      for (const std::string& t : refs) {
        OJV_CHECK(tables.count(t) > 0,
                  "selection references a table outside its subtree");
        OJV_CHECK(c->IsNullRejectingOn(t),
                  "view predicates must be null-rejecting");
      }
    }
    return tables;
  }
  OJV_CHECK(expr->kind() == RelKind::kJoin, "unexpected node in view tree");
  JoinKind k = expr->join_kind();
  OJV_CHECK(k == JoinKind::kInner || k == JoinKind::kLeftOuter ||
                k == JoinKind::kRightOuter || k == JoinKind::kFullOuter,
            "views may contain only inner and outer joins");
  std::set<std::string> left = ValidateTree(expr->left());
  std::set<std::string> right = ValidateTree(expr->right());
  std::set<std::string> all = left;
  all.insert(right.begin(), right.end());
  bool any_cross = false;
  for (const ScalarExprPtr& c : SplitConjuncts(expr->predicate())) {
    std::set<std::string> refs = c->ReferencedTables();
    OJV_CHECK(refs.size() <= 2, "predicates must reference <= 2 tables");
    for (const std::string& t : refs) {
      OJV_CHECK(all.count(t) > 0,
                "join predicate references a table outside the join");
      OJV_CHECK(c->IsNullRejectingOn(t),
                "view predicates must be null-rejecting");
    }
    bool touches_left = false;
    bool touches_right = false;
    for (const std::string& t : refs) {
      if (left.count(t) > 0) touches_left = true;
      if (right.count(t) > 0) touches_right = true;
    }
    if (touches_left && touches_right) any_cross = true;
  }
  OJV_CHECK(any_cross, "join predicate must connect both inputs");
  return all;
}

RelExprPtr ReplaceOuterJoins(const RelExprPtr& expr) {
  switch (expr->kind()) {
    case RelKind::kScan:
      return expr;
    case RelKind::kSelect:
      return RelExpr::Select(ReplaceOuterJoins(expr->input()),
                             expr->predicate());
    case RelKind::kJoin:
      return RelExpr::Join(JoinKind::kInner, ReplaceOuterJoins(expr->left()),
                           ReplaceOuterJoins(expr->right()),
                           expr->predicate());
    default:
      OJV_CHECK(false, "unexpected node in view tree");
  }
}

}  // namespace

ViewDef::ViewDef(std::string name, RelExprPtr tree,
                 std::vector<ColumnRef> output, const Catalog& catalog)
    : name_(std::move(name)), tree_(std::move(tree)), output_(std::move(output)) {
  OJV_CHECK(tree_ != nullptr, "view requires a tree");
  OJV_CHECK(!output_.empty(), "view requires output columns");
  CollectTables(tree_, &tables_);
  for (const std::string& t : tables_) {
    OJV_CHECK(catalog.HasTable(t), "view references unknown table");
  }
  ValidateTree(tree_);
  CollectConjuncts(tree_, &conjuncts_);

  // Build the tagged output schema and verify key coverage.
  for (size_t i = 0; i < output_.size(); ++i) {
    for (size_t j = i + 1; j < output_.size(); ++j) {
      OJV_CHECK(!(output_[i] == output_[j]), "duplicate output column");
    }
  }
  for (const ColumnRef& ref : output_) {
    OJV_CHECK(tables_.count(ref.table) > 0,
              "output column from unreferenced table");
    const Table* table = catalog.GetTable(ref.table);
    int pos = table->schema().Find(ref.column);
    OJV_CHECK(pos >= 0, "output references unknown column");
    int key_ordinal = -1;
    for (size_t k = 0; k < table->key_positions().size(); ++k) {
      if (table->key_positions()[k] == pos) key_ordinal = static_cast<int>(k);
    }
    output_schema_.AddColumn(BoundColumn{
        ref.table, ref.column, table->schema().column(pos).type, key_ordinal});
  }
  for (const std::string& t : tables_) {
    OJV_CHECK(output_schema_.HasFullKey(t),
              "view output must include every table's unique key");
  }
}

ViewDef ViewDef::CoreView(const Catalog& catalog) const {
  return ViewDef(name_ + "_core", ReplaceOuterJoins(tree_), output_, catalog);
}

}  // namespace ojv
