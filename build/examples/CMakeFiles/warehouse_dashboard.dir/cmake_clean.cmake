file(REMOVE_RECURSE
  "CMakeFiles/warehouse_dashboard.dir/warehouse_dashboard.cpp.o"
  "CMakeFiles/warehouse_dashboard.dir/warehouse_dashboard.cpp.o.d"
  "warehouse_dashboard"
  "warehouse_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
