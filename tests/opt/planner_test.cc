// Delta planner: cost-based reordering on skewed statistics, static
// fallback behavior, determinism, and secondary-chain table ordering.

#include "opt/planner.h"

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "ivm/left_deep.h"
#include "ivm/maintainer.h"
#include "ivm/view_def.h"

namespace ojv {
namespace opt {
namespace {

ScalarExprPtr Eq(const char* t1, const char* c1, const char* t2,
                 const char* c2) {
  return ScalarExpr::Compare(CompareOp::kEq, ScalarExpr::Column(t1, c1),
                             ScalarExpr::Column(t2, c2));
}

/// D joins an expansive table B (fanout ~20) and a selective table S
/// (~2% match), B first in the definition — the skew bench's shape,
/// shrunk for tests.
class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.CreateTable(
        "D",
        Schema({ColumnDef{"d_id", ValueType::kInt64, false},
                ColumnDef{"d_b", ValueType::kInt64, true},
                ColumnDef{"d_s", ValueType::kInt64, true}}),
        {"d_id"});
    catalog_.CreateTable(
        "B",
        Schema({ColumnDef{"b_id", ValueType::kInt64, false},
                ColumnDef{"b_seq", ValueType::kInt64, false}}),
        {"b_id", "b_seq"});
    catalog_.CreateTable(
        "S",
        Schema({ColumnDef{"s_id", ValueType::kInt64, false}}), {"s_id"});
    Table* d = catalog_.GetTable("D");
    for (int64_t i = 0; i < 1000; ++i) {
      d->Insert(Row{Value::Int64(i), Value::Int64(i % 20),
                    Value::Int64(i * 7 % 5000)});
    }
    Table* b = catalog_.GetTable("B");
    for (int64_t g = 0; g < 20; ++g) {
      for (int64_t s = 0; s < 20; ++s) {
        b->Insert(Row{Value::Int64(g), Value::Int64(s)});
      }
    }
    Table* t = catalog_.GetTable("S");
    for (int64_t i = 0; i < 100; ++i) {
      t->Insert(Row{Value::Int64(i * 50)});
    }
    stats_ = std::make_unique<StatsCatalog>(&catalog_);
  }

  RelExprPtr StaticDelta() {
    // The ToLeftDeep shape of ΔD ⋈ B ⋈ S with B first.
    RelExprPtr db =
        RelExpr::Join(JoinKind::kInner, RelExpr::DeltaScan("D"),
                      RelExpr::Scan("B"), Eq("D", "d_b", "B", "b_id"));
    return RelExpr::Join(JoinKind::kInner, db, RelExpr::Scan("S"),
                         Eq("D", "d_s", "S", "s_id"));
  }

  Catalog catalog_;
  std::unique_ptr<StatsCatalog> stats_;
};

TEST_F(PlannerTest, ReordersSelectiveJoinFirst) {
  DeltaPlanner planner(stats_.get(), PlannerOptions());
  PlannedDelta plan = planner.Plan(StaticDelta(), "D", 100);
  EXPECT_TRUE(plan.reordered);
  EXPECT_EQ(plan.order, "S,B");
  EXPECT_TRUE(IsLeftDeep(plan.expr));
  ASSERT_EQ(plan.steps.size(), 2u);
  EXPECT_EQ(plan.steps[0].right_table, "S");
  EXPECT_EQ(plan.steps[1].right_table, "B");
  // Per-node estimates annotate every node of the rebuilt tree.
  EXPECT_FALSE(plan.node_est.empty());
  EXPECT_GT(plan.node_est.at(plan.expr.get()), 0.0);
}

TEST_F(PlannerTest, PlanningIsDeterministic) {
  DeltaPlanner planner(stats_.get(), PlannerOptions());
  PlannedDelta a = planner.Plan(StaticDelta(), "D", 100);
  PlannedDelta b = planner.Plan(StaticDelta(), "D", 100);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.expr->ToString(), b.expr->ToString());
}

TEST_F(PlannerTest, KeepsStaticOrderWhenAlreadyOptimal) {
  // Same tree with S first: the planner agrees and must return the
  // original expression pointer untouched (reordered = false).
  RelExprPtr ds =
      RelExpr::Join(JoinKind::kInner, RelExpr::DeltaScan("D"),
                    RelExpr::Scan("S"), Eq("D", "d_s", "S", "s_id"));
  RelExprPtr expr = RelExpr::Join(JoinKind::kInner, ds, RelExpr::Scan("B"),
                                  Eq("D", "d_b", "B", "b_id"));
  DeltaPlanner planner(stats_.get(), PlannerOptions());
  PlannedDelta plan = planner.Plan(expr, "D", 100);
  EXPECT_FALSE(plan.reordered);
  EXPECT_EQ(plan.expr.get(), expr.get());
  EXPECT_EQ(plan.order, "S,B");
}

TEST_F(PlannerTest, FanoutEmaOverridesStatistics) {
  // Feedback says B is actually selective (fanout 0.01) and S expands
  // (fanout 30): the planner must flip its order.
  DeltaPlanner planner(stats_.get(), PlannerOptions());
  std::unordered_map<std::string, double> ema = {{"B", 0.01}, {"S", 30.0}};
  PlannedDelta plan = planner.Plan(StaticDelta(), "D", 100, &ema);
  EXPECT_EQ(plan.order, "B,S");
  EXPECT_FALSE(plan.reordered);  // that is the static order already
}

TEST_F(PlannerTest, PredicateDependencyConstrainsOrder) {
  // Chain D–B–S where the S predicate references B, not D: S can never
  // go below B, whatever the statistics say.
  RelExprPtr db =
      RelExpr::Join(JoinKind::kInner, RelExpr::DeltaScan("D"),
                    RelExpr::Scan("B"), Eq("D", "d_b", "B", "b_id"));
  RelExprPtr expr = RelExpr::Join(JoinKind::kInner, db, RelExpr::Scan("S"),
                                  Eq("B", "b_seq", "S", "s_id"));
  DeltaPlanner planner(stats_.get(), PlannerOptions());
  PlannedDelta plan = planner.Plan(expr, "D", 100);
  EXPECT_EQ(plan.order, "B,S");
  EXPECT_FALSE(plan.reordered);
}

TEST_F(PlannerTest, StaticModeNeverPlans) {
  // The maintainer in kStatic mode constructs no planner at all and its
  // plan cache stays empty.
  ViewDef view(
      "v",
      RelExpr::Join(
          JoinKind::kInner,
          RelExpr::Join(JoinKind::kInner, RelExpr::Scan("D"),
                        RelExpr::Scan("B"), Eq("D", "d_b", "B", "b_id")),
          RelExpr::Scan("S"), Eq("D", "d_s", "S", "s_id")),
      {{"D", "d_id"},
       {"D", "d_b"},
       {"D", "d_s"},
       {"B", "b_id"},
       {"B", "b_seq"},
       {"S", "s_id"}},
      catalog_);
  MaintenanceOptions options;
  options.planner.mode = PlannerOptions::Mode::kStatic;
  ViewMaintainer maintainer(&catalog_, view, options);
  maintainer.InitializeView();
  std::vector<Row> rows = {Row{Value::Int64(5000), Value::Int64(3),
                               Value::Int64(50)}};
  std::vector<Row> inserted =
      ApplyBaseInsert(catalog_.GetTable("D"), rows);
  maintainer.OnInsert("D", inserted);
  EXPECT_EQ(maintainer.stats_catalog(), nullptr);
  EXPECT_EQ(maintainer.plan_cache().size(), 0u);
  EXPECT_EQ(maintainer.plan_entry("D", true, PlanPolicy::kDefault), nullptr);
}

TEST_F(PlannerTest, OrderTablesByRowsAscendingWithNameTieBreak) {
  DeltaPlanner planner(stats_.get(), PlannerOptions());
  std::vector<std::string> order =
      planner.OrderTablesByRows({"D", "B", "S"});
  // |S|=100 < |B|=400 < |D|=1000.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "S");
  EXPECT_EQ(order[1], "B");
  EXPECT_EQ(order[2], "D");
}

}  // namespace
}  // namespace opt
}  // namespace ojv
