#include "ivm/explain.h"

#include <map>
#include <sstream>

#include "exec/evaluator.h"
#include "opt/fingerprint.h"

namespace ojv {
namespace {

void AppendTermLine(std::ostringstream& out, const Term& term) {
  out << "  " << term.Label();
  if (!term.predicates.empty()) {
    out << "  where ";
    for (size_t i = 0; i < term.predicates.size(); ++i) {
      if (i > 0) out << " AND ";
      out << term.predicates[i]->ToString();
    }
  }
  out << "\n";
}

std::string NodeLabel(const RelExpr& node) {
  switch (node.kind()) {
    case RelKind::kScan:
      return "scan(" + node.table() + ")";
    case RelKind::kDeltaScan:
      return "delta_scan(" + node.table() + ")";
    case RelKind::kSelect:
      return "select " + node.predicate()->ToString();
    case RelKind::kProject:
      return "project";
    case RelKind::kJoin:
      return std::string("join[") + JoinKindName(node.join_kind()) + "]";
    case RelKind::kDedup:
      return "dedup";
    case RelKind::kSubsumeRemove:
      return "subsume-remove";
    case RelKind::kOuterUnion:
      return "outer-union";
    case RelKind::kMinUnion:
      return "min-union";
    case RelKind::kNullIf:
      return "null-if";
  }
  return "?";
}

/// Zips the post-order exec.* event sequence onto the plan tree: the
/// evaluator records each node's span after its work (children first),
/// so a post-order walk consuming events in order pairs them up. A name
/// mismatch stops consuming for that node, leaving it unannotated.
void ZipPlan(const RelExprPtr& node,
             const std::vector<const obs::TraceEvent*>& events, size_t* next,
             std::map<const RelExpr*, const obs::TraceEvent*>* stats) {
  for (const RelExprPtr& child : node->children()) {
    ZipPlan(child, events, next, stats);
  }
  if (*next < events.size() &&
      events[*next]->name == ExecSpanNameFor(node->kind())) {
    (*stats)[node.get()] = events[*next];
    ++*next;
  }
}

/// Renders a planner cardinality estimate compactly (they are floats but
/// read as row counts).
std::string FormatEst(double est) {
  if (est < 0) est = 0;
  std::ostringstream s;
  if (est >= 10 || est == static_cast<double>(static_cast<int64_t>(est))) {
    s << static_cast<int64_t>(est + 0.5);
  } else {
    s.precision(2);
    s << est;
  }
  return s.str();
}

void RenderAnnotatedPlan(
    const RelExprPtr& node,
    const std::map<const RelExpr*, const obs::TraceEvent*>& stats,
    const std::unordered_map<const RelExpr*, double>* est, int depth,
    std::ostringstream& out) {
  out << std::string(4 + 2 * static_cast<size_t>(depth), ' ')
      << NodeLabel(*node);
  if (est != nullptr) {
    auto eit = est->find(node.get());
    if (eit != est->end()) out << "  (est=" << FormatEst(eit->second) << ")";
  }
  auto it = stats.find(node.get());
  if (it != stats.end()) {
    const obs::TraceEvent& ev = *it->second;
    out << "  [rows=" << ev.ArgOr("rows_out", 0) << " t=" << ev.dur_micros
        << "us";
    for (const auto& [key, value] : ev.args) {
      if (key == "rows_out") continue;
      out << " " << key << "=" << value;
    }
    for (const auto& [key, value] : ev.str_args) {
      if (key == "table") continue;  // already in the label
      out << " " << key << "=" << value;
    }
    out << "]";
  }
  out << "\n";
  for (const RelExprPtr& child : node->children()) {
    RenderAnnotatedPlan(child, stats, est, depth + 1, out);
  }
}

void AppendPlanEntryLine(std::ostringstream& out, const char* op,
                         const opt::PlanCacheEntry* entry) {
  if (entry == nullptr) return;
  out << "  plan[" << op << "]: order=["
      << (entry->plan.order.empty() ? "-" : entry->plan.order)
      << "] source=" << entry->source << " hits=" << entry->hits
      << " replans=" << entry->replans
      << (entry->plan.reordered ? " (reordered)" : " (static order)") << "\n";
  if (entry->plan.expr != nullptr && !entry->plan.node_est.empty()) {
    RenderAnnotatedPlan(entry->plan.expr, {}, &entry->plan.node_est, 0, out);
  }
}

}  // namespace

std::string ExplainNormalForm(const ViewMaintainer& maintainer) {
  std::ostringstream out;
  const std::vector<Term>& terms = maintainer.terms();
  out << "view " << maintainer.view_def().name() << " = "
      << maintainer.view_def().tree()->ToString() << "\n";
  out << "normal form (" << terms.size() << " terms):\n";
  for (const Term& term : terms) AppendTermLine(out, term);
  out << "subsumption graph:\n";
  std::string edges = maintainer.subsumption_graph().ToString(terms);
  std::istringstream lines(edges);
  std::string line;
  while (std::getline(lines, line)) out << "  " << line << "\n";
  return out.str();
}

std::string ExplainMaintenance(const ViewMaintainer& maintainer) {
  std::ostringstream out;
  out << ExplainNormalForm(maintainer);
  const std::vector<Term>& terms = maintainer.terms();

  for (const std::string& table : maintainer.view_def().tables()) {
    out << "\non update of " << table << ":\n";
    if (maintainer.DeltaIsEmpty(table)) {
      out << "  no-op: every directly affected term is protected by a\n"
          << "  foreign key (Theorem 3); the view cannot change.\n";
      continue;
    }
    const MaintenanceGraph& graph = maintainer.maintenance_graph(table);
    out << "  directly affected:";
    for (int i : graph.DirectTerms()) {
      out << " " << terms[static_cast<size_t>(i)].Label();
    }
    out << "\n";
    const RelExprPtr& delta = maintainer.delta_expr(table);
    out << "  primary delta  = " << delta->ToString() << "\n";
    if (opt::DeltaFingerprint fp = opt::FingerprintDelta(delta, table);
        fp.ok) {
      // The clustering signature the multiview catalog groups by: two
      // views sharing a fingerprint prefix can share a delta plan.
      out << "  fingerprint: " << fp.Signature(fp.steps.size()) << "\n";
    }
    if (maintainer.planner_options().mode ==
        opt::PlannerOptions::Mode::kCostBased) {
      out << "  planner: cost-based\n";
      AppendPlanEntryLine(
          out, "insert",
          maintainer.plan_entry(table, /*is_insert=*/true,
                                PlanPolicy::kDefault));
      AppendPlanEntryLine(
          out, "delete",
          maintainer.plan_entry(table, /*is_insert=*/false,
                                PlanPolicy::kDefault));
    }
    if (delta->kind() == RelKind::kDeltaScan ||
        (delta->kind() == RelKind::kSelect &&
         delta->input()->kind() == RelKind::kDeltaScan)) {
      out << "  fast path: the delta expression is the (filtered) delta\n"
          << "  itself; no joins are needed.\n";
    }
    if (graph.IndirectTerms().empty()) {
      out << "  secondary delta: none (no indirectly affected terms)\n";
    } else {
      out << "  secondary delta (orphan clean-up):\n";
      for (int i : graph.IndirectTerms()) {
        out << "    " << terms[static_cast<size_t>(i)].Label()
            << " orphans, via directly affected parent(s)";
        for (int parent : graph.DirectParents(i)) {
          out << " " << terms[static_cast<size_t>(parent)].Label();
        }
        out << "\n";
      }
    }
  }
  return out.str();
}

std::string ExplainMaintenance(const ViewMaintainer& maintainer,
                               const obs::TraceContext& trace) {
  std::ostringstream out;
  out << ExplainMaintenance(maintainer);

  std::vector<obs::TraceEvent> events = trace.Snapshot();
  std::vector<std::vector<size_t>> children(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    if (events[i].parent >= 0) {
      children[static_cast<size_t>(events[i].parent)].push_back(i);
    }
  }

  const std::string& view_name = maintainer.view_def().name();
  int invocation = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const obs::TraceEvent& root = events[i];
    if (root.name != "ivm.maintain") continue;
    const std::string* view = root.StrArg("view");
    if (view == nullptr || *view != view_name) continue;
    const std::string* table = root.StrArg("table");
    const std::string* op = root.StrArg("op");
    const std::string* policy = root.StrArg("policy");
    ++invocation;
    if (invocation == 1) out << "\nmeasured maintenance (from trace):\n";
    out << "\n[" << invocation << "] " << (op != nullptr ? *op : "?") << " of "
        << root.ArgOr("delta_rows", 0) << " row(s) into "
        << (table != nullptr ? *table : "?") << "  (total " << root.dur_micros
        << "us, rows_out=" << root.ArgOr("rows_out", 0) << ")\n";
    if (const std::string* skipped = root.StrArg("skipped")) {
      out << "  skipped: " << *skipped << "\n";
    }
    if (const std::string* source = root.StrArg("plan_source")) {
      const std::string* order = root.StrArg("join_order");
      out << "  plan: order=["
          << (order != nullptr && !order->empty() ? *order : "-")
          << "] source=" << *source
          << (root.ArgOr("reordered", 0) != 0 ? " (reordered)"
                                              : " (static order)")
          << "\n";
    }

    for (size_t c : children[i]) {
      const obs::TraceEvent& stage = events[c];
      if (stage.name == "ivm.primary_delta") {
        out << "  primary delta: " << stage.dur_micros
            << "us, rows_in=" << stage.ArgOr("rows_in", 0)
            << ", rows_out=" << stage.ArgOr("rows_out", 0) << "\n";
        std::vector<const obs::TraceEvent*> execs;
        for (size_t e : children[c]) {
          if (events[e].category == "exec") execs.push_back(&events[e]);
        }
        if (!execs.empty() && table != nullptr &&
            !maintainer.DeltaIsEmpty(*table)) {
          // Prefer the planner-chosen expression this invocation actually
          // executed (cached per table/op/policy); fall back to the
          // static delta tree. A plan that was since replaced zips with
          // mismatches, which the counter below surfaces.
          const PlanPolicy pp = policy != nullptr && *policy == "cf"
                                    ? PlanPolicy::kConstraintFree
                                    : PlanPolicy::kDefault;
          const opt::PlanCacheEntry* entry =
              op != nullptr
                  ? maintainer.plan_entry(*table, *op == "insert", pp)
                  : nullptr;
          const RelExprPtr& plan = entry != nullptr && entry->plan.expr != nullptr
                                       ? entry->plan.expr
                                       : maintainer.delta_expr(*table);
          size_t next = 0;
          std::map<const RelExpr*, const obs::TraceEvent*> stats;
          ZipPlan(plan, execs, &next, &stats);
          RenderAnnotatedPlan(
              plan, stats, entry != nullptr ? &entry->plan.node_est : nullptr,
              0, out);
          if (next != execs.size()) {
            out << "    (" << execs.size() - next
                << " exec span(s) not matched to this plan — a different\n"
                   "    plan policy or a batched rewrite was in effect)\n";
          }
        }
      } else if (stage.name == "ivm.apply") {
        out << "  apply: " << stage.dur_micros
            << "us, rows=" << stage.ArgOr("rows", 0) << "\n";
      } else if (stage.name == "ivm.secondary_delta") {
        out << "  secondary delta: " << stage.dur_micros
            << "us, rows=" << stage.ArgOr("rows", 0) << "\n";
      } else if (stage.name == "ivm.secondary_delta.skipped") {
        const std::string* reason = stage.StrArg("reason");
        out << "  secondary delta: skipped ("
            << (reason != nullptr ? *reason : "?") << ")\n";
      } else if (stage.name == "ivm.secondary.strategy") {
        const std::string* requested = stage.StrArg("requested");
        const std::string* resolved = stage.StrArg("resolved");
        out << "  secondary strategy: "
            << (resolved != nullptr ? *resolved : "?") << " (requested "
            << (requested != nullptr ? *requested : "?") << ")\n";
      }
    }
  }
  if (invocation == 0) {
    out << "\nmeasured maintenance: no ivm.maintain spans for this view in"
           " the trace\n";
  }
  return out.str();
}

}  // namespace ojv
