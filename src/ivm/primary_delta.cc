#include "ivm/primary_delta.h"

#include "common/check.h"

namespace ojv {
namespace {

bool SubtreeContains(const RelExprPtr& expr, const std::string& table) {
  return expr->ReferencedTables().count(table) > 0;
}

// Applies steps 1+2+3 in one recursive pass. `make_delta` selects between
// DeltaScan (ΔV^D) and Scan (V^D) at the leaf.
RelExprPtr Transform(const RelExprPtr& expr, const std::string& table,
                     bool make_delta) {
  switch (expr->kind()) {
    case RelKind::kScan:
      OJV_CHECK(expr->table() == table, "transform reached the wrong leaf");
      return make_delta ? RelExpr::DeltaScan(table) : expr;
    case RelKind::kSelect:
      // Selections on the path distribute over the delta (σp(e ± Δe) =
      // σp e ± σp Δe) and are kept in place.
      return RelExpr::Select(Transform(expr->input(), table, make_delta),
                             expr->predicate());
    case RelKind::kJoin: {
      const bool on_left = SubtreeContains(expr->left(), table);
      const bool on_right = SubtreeContains(expr->right(), table);
      OJV_CHECK(on_left != on_right, "updated table must be on exactly one side");
      JoinKind kind = expr->join_kind();
      if (on_left) {
        // fo -> lo, ro -> inner (unmatched right tuples are null-extended
        // on T and can never contribute to V^D).
        JoinKind converted = kind;
        if (kind == JoinKind::kFullOuter) converted = JoinKind::kLeftOuter;
        if (kind == JoinKind::kRightOuter) converted = JoinKind::kInner;
        return RelExpr::Join(converted,
                             Transform(expr->left(), table, make_delta),
                             expr->right(), expr->predicate());
      }
      // Commute so the T side becomes the left input (lo <-> ro), then
      // apply the same weakening: original lo (T right) -> ro -> inner;
      // original ro (T right) -> lo -> lo; fo -> fo -> lo.
      JoinKind converted = JoinKind::kInner;
      switch (kind) {
        case JoinKind::kInner:
        case JoinKind::kLeftOuter:
          converted = JoinKind::kInner;
          break;
        case JoinKind::kRightOuter:
        case JoinKind::kFullOuter:
          converted = JoinKind::kLeftOuter;
          break;
        default:
          OJV_CHECK(false, "unexpected join kind in view tree");
      }
      return RelExpr::Join(converted,
                           Transform(expr->right(), table, make_delta),
                           expr->left(), expr->predicate());
    }
    default:
      OJV_CHECK(false, "unexpected node in view tree");
  }
}

}  // namespace

RelExprPtr BuildPrimaryDeltaExpr(const ViewDef& view,
                                 const std::string& updated_table) {
  OJV_CHECK(view.tables().count(updated_table) > 0,
            "view does not reference the updated table");
  return Transform(view.tree(), updated_table, /*make_delta=*/true);
}

RelExprPtr BuildDirectPartExpr(const ViewDef& view,
                               const std::string& updated_table) {
  OJV_CHECK(view.tables().count(updated_table) > 0,
            "view does not reference the updated table");
  return Transform(view.tree(), updated_table, /*make_delta=*/false);
}

}  // namespace ojv
