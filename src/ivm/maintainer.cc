#include "ivm/maintainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/check.h"
#include "ivm/left_deep.h"
#include "ivm/primary_delta.h"
#include "ivm/simplify_tree.h"
#include "obs/metrics.h"
#include "opt/fingerprint.h"

namespace ojv {
namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Only trees with at least one join are worth planning; the FK fast
// path (ΔV^D ≡ σ(ΔT)) has no order to choose.
bool ContainsJoin(const RelExprPtr& expr) {
  if (expr == nullptr) return false;
  if (expr->kind() == RelKind::kJoin) return true;
  for (const RelExprPtr& child : expr->children()) {
    if (ContainsJoin(child)) return true;
  }
  return false;
}

// Every column the view's predicates reference, grouped by table — the
// statistics the estimator can ever be asked for.
void CollectPredicateColumns(
    const RelExprPtr& expr,
    std::unordered_map<std::string, std::vector<std::string>>* out) {
  if (expr == nullptr) return;
  if (expr->predicate() != nullptr) {
    std::vector<ColumnRef> cols;
    expr->predicate()->CollectColumns(&cols);
    for (const ColumnRef& col : cols) (*out)[col.table].push_back(col.column);
  }
  for (const RelExprPtr& child : expr->children()) {
    CollectPredicateColumns(child, out);
  }
}

}  // namespace

const ViewMaintainer::TablePlan& ViewMaintainer::PlanSet::For(
    const std::string& table) const {
  auto it = plans.find(table);
  OJV_CHECK(it != plans.end(), "table not referenced by view");
  return it->second;
}

ViewMaintainer::ViewMaintainer(const Catalog* catalog, ViewDef view,
                               MaintenanceOptions options)
    : catalog_(catalog), view_def_(std::move(view)), options_(options) {
  if (options_.exec.num_threads > 1) {
    pool_ = ThreadPool::Shared(options_.exec.num_threads);
  }
  if (options_.planner.mode == opt::PlannerOptions::Mode::kCostBased) {
    stats_catalog_ = std::make_unique<opt::StatsCatalog>(catalog_);
    planner_ = std::make_unique<opt::DeltaPlanner>(stats_catalog_.get(),
                                                   options_.planner);
    std::unordered_map<std::string, std::vector<std::string>> pred_columns;
    CollectPredicateColumns(view_def_.tree(), &pred_columns);
    for (const std::string& table : view_def_.tables()) {
      stats_catalog_->RestrictColumns(table, pred_columns[table]);
    }
  }
  BuildPlanSet(options_.exploit_foreign_keys, &main_);
  if (options_.exploit_foreign_keys) {
    // OnUpdate must run without constraint-based reasoning (§6 caveat 1).
    BuildPlanSet(/*use_fks=*/false, &update_);
  }
  view_store_ = std::make_unique<MaterializedView>(view_def_.output_schema());
  if (options_.skew == SkewMode::kHeavyLight) {
    heavy_ = std::make_unique<HeavyLightController>(catalog_, view_def_,
                                                    options_.heavy);
    heavy_->set_drain_hook([this] { DrainHeavyState(); });
  }
}

void ViewMaintainer::BuildPlanSet(bool use_fks, PlanSet* out) {
  obs::Span jdnf_span(options_.trace, "ivm.plan.jdnf", "ivm");
  JdnfOptions jdnf_options;
  jdnf_options.exploit_foreign_keys = use_fks;
  out->terms = ComputeJdnf(view_def_.tree(), *catalog_, jdnf_options);
  out->sgraph = std::make_unique<SubsumptionGraph>(out->terms);
  jdnf_span.AddArg("view", view_def_.name());
  jdnf_span.AddArg("terms", static_cast<int64_t>(out->terms.size()));
  jdnf_span.AddArg("use_fks", static_cast<int64_t>(use_fks));
  jdnf_span.Finish();

  for (const std::string& table : view_def_.tables()) {
    obs::Span table_span(options_.trace, "ivm.plan.table", "ivm");
    table_span.AddArg("view", view_def_.name());
    table_span.AddArg("table", table);
    TablePlan plan;
    MaintenanceGraphOptions mg_options;
    mg_options.exploit_foreign_keys = use_fks;
    plan.graph = std::make_unique<MaintenanceGraph>(
        out->terms, *out->sgraph, table, *catalog_, mg_options);
    table_span.AddArg(
        "direct_terms", static_cast<int64_t>(plan.graph->DirectTerms().size()));
    table_span.AddArg("indirect_terms",
                      static_cast<int64_t>(plan.graph->IndirectTerms().size()));
    table_span.AddArg("theorem3_eliminated",
                      static_cast<int64_t>(plan.graph->fk_eliminated()));
    if (plan.graph->DirectTerms().empty()) {
      // Theorem 3 eliminated every directly affected term: updates of
      // this table cannot change the view at all.
      plan.delta_empty = true;
    } else {
      RelExprPtr expr = BuildPrimaryDeltaExpr(view_def_, table);
      if (use_fks) {
        SimplifyResult simplified = SimplifyDeltaTree(
            expr, FkChildrenJoinedOnKey(view_def_, table, *catalog_));
        table_span.AddArg("joins_eliminated",
                          static_cast<int64_t>(simplified.joins_eliminated));
        if constexpr (obs::kEnabled) {
          static obs::Counter& pruned = obs::Registry::Global().GetCounter(
              "ojv.ivm.simplify_joins_eliminated");
          pruned.Add(simplified.joins_eliminated);
        }
        if (simplified.empty) {
          plan.delta_empty = true;
          expr = nullptr;
        } else {
          expr = simplified.expr;
        }
      }
      if (expr != nullptr && options_.use_left_deep) {
        expr = ToLeftDeep(expr);
      }
      plan.delta_expr = expr;
    }
    table_span.AddArg("delta_empty", static_cast<int64_t>(plan.delta_empty));
    if (!plan.delta_empty) {
      plan.secondary = std::make_unique<SecondaryDeltaEngine>(
          view_def_, *catalog_, out->terms, *plan.graph, table);
      plan.secondary->set_table_cache(&table_cache_);
      plan.secondary->set_exec(options_.exec, pool_.get());
      plan.secondary->set_trace(options_.trace);
      if (planner_ != nullptr) plan.secondary->set_planner(planner_.get());
    }
    out->plans.emplace(table, std::move(plan));
  }
}

void ViewMaintainer::InitializeView() {
  obs::Span span(options_.trace, "ivm.init_view", "ivm");
  span.AddArg("view", view_def_.name());
  view_store_ = std::make_unique<MaterializedView>(view_def_.output_schema());
  Evaluator evaluator(catalog_);
  evaluator.set_table_cache(&table_cache_);
  evaluator.set_exec(options_.exec, pool_.get());
  evaluator.set_join_algorithm(options_.join_algorithm);
  evaluator.set_trace(options_.trace);
  Relation contents = evaluator.EvalToRelation(view_def_.WithProjection());
  for (const Row& row : contents.rows()) {
    view_store_->Insert(row);
  }
  span.AddArg("rows", contents.size());
  if (stats_catalog_ != nullptr) {
    // Prime statistics while initialization already owns a full scan of
    // every base table; the first maintenance call should plan, not
    // ANALYZE.
    obs::Span stats_span(options_.trace, "ivm.init_stats", "ivm");
    for (const std::string& table : view_def_.tables()) {
      stats_catalog_->Get(table);
    }
    stats_span.Finish();
  }
}

void ViewMaintainer::RestoreView(const std::vector<Row>& rows) {
  view_store_ = std::make_unique<MaterializedView>(view_def_.output_schema());
  for (const Row& row : rows) {
    view_store_->Insert(row);
  }
}

const MaintenanceGraph& ViewMaintainer::maintenance_graph(
    const std::string& table) const {
  return *main_.For(table).graph;
}

const RelExprPtr& ViewMaintainer::delta_expr(const std::string& table) const {
  return main_.For(table).delta_expr;
}

const RelExprPtr& ViewMaintainer::delta_expr(const std::string& table,
                                             PlanPolicy policy) const {
  return SetFor(policy).For(table).delta_expr;
}

Relation ViewMaintainer::ComputePrimaryDelta(const TablePlan& plan,
                                             const Relation& delta_t) {
  return EvalPrimaryDelta(plan.delta_expr, delta_t, options_.trace);
}

Relation ViewMaintainer::EvalPrimaryDelta(const RelExprPtr& expr,
                                          const Relation& delta_t,
                                          obs::TraceContext* eval_trace,
                                          const Relation* shared_prefix) {
  Evaluator evaluator(catalog_);
  evaluator.set_table_cache(&table_cache_);
  evaluator.set_exec(options_.exec, pool_.get());
  evaluator.set_join_algorithm(options_.join_algorithm);
  evaluator.set_trace(eval_trace);
  // The delta leaf is named after the updated table.
  for (const std::string& table : view_def_.tables()) {
    if (delta_t.schema().HasTable(table)) {
      evaluator.BindDelta(table, &delta_t);
    }
  }
  // Shared-plan suffixes read the group's pre-evaluated prefix through
  // a synthetic delta leaf.
  if (shared_prefix != nullptr) {
    evaluator.BindDelta(opt::kSharedPrefixLeaf, shared_prefix);
  }
  std::shared_ptr<const Relation> raw_ptr = evaluator.Eval(expr);
  const Relation& raw = *raw_ptr;

  // Align to the view's output schema; tables eliminated by SimplifyTree
  // are null-extended.
  const BoundSchema& out_schema = view_def_.output_schema();
  Relation aligned(out_schema);
  aligned.mutable_rows()->reserve(static_cast<size_t>(raw.size()));
  std::vector<int> source_positions;
  source_positions.reserve(static_cast<size_t>(out_schema.num_columns()));
  for (const BoundColumn& col : out_schema.columns()) {
    source_positions.push_back(raw.schema().Find(col.table, col.column));
  }
  for (const Row& row : raw.rows()) {
    Row out(static_cast<size_t>(out_schema.num_columns()), Value::Null());
    for (size_t i = 0; i < source_positions.size(); ++i) {
      if (source_positions[i] >= 0) {
        out[i] = row[static_cast<size_t>(source_positions[i])];
      }
    }
    aligned.Add(std::move(out));
  }
  return aligned;
}

bool ViewMaintainer::DeltaIsEmpty(const std::string& table) const {
  return main_.For(table).delta_empty;
}

Relation ViewMaintainer::ComputePrimaryDeltaRelation(const std::string& table,
                                                     const Relation& delta_t) {
  const TablePlan& plan = main_.For(table);
  OJV_CHECK(!plan.delta_empty, "delta is provably empty");
  return ComputePrimaryDelta(plan, delta_t);
}

Relation ViewMaintainer::ComputeSharedPrimaryDeltaRelation(
    const std::string& table, const Relation& delta_t,
    const RelExprPtr& shared_suffix, const Relation& shared_prefix) {
  OJV_CHECK(shared_suffix != nullptr, "shared suffix required");
  (void)table;
  return EvalPrimaryDelta(shared_suffix, delta_t, options_.trace,
                          &shared_prefix);
}

SecondaryDeltaEngine* ViewMaintainer::secondary_engine(
    const std::string& table) {
  auto it = main_.plans.find(table);
  OJV_CHECK(it != main_.plans.end(), "table not referenced by view");
  return it->second.secondary.get();
}

void ViewMaintainer::set_exec(const ExecConfig& exec) {
  options_.exec = exec;
  pool_ = exec.num_threads > 1 ? ThreadPool::Shared(exec.num_threads) : nullptr;
  for (PlanSet* set : {&main_, &update_}) {
    for (auto& [table, plan] : set->plans) {
      if (plan.secondary != nullptr) {
        plan.secondary->set_exec(options_.exec, pool_.get());
      }
    }
  }
}

void ViewMaintainer::set_trace(obs::TraceContext* trace) {
  options_.trace = trace;
  for (PlanSet* set : {&main_, &update_}) {
    for (auto& [table, plan] : set->plans) {
      if (plan.secondary != nullptr) plan.secondary->set_trace(trace);
    }
  }
}

const opt::PlanCacheEntry* ViewMaintainer::plan_entry(const std::string& table,
                                                      bool is_insert,
                                                      PlanPolicy policy) const {
  // Mirror SetFor: without FK exploitation there is no separate
  // constraint-free plan set, so both policies share the main key.
  const bool cf = policy == PlanPolicy::kConstraintFree &&
                  options_.exploit_foreign_keys;
  return plan_cache_.Find(opt::PlanCache::Key(table, is_insert, cf));
}

void ViewMaintainer::InvalidatePlans() {
  plan_cache_.Clear();
  if (stats_catalog_ != nullptr) stats_catalog_->InvalidateAll();
}

MaintenanceStats& MaintenanceStats::Merge(const MaintenanceStats& other) {
  delta_rows += other.delta_rows;
  primary_rows += other.primary_rows;
  secondary_rows += other.secondary_rows;
  direct_terms = other.direct_terms;
  indirect_terms = other.indirect_terms;
  fk_fast_path = fk_fast_path && other.fk_fast_path;
  primary_micros += other.primary_micros;
  apply_micros += other.apply_micros;
  secondary_micros += other.secondary_micros;
  total_micros += other.total_micros;
  return *this;
}

void ViewMaintainer::CheckHeavyConflict(const std::string& table,
                                        bool can_divert) const {
  if (heavy_ == nullptr || draining_heavy_) return;
  OJV_CHECK(!heavy_->NeedsDrainBefore(table, can_divert),
            "pending heavy-key state conflicts with this operation; call "
            "PrepareHeavyForOp before applying the base change");
}

void ViewMaintainer::PrepareHeavyForOp(const std::string& table,
                                       PlanPolicy policy, bool is_update) {
  if (heavy_ == nullptr || draining_heavy_) return;
  if (heavy_->NeedsDrainBefore(table, CanDivert(table, policy, is_update))) {
    DrainHeavyState();
  }
}

MaintenanceStats ViewMaintainer::DrainHeavyState() {
  MaintenanceStats stats;
  if (heavy_ == nullptr || draining_heavy_ || !heavy_->HasPending()) {
    return stats;
  }
  draining_heavy_ = true;
  HeavyState::DrainBatch batch = heavy_->Take();
  obs::Span span(options_.trace, "heavy_state.drain", "ivm");
  span.AddArg("view", view_def_.name());
  span.AddArg("table", batch.table);
  span.AddArg("raw_entries", batch.raw_entries);
  span.AddArg("net_deletes", static_cast<int64_t>(batch.deletes.size()));
  span.AddArg("net_inserts", static_cast<int64_t>(batch.inserts.size()));
  span.AddArg("update_pairs", batch.update_pairs);
  auto start = std::chrono::steady_clock::now();
  // Net delete + reinsert pairs existed mid-batch in states where a
  // foreign key need not have held (§6 caveat 1 applies to the replay
  // exactly as it does to an UPDATE statement); a pair-free batch is
  // plain deletes/inserts and keeps the FK-optimized plans.
  const PlanPolicy policy = batch.update_pairs > 0
                                ? PlanPolicy::kConstraintFree
                                : PlanPolicy::kDefault;
  if (!batch.deletes.empty()) {
    stats.Merge(OnDelete(batch.table, batch.deletes, policy));
  }
  if (!batch.inserts.empty()) {
    stats.Merge(OnInsert(batch.table, batch.inserts, policy));
  }
  if constexpr (obs::kEnabled) {
    obs::Registry::Global()
        .GetCounter("ojv.ivm.heavy.drained_rows")
        .Add(static_cast<int64_t>(batch.deletes.size() +
                                  batch.inserts.size()));
  }
  span.FinishWithDuration(MicrosSince(start));
  draining_heavy_ = false;
  return stats;
}

MaintenanceStats ViewMaintainer::OnInsert(const std::string& table,
                                          const std::vector<Row>& rows,
                                          PlanPolicy policy) {
  if (stats_catalog_ != nullptr) stats_catalog_->OnInsert(table, rows);
  if (heavy_ != nullptr) heavy_->OnInsert(table, rows);
  const bool can_divert =
      CanDivert(table, policy, /*is_update=*/false) && !draining_heavy_;
  CheckHeavyConflict(table, can_divert);
  if (can_divert) {
    std::vector<Row> light =
        heavy_->SplitBatch(table, rows, /*is_insert=*/true);
    MaintenanceStats stats = Maintain(SetFor(policy).For(table), table, light,
                                      /*is_insert=*/true, policy);
    if (stats_hook_) stats_hook_(table, stats);
    return stats;
  }
  MaintenanceStats stats = Maintain(SetFor(policy).For(table), table, rows,
                                    /*is_insert=*/true, policy);
  if (stats_hook_) stats_hook_(table, stats);
  return stats;
}

MaintenanceStats ViewMaintainer::OnDelete(const std::string& table,
                                          const std::vector<Row>& rows,
                                          PlanPolicy policy) {
  if (stats_catalog_ != nullptr) stats_catalog_->OnDelete(table, rows);
  if (heavy_ != nullptr) heavy_->OnDelete(table, rows);
  const bool can_divert =
      CanDivert(table, policy, /*is_update=*/false) && !draining_heavy_;
  CheckHeavyConflict(table, can_divert);
  if (can_divert) {
    std::vector<Row> light =
        heavy_->SplitBatch(table, rows, /*is_insert=*/false);
    MaintenanceStats stats = Maintain(SetFor(policy).For(table), table, light,
                                      /*is_insert=*/false, policy);
    if (stats_hook_) stats_hook_(table, stats);
    return stats;
  }
  MaintenanceStats stats = Maintain(SetFor(policy).For(table), table, rows,
                                    /*is_insert=*/false, policy);
  if (stats_hook_) stats_hook_(table, stats);
  return stats;
}

MaintenanceStats ViewMaintainer::OnUpdate(const std::string& table,
                                          const std::vector<Row>& old_rows,
                                          const std::vector<Row>& new_rows) {
  if (stats_catalog_ != nullptr) {
    stats_catalog_->OnUpdate(table, old_rows, new_rows);
  }
  if (heavy_ != nullptr) heavy_->OnUpdate(table, old_rows, new_rows);
  const PlanSet& set = SetFor(PlanPolicy::kConstraintFree);
  const bool can_divert =
      CanDivert(table, PlanPolicy::kConstraintFree, /*is_update=*/true) &&
      !draining_heavy_;
  CheckHeavyConflict(table, can_divert);
  if (can_divert) {
    std::vector<Row> light_old, light_new;
    heavy_->SplitPairs(table, old_rows, new_rows, &light_old, &light_new);
    MaintenanceStats stats =
        Maintain(set.For(table), table, light_old, /*is_insert=*/false,
                 PlanPolicy::kConstraintFree);
    stats.fk_fast_path = false;
    stats.Merge(Maintain(set.For(table), table, light_new, /*is_insert=*/true,
                         PlanPolicy::kConstraintFree));
    if (stats_hook_) stats_hook_(table, stats);
    return stats;
  }
  MaintenanceStats stats =
      Maintain(set.For(table), table, old_rows, /*is_insert=*/false,
               PlanPolicy::kConstraintFree);
  stats.fk_fast_path = false;
  stats.Merge(Maintain(set.For(table), table, new_rows, /*is_insert=*/true,
                       PlanPolicy::kConstraintFree));
  if (stats_hook_) stats_hook_(table, stats);
  return stats;
}

MaintenanceStats ViewMaintainer::OnConsolidatedBatch(
    Table* base, const std::string& table, const std::vector<Row>& net_deletes,
    const std::vector<Row>& net_inserts, PlanPolicy policy) {
  OJV_CHECK(base != nullptr && base->name() == table,
            "consolidated batch must target its own base table");
  // This entry point applies the base changes itself, so it can honor
  // the pre-apply drain contract internally.
  PrepareHeavyForOp(table, policy);
  MaintenanceStats stats;
  if (!net_deletes.empty()) {
    std::vector<Row> keys;
    keys.reserve(net_deletes.size());
    for (const Row& row : net_deletes) {
      Row key;
      for (int p : base->key_positions()) {
        key.push_back(row[static_cast<size_t>(p)]);
      }
      keys.push_back(std::move(key));
    }
    std::vector<Row> deleted = ApplyBaseDelete(base, keys);
    OJV_CHECK(deleted.size() == net_deletes.size(),
              "consolidated deletes must all be present");
    stats.Merge(OnDelete(table, deleted, policy));
  }
  if (!net_inserts.empty()) {
    std::vector<Row> inserted = ApplyBaseInsert(base, net_inserts);
    OJV_CHECK(inserted.size() == net_inserts.size(),
              "consolidated inserts must all be fresh keys");
    stats.Merge(OnInsert(table, inserted, policy));
  }
  return stats;
}

MaintenanceStats ViewMaintainer::OnSharedDelta(const std::string& table,
                                               const std::vector<Row>& rows,
                                               bool is_insert,
                                               PlanPolicy policy,
                                               const RelExprPtr& shared_suffix,
                                               const Relation& shared_prefix) {
  if (stats_catalog_ != nullptr) {
    if (is_insert) {
      stats_catalog_->OnInsert(table, rows);
    } else {
      stats_catalog_->OnDelete(table, rows);
    }
  }
  if (heavy_ != nullptr) {
    if (is_insert) {
      heavy_->OnInsert(table, rows);
    } else {
      heavy_->OnDelete(table, rows);
    }
  }
  // Shared-plan runs execute a fixed suffix eagerly; they can never
  // divert, so no pending state may overlap them.
  CheckHeavyConflict(table, /*can_divert=*/false);
  MaintenanceStats stats =
      Maintain(SetFor(policy).For(table), table, rows, is_insert, policy,
               &shared_suffix, &shared_prefix);
  if (stats_hook_) stats_hook_(table, stats);
  return stats;
}

MaintenanceStats ViewMaintainer::Maintain(const TablePlan& plan,
                                          const std::string& table,
                                          const std::vector<Row>& rows,
                                          bool is_insert, PlanPolicy policy,
                                          const RelExprPtr* shared_suffix,
                                          const Relation* shared_prefix) {
  MaintenanceStats stats;
  stats.delta_rows = static_cast<int64_t>(rows.size());
  if (plan.graph != nullptr) {
    stats.direct_terms = static_cast<int>(plan.graph->DirectTerms().size());
    stats.indirect_terms =
        static_cast<int>(plan.graph->IndirectTerms().size());
  }
  // The root span's duration is stamped from stats.total_micros below —
  // the trace and the legacy numbers are one measurement, never two.
  obs::Span root_span(options_.trace, "ivm.maintain", "ivm");
  root_span.AddArg("view", view_def_.name());
  root_span.AddArg("table", table);
  root_span.AddArg("op", std::string(is_insert ? "insert" : "delete"));
  root_span.AddArg(
      "policy",
      std::string(policy == PlanPolicy::kConstraintFree ? "cf" : "main"));
  root_span.AddArg("delta_rows", stats.delta_rows);
  root_span.AddArg("direct_terms", stats.direct_terms);
  root_span.AddArg("indirect_terms", stats.indirect_terms);
  auto total_start = std::chrono::steady_clock::now();

  if (plan.delta_empty || rows.empty()) {
    stats.fk_fast_path = plan.delta_empty;
    stats.total_micros = MicrosSince(total_start);
    root_span.AddArg("skipped",
                     std::string(plan.delta_empty ? "delta_empty" : "no_rows"));
    root_span.FinishWithDuration(stats.total_micros);
    return stats;
  }

  // Cost-based plan selection: reuse the cached order unless feedback
  // marked it dirty or |Δ| moved far from what it was costed for. A
  // shared-plan run executes a fixed suffix instead — the planner, its
  // cache, and the feedback loop are all bypassed.
  RelExprPtr exec_expr = plan.delta_expr;
  opt::PlanCacheEntry* cache_entry = nullptr;
  if (shared_suffix != nullptr) {
    exec_expr = *shared_suffix;
    root_span.AddArg("plan_source", std::string("shared_prefix"));
  } else if (planner_ != nullptr && ContainsJoin(plan.delta_expr)) {
    if (heavy_ != nullptr) {
      // Light batches never join the heavy partition — estimate the
      // counterpart tables minus it. Drain replays (and tables without
      // edges) plan against the full tables.
      planner_->SetPartitionExclusions(
          !draining_heavy_ && heavy_->HasEdges(table)
              ? heavy_->Exclusions(table)
              : std::unordered_map<std::string, opt::PartitionExclusion>());
    }
    const std::string key = opt::PlanCache::Key(
        table, is_insert,
        policy == PlanPolicy::kConstraintFree && options_.exploit_foreign_keys);
    cache_entry = plan_cache_.Find(key);
    const double drows = static_cast<double>(rows.size());
    const bool replan_size =
        cache_entry != nullptr &&
        std::abs(std::log2(std::max(drows, 1.0)) -
                 std::log2(cache_entry->planned_delta_rows)) >=
            options_.planner.replan_delta_log2;
    if (cache_entry == nullptr || cache_entry->dirty || replan_size) {
      const bool had = cache_entry != nullptr;
      opt::PlannedDelta planned =
          planner_->Plan(plan.delta_expr, table, drows,
                         had ? &cache_entry->fanout_ema : nullptr);
      cache_entry = plan_cache_.Put(key, std::move(planned), drows);
      cache_entry->source = had ? "replan" : "planned";
      if (had) ++cache_entry->replans;
    } else {
      cache_entry->source = "cache";
      ++cache_entry->hits;
    }
    exec_expr = cache_entry->plan.expr;
    root_span.AddArg("plan_source", cache_entry->source);
    root_span.AddArg("join_order", cache_entry->plan.order);
    root_span.AddArg("reordered",
                     static_cast<int64_t>(cache_entry->plan.reordered));
  }

  // ΔT as a tagged relation.
  Relation delta_t(Evaluator::SchemaFor(*catalog_->GetTable(table)));
  for (const Row& row : rows) delta_t.Add(row);

  // Step 1: compute the primary delta, routing exec spans into a private
  // sink when feedback needs them but the caller attached no trace.
  obs::TraceContext* eval_trace = options_.trace;
  size_t feedback_first = 0;
  bool harvest = false;
  if constexpr (obs::kEnabled) {
    if (planner_ != nullptr && options_.planner.feedback &&
        cache_entry != nullptr) {
      if (eval_trace == nullptr) {
        if (feedback_trace_ == nullptr) {
          feedback_trace_ = std::make_unique<obs::TraceContext>();
        }
        eval_trace = feedback_trace_.get();
      }
      feedback_first = eval_trace->event_count();
      harvest = true;
    }
  }
  obs::Span primary_span(options_.trace, "ivm.primary_delta", "ivm");
  auto primary_start = std::chrono::steady_clock::now();
  Relation primary =
      EvalPrimaryDelta(exec_expr, delta_t, eval_trace, shared_prefix);
  stats.primary_rows = primary.size();
  stats.fk_fast_path =
      plan.delta_expr->kind() == RelKind::kDeltaScan ||
      (plan.delta_expr->kind() == RelKind::kSelect &&
       plan.delta_expr->input()->kind() == RelKind::kDeltaScan);
  stats.primary_micros = MicrosSince(primary_start);
  if constexpr (obs::kEnabled) {
    if (harvest) {
      // LEO-style feedback: zip actual per-operator cardinalities onto
      // the planned tree, fold observed fanouts into the EMA, and mark
      // the plan dirty when estimates drifted past the threshold.
      std::vector<obs::TraceEvent> events = eval_trace->Snapshot();
      std::vector<obs::TraceEvent> window(
          events.begin() +
              static_cast<std::ptrdiff_t>(
                  std::min(feedback_first, events.size())),
          events.end());
      opt::FeedbackResult fb = opt::HarvestFeedback(cache_entry->plan, window);
      opt::UpdateFanoutEma(fb, options_.planner.ema_alpha,
                           &cache_entry->fanout_ema);
      if (fb.max_drift > options_.planner.replan_drift) {
        cache_entry->dirty = true;
      }
      if (eval_trace == feedback_trace_.get()) feedback_trace_->Clear();
    }
  }
  primary_span.AddArg("rows_in", stats.delta_rows);
  primary_span.AddArg("rows_out", stats.primary_rows);
  primary_span.AddArg("fk_fast_path", static_cast<int64_t>(stats.fk_fast_path));
  primary_span.FinishWithDuration(stats.primary_micros);

  // Step 2: apply it.
  obs::Span apply_span(options_.trace, "ivm.apply", "ivm");
  auto apply_start = std::chrono::steady_clock::now();
  if (is_insert) {
    for (const Row& row : primary.rows()) view_store_->Insert(row);
  } else {
    for (const Row& row : primary.rows()) {
      OJV_CHECK(view_store_->DeleteMatching(row),
                "primary delta row missing from view");
    }
  }
  stats.apply_micros = MicrosSince(apply_start);
  apply_span.AddArg("rows", stats.primary_rows);
  apply_span.FinishWithDuration(stats.apply_micros);

  // Step 3: secondary delta for indirectly affected terms.
  if (plan.secondary != nullptr && stats.indirect_terms > 0) {
    obs::Span secondary_span(options_.trace, "ivm.secondary_delta", "ivm");
    auto secondary_start = std::chrono::steady_clock::now();
    if (is_insert) {
      stats.secondary_rows = plan.secondary->ApplyAfterInsert(
          options_.secondary_strategy, primary, delta_t, view_store_.get());
    } else {
      stats.secondary_rows = plan.secondary->ApplyAfterDelete(
          options_.secondary_strategy, primary, view_store_.get());
    }
    stats.secondary_micros = MicrosSince(secondary_start);
    secondary_span.AddArg("rows", stats.secondary_rows);
    secondary_span.FinishWithDuration(stats.secondary_micros);
  } else if constexpr (obs::kEnabled) {
    // Record the skip and why — "secondary delta not needed" is exactly
    // the FK effect the paper's §6 argues for, so make it visible.
    if (options_.trace != nullptr) {
      options_.trace->RecordComplete(
          "ivm.secondary_delta.skipped", "ivm", options_.trace->NowMicros(), 0,
          {{"indirect_terms", stats.indirect_terms}},
          {{"reason", stats.indirect_terms == 0 ? "no_indirect_terms"
                                                : "no_engine"}});
    }
  }
  stats.total_micros = MicrosSince(total_start);
  root_span.AddArg("rows_out", stats.primary_rows + stats.secondary_rows);
  root_span.AddArg("fk_fast_path", static_cast<int64_t>(stats.fk_fast_path));
  root_span.FinishWithDuration(stats.total_micros);
  return stats;
}

std::vector<Row> ApplyBaseInsert(Table* table, const std::vector<Row>& rows) {
  std::vector<Row> inserted;
  inserted.reserve(rows.size());
  for (const Row& row : rows) {
    if (table->Insert(row)) inserted.push_back(row);
  }
  return inserted;
}

std::vector<Row> ApplyBaseDelete(Table* table, const std::vector<Row>& keys) {
  std::vector<Row> deleted;
  deleted.reserve(keys.size());
  for (const Row& key : keys) {
    Row full;
    if (table->DeleteByKey(key, &full)) deleted.push_back(std::move(full));
  }
  return deleted;
}

void ApplyBaseUpdate(Table* table, const std::vector<Row>& keys,
                     const std::vector<Row>& new_rows,
                     std::vector<Row>* old_rows) {
  OJV_CHECK(keys.size() == new_rows.size(), "update arity mismatch");
  *old_rows = ApplyBaseDelete(table, keys);
  OJV_CHECK(old_rows->size() == keys.size(), "update of missing row");
  for (const Row& row : new_rows) {
    OJV_CHECK(table->Insert(row), "update collides with existing key");
  }
}

}  // namespace ojv
