#ifndef OJV_IVM_VIEW_SNAPSHOT_H_
#define OJV_IVM_VIEW_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "exec/relation.h"

namespace ojv {

/// How current a Database read must be (DESIGN.md §17).
enum class ReadFreshness {
  /// Bring the view fully up to date before reading: drain pending
  /// deltas and heavy-key lazy state on the reader's thread, then pin
  /// the freshly published generation. Read-your-writes — the seed
  /// ReadView semantics — at the cost of taking the statement mutex and
  /// possibly running a refresh inline.
  kFresh,
  /// Pin the last published generation without touching the statement
  /// mutex' wait queue: never blocks behind an in-flight refresh or
  /// statement. The generation may be stale; its staleness is readable
  /// off the handle.
  kSnapshot,
  /// Like kSnapshot while the published generation's staleness is
  /// within ReadOptions::max_staleness_micros; beyond the bound the
  /// read upgrades to kFresh and blocks until current.
  kBounded,
};

/// Per-read knobs. The default is the serving-path choice (kSnapshot);
/// Database::ReadView/ReadAggregateRelation default to Fresh() to keep
/// the historical read-your-writes contract.
struct ReadOptions {
  ReadFreshness freshness = ReadFreshness::kSnapshot;
  /// kBounded only: tolerated staleness before the read blocks.
  double max_staleness_micros = 0;

  static ReadOptions Fresh() { return {ReadFreshness::kFresh, 0}; }
  static ReadOptions Snapshot() { return {ReadFreshness::kSnapshot, 0}; }
  static ReadOptions Bounded(double max_staleness_micros) {
    return {ReadFreshness::kBounded, max_staleness_micros};
  }
};

class GenerationStore;
class ViewSnapshot;

/// One immutable published generation of a view's contents. Everything
/// except the staleness mark is fixed at publish time; readers pinning
/// the generation through a ViewSnapshot may scan it freely while
/// maintenance builds and publishes successors.
class ViewGeneration {
 public:
  ViewGeneration(Relation contents, uint64_t number, uint64_t content_version,
                 int64_t published_micros, int64_t stale_since_micros)
      : contents_(std::move(contents)),
        number_(number),
        content_version_(content_version),
        published_micros_(published_micros),
        stale_since_micros_(stale_since_micros) {}

  ViewGeneration(const ViewGeneration&) = delete;
  ViewGeneration& operator=(const ViewGeneration&) = delete;

  const Relation& contents() const { return contents_; }
  uint64_t number() const { return number_; }
  /// The store's content version this generation captured.
  uint64_t content_version() const { return content_version_; }
  int64_t published_micros() const { return published_micros_; }
  /// 0 while the generation reflects every base change so far; else the
  /// steady-clock instant of the earliest base change it misses.
  int64_t stale_since_micros() const {
    return stale_since_micros_.load(std::memory_order_acquire);
  }
  /// Marks the generation stale as of `now_micros`. First call wins —
  /// staleness is measured from the earliest missed change. Const (and
  /// the mark mutable) because readers hold the generation through
  /// shared_ptr<const ViewGeneration>: the contents are immutable, the
  /// staleness mark is the one atomic annotation maintenance may add.
  void MarkStale(int64_t now_micros) const {
    int64_t expected = 0;
    stale_since_micros_.compare_exchange_strong(expected, now_micros,
                                                std::memory_order_acq_rel);
  }

 private:
  const Relation contents_;
  const uint64_t number_;
  const uint64_t content_version_;
  const int64_t published_micros_;
  mutable std::atomic<int64_t> stale_since_micros_;
};

/// Refcounted read handle pinned to one published generation. Copyable
/// and cheap (two shared_ptr copies); the pinned generation — and with
/// it the Relation the accessors expose — stays alive and immutable
/// until the last handle drops, no matter how many refreshes publish
/// newer generations meanwhile (retired generations are freed by the
/// last reader's release).
///
/// The handle keeps the shape of the raw-pointer API it replaced:
/// `operator->`, `operator bool`, and nullptr comparisons all work, so
/// `db.ReadView("v")->AsRelation()` and `ASSERT_NE(snap, nullptr)`
/// read exactly as before — but there is no longer any pointer whose
/// pointee a concurrent refresh could mutate.
class ViewSnapshot {
 public:
  ViewSnapshot() = default;
  ViewSnapshot(std::shared_ptr<const ViewGeneration> gen,
               std::shared_ptr<GenerationStore> store);
  ViewSnapshot(const ViewSnapshot& other);
  ViewSnapshot& operator=(const ViewSnapshot& other);
  ViewSnapshot(ViewSnapshot&& other) noexcept;
  ViewSnapshot& operator=(ViewSnapshot&& other) noexcept;
  ~ViewSnapshot();

  /// False for reads of unknown views (the old nullptr return).
  bool valid() const { return gen_ != nullptr; }
  explicit operator bool() const { return valid(); }
  const ViewSnapshot* operator->() const { return this; }
  friend bool operator==(const ViewSnapshot& s, std::nullptr_t) {
    return !s.valid();
  }
  friend bool operator!=(const ViewSnapshot& s, std::nullptr_t) {
    return s.valid();
  }

  /// The pinned generation's contents. Aborts when !valid().
  const Relation& relation() const;
  /// Copy of the contents, for call sites that previously materialized
  /// the view via MaterializedView::AsRelation().
  Relation AsRelation() const { return relation(); }
  int64_t size() const { return valid() ? relation().size() : 0; }

  /// Monotonic generation number within the view's store.
  uint64_t generation() const;
  int64_t published_micros() const;
  /// How far behind the base tables this snapshot is at `now_micros`
  /// (0 = no base change since publish has invalidated it).
  double staleness_micros(int64_t now_micros) const;

 private:
  void Release();

  std::shared_ptr<const ViewGeneration> gen_;
  std::shared_ptr<GenerationStore> store_;
};

/// Per-view generation chain: one mutable slot holding the current
/// published generation, swapped atomically (under a small spinless
/// mutex) at publish. Split from Database so readers acquiring a
/// snapshot never touch the statement mutex.
///
/// Thread contract:
///   - Publish / NoteContentChanged / NoteStaleness are maintenance-side
///     and are only called while the caller holds the Database statement
///     mutex (they are serialized with each other);
///   - Acquire / pinned_readers / content_version are safe from any
///     thread at any time.
class GenerationStore : public std::enable_shared_from_this<GenerationStore> {
 public:
  GenerationStore(std::string view_name, bool is_aggregate);

  const std::string& view_name() const { return view_name_; }
  /// True for aggregate views (Database::ReadView answers row views
  /// only; the tag lets it refuse without taking the statement mutex).
  bool is_aggregate() const { return is_aggregate_; }

  /// Pins the current generation. Invalid handle before first Publish.
  ViewSnapshot Acquire();

  /// Publishes `contents` as the next generation, capturing the current
  /// content version. `stale_since_micros` is 0 when the contents
  /// reflect every base change (the common case right after a refresh),
  /// else the age origin of the oldest change still pending.
  void Publish(Relation contents, int64_t now_micros,
               int64_t stale_since_micros);

  /// Maintenance applied to the stored view: the published generation
  /// (if any) no longer matches and is marked stale.
  void NoteContentChanged(int64_t now_micros);

  /// A base change was staged for the view without touching its stored
  /// contents (deferred delta log): the published generation still
  /// matches the stored view but is stale against base.
  void NoteStaleness(int64_t now_micros);

  /// Version of the stored view's contents; incremented by every
  /// NoteContentChanged. A published generation with a matching
  /// content_version() needs no rebuild.
  uint64_t content_version() const {
    return content_version_.load(std::memory_order_acquire);
  }
  /// True when the published generation captures the stored view's
  /// current contents (rebuild would republish identical rows).
  bool UpToDate() const;

  /// Live ViewSnapshot handles pinning this store's generations.
  int64_t pinned_readers() const {
    return pinned_.load(std::memory_order_acquire);
  }

 private:
  friend class ViewSnapshot;
  void Pin();
  void Unpin();

  const std::string view_name_;
  const bool is_aggregate_;
  mutable std::mutex mu_;  // guards gen_ swap only
  std::shared_ptr<const ViewGeneration> gen_;
  std::atomic<uint64_t> content_version_{0};
  uint64_t next_number_ = 1;  // maintenance-side only (serialized)
  std::atomic<int64_t> pinned_{0};
};

}  // namespace ojv

#endif  // OJV_IVM_VIEW_SNAPSHOT_H_
