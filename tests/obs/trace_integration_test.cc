// Integration test: maintain the paper's experiment view V3 over TPC-H
// updates with a TraceContext attached, and check that the trace tells
// the true story — the expected stage set is present, the secondary
// delta is reported as skipped exactly when FK pruning makes it
// unnecessary, and the operator row counts agree with the
// MaintenanceStats the maintainer returned (they are one measurement,
// not two).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ivm/database.h"
#include "ivm/maintainer.h"
#include "obs/trace.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace {

class TraceIntegrationFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kEnabled) GTEST_SKIP() << "OJV_OBS=OFF build";
    tpch::CreateSchema(&catalog_);
    tpch::DbgenOptions options;
    options.scale_factor = 0.002;
    dbgen_ = std::make_unique<tpch::Dbgen>(options);
    dbgen_->Populate(&catalog_);
    refresh_ =
        std::make_unique<tpch::RefreshStream>(&catalog_, dbgen_.get(), 321);
  }

  Catalog catalog_;
  std::unique_ptr<tpch::Dbgen> dbgen_;
  std::unique_ptr<tpch::RefreshStream> refresh_;
};

TEST_F(TraceIntegrationFixture, LineitemInsertStageSetAndRowCounts) {
  ViewDef v3 = tpch::MakeV3(catalog_);
  ViewMaintainer maintainer(&catalog_, v3, MaintenanceOptions());
  maintainer.InitializeView();

  obs::TraceContext trace;
  maintainer.set_trace(&trace);
  std::vector<Row> inserted = ApplyBaseInsert(catalog_.GetTable("lineitem"),
                                              refresh_->NewLineitems(100));
  MaintenanceStats stats = maintainer.OnInsert("lineitem", inserted);
  maintainer.set_trace(nullptr);

  // The full immediate-maintenance stage set, including the exec
  // operators under the primary delta (the lineitem plan joins the
  // delta against orders, customer, and part).
  for (const char* span :
       {"ivm.maintain", "ivm.primary_delta", "ivm.apply", "exec.delta_scan",
        "exec.join"}) {
    EXPECT_TRUE(trace.HasSpan(span)) << span;
  }
  EXPECT_EQ(trace.SpanCount("ivm.maintain"), 1);

  // Row accounting: trace args and returned stats are the same numbers.
  EXPECT_EQ(trace.ArgSum("ivm.maintain", "delta_rows"), stats.delta_rows);
  EXPECT_EQ(stats.delta_rows, static_cast<int64_t>(inserted.size()));
  EXPECT_EQ(trace.ArgSum("ivm.primary_delta", "rows_out"), stats.primary_rows);
  EXPECT_EQ(trace.ArgSum("ivm.primary_delta", "rows_in"), stats.delta_rows);
  EXPECT_EQ(trace.ArgSum("ivm.maintain", "rows_out"),
            stats.primary_rows + stats.secondary_rows);
  EXPECT_EQ(trace.ArgSum("ivm.apply", "rows"), stats.primary_rows);

  // The span durations ARE the legacy stats (FinishWithDuration), up to
  // the int64 truncation the trace stores.
  EXPECT_NEAR(trace.StageMicros("ivm.maintain"), stats.total_micros, 1.0);
  EXPECT_NEAR(trace.StageMicros("ivm.primary_delta"), stats.primary_micros,
              1.0);
  EXPECT_NEAR(trace.StageMicros("ivm.apply"), stats.apply_micros, 1.0);

  // The plan root's rows_out is the primary delta's rows_out: the last
  // exec event recorded under the primary span is the root (post-order).
  std::vector<obs::TraceEvent> events = trace.Snapshot();
  const obs::TraceEvent* last_exec = nullptr;
  for (const obs::TraceEvent& ev : events) {
    if (ev.category == "exec") last_exec = &ev;
  }
  ASSERT_NE(last_exec, nullptr);
  EXPECT_EQ(last_exec->ArgOr("rows_out", -1), stats.primary_rows);
}

TEST_F(TraceIntegrationFixture, PartInsertSkipsSecondaryDelta) {
  ViewDef v3 = tpch::MakeV3(catalog_);
  ViewMaintainer maintainer(&catalog_, v3, MaintenanceOptions());
  maintainer.InitializeView();

  obs::TraceContext trace;
  maintainer.set_trace(&trace);
  std::vector<Row> inserted =
      ApplyBaseInsert(catalog_.GetTable("part"), refresh_->NewParts(50));
  MaintenanceStats stats = maintainer.OnInsert("part", inserted);
  maintainer.set_trace(nullptr);

  // FK pruning: a part insert only touches V3's direct {part} orphan
  // term; no term is indirectly affected, so the secondary stage must
  // be reported as explicitly skipped, not silently absent.
  EXPECT_EQ(stats.indirect_terms, 0);
  EXPECT_EQ(stats.secondary_rows, 0);
  EXPECT_TRUE(trace.HasSpan("ivm.secondary_delta.skipped"));
  EXPECT_FALSE(trace.HasSpan("ivm.secondary_delta"));
  std::vector<obs::TraceEvent> events = trace.Snapshot();
  for (const obs::TraceEvent& ev : events) {
    if (ev.name != "ivm.secondary_delta.skipped") continue;
    const std::string* reason = ev.StrArg("reason");
    ASSERT_NE(reason, nullptr);
    EXPECT_EQ(*reason, "no_indirect_terms");
  }
}

TEST_F(TraceIntegrationFixture, OrdersUpdateIsTheorem3NoOp) {
  ViewDef v3 = tpch::MakeV3(catalog_);
  ViewMaintainer maintainer(&catalog_, v3, MaintenanceOptions());
  maintainer.InitializeView();

  // Theorem 3 proves an orders change cannot affect V3 (every directly
  // affected term is FK-protected); the trace must still record the
  // maintain call and say why it did nothing.
  obs::TraceContext trace;
  maintainer.set_trace(&trace);
  std::vector<Row> orders = ApplyBaseInsert(catalog_.GetTable("orders"),
                                            refresh_->NewOrders(10));
  MaintenanceStats stats = maintainer.OnInsert("orders", orders);
  maintainer.set_trace(nullptr);

  EXPECT_TRUE(stats.fk_fast_path);
  EXPECT_EQ(stats.primary_rows, 0);
  ASSERT_EQ(trace.SpanCount("ivm.maintain"), 1);
  std::vector<obs::TraceEvent> events = trace.Snapshot();
  const std::string* skipped = nullptr;
  for (const obs::TraceEvent& ev : events) {
    if (ev.name == "ivm.maintain") skipped = ev.StrArg("skipped");
  }
  ASSERT_NE(skipped, nullptr);
  EXPECT_EQ(*skipped, "delta_empty");
  EXPECT_FALSE(trace.HasSpan("ivm.primary_delta"));
}

TEST(TraceDatabaseTest, StatementSpansWrapMaintenance) {
  if (!obs::kEnabled) GTEST_SKIP() << "OJV_OBS=OFF build";
  Database db;
  tpch::CreateSchema(db.catalog());
  tpch::DbgenOptions options;
  options.scale_factor = 0.002;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(db.catalog());
  tpch::RefreshStream refresh(db.catalog(), &dbgen, 77);
  db.CreateMaterializedView(tpch::MakeV3(*db.catalog()));

  obs::TraceContext trace;
  db.set_trace(&trace);
  std::vector<Row> orders = refresh.NewOrders(5);
  db.Insert("orders", orders);
  Database::StatementResult result =
      db.Insert("lineitem", refresh.NewLineitemsFor(orders, 2));
  db.set_trace(nullptr);
  ASSERT_TRUE(result.ok());

  EXPECT_EQ(trace.SpanCount("db.insert"), 2);
  EXPECT_TRUE(trace.HasSpan("ivm.maintain"));
  // The statement span reports the same row count as the result, and
  // every ivm.maintain span is parented under a db.* statement span.
  std::vector<obs::TraceEvent> events = trace.Snapshot();
  int64_t lineitem_rows = -1;
  for (const obs::TraceEvent& ev : events) {
    if (ev.name != "db.insert") continue;
    const std::string* table = ev.StrArg("table");
    if (table != nullptr && *table == "lineitem") {
      lineitem_rows = ev.ArgOr("rows_affected", -1);
    }
  }
  EXPECT_EQ(lineitem_rows, result.rows_affected);
  for (const obs::TraceEvent& ev : events) {
    if (ev.name != "ivm.maintain") continue;
    ASSERT_GE(ev.parent, 0);
    EXPECT_EQ(events[static_cast<size_t>(ev.parent)].category, "db");
  }
}

}  // namespace
}  // namespace ojv
