#include "sql/parser.h"

#include <set>

#include "common/date.h"
#include "sql/lexer.h"

namespace ojv {
namespace sql {
namespace {

// One SELECT-list item before resolution.
struct SelectItem {
  enum class Kind { kStar, kColumn, kCountStar, kCount, kSum, kMin, kMax }
      kind;
  std::string table;   // optional qualifier for kColumn/kCount/kSum
  std::string column;  // for kColumn/kCount/kSum
  std::string alias;   // AS name (aggregates)
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Catalog& catalog)
      : tokens_(std::move(tokens)), catalog_(catalog) {}

  std::optional<ParsedView> ParseCreateViewStatement() {
    if (!ExpectKeyword("CREATE") || !ExpectKeyword("VIEW")) return Error();
    std::string view_name;
    if (!ExpectIdentifier(&view_name)) return Error();
    if (!ExpectKeyword("AS") || !ExpectKeyword("SELECT")) return Error();

    std::vector<SelectItem> items;
    if (!ParseSelectList(&items)) return Error();

    if (!ExpectKeyword("FROM")) return Error();
    RelExprPtr tree;
    std::set<std::string> tables;
    if (!ParseJoinExpr(&tree, &tables)) return Error();

    if (AcceptKeyword("WHERE")) {
      ScalarExprPtr condition;
      if (!ParseCondition(tables, &condition)) return Error();
      tree = RelExpr::Select(tree, condition);
    }

    std::vector<ColumnRef> group_by;
    bool is_aggregate = false;
    if (AcceptKeyword("GROUP")) {
      if (!ExpectKeyword("BY")) return Error();
      is_aggregate = true;
      do {
        std::string qualifier, column;
        if (!ParseQualifiedName(&qualifier, &column)) return Error();
        ColumnRef ref;
        if (!Resolve(qualifier, column, tables, &ref)) return Error();
        group_by.push_back(ref);
      } while (AcceptSymbol(","));
    }
    if (Peek().kind != TokenKind::kEnd) {
      Fail("unexpected trailing input");
      return Error();
    }

    // Resolve the select list.
    std::vector<ColumnRef> output;
    std::vector<AggregateSpec> aggregates;
    bool any_aggregate_item = false;
    for (const SelectItem& item : items) {
      switch (item.kind) {
        case SelectItem::Kind::kStar:
          for (const std::string& t : tables) {
            const Table* table = catalog_.GetTable(t);
            for (const ColumnDef& def : table->schema().columns()) {
              output.push_back(ColumnRef{t, def.name});
            }
          }
          break;
        case SelectItem::Kind::kColumn: {
          ColumnRef ref;
          if (!Resolve(item.table, item.column, tables, &ref)) return Error();
          output.push_back(ref);
          break;
        }
        case SelectItem::Kind::kCountStar: {
          any_aggregate_item = true;
          AggregateSpec spec;
          spec.kind = AggregateSpec::Kind::kCountStar;
          spec.name = item.alias.empty() ? "count_star" : item.alias;
          aggregates.push_back(std::move(spec));
          break;
        }
        case SelectItem::Kind::kCount:
        case SelectItem::Kind::kSum:
        case SelectItem::Kind::kMin:
        case SelectItem::Kind::kMax: {
          any_aggregate_item = true;
          AggregateSpec spec;
          std::string prefix;
          switch (item.kind) {
            case SelectItem::Kind::kCount:
              spec.kind = AggregateSpec::Kind::kCount;
              prefix = "count_";
              break;
            case SelectItem::Kind::kSum:
              spec.kind = AggregateSpec::Kind::kSum;
              prefix = "sum_";
              break;
            case SelectItem::Kind::kMin:
              spec.kind = AggregateSpec::Kind::kMin;
              prefix = "min_";
              break;
            default:
              spec.kind = AggregateSpec::Kind::kMax;
              prefix = "max_";
              break;
          }
          ColumnRef ref;
          if (!Resolve(item.table, item.column, tables, &ref)) return Error();
          spec.column = ref;
          spec.name = item.alias.empty() ? prefix + ref.column : item.alias;
          aggregates.push_back(std::move(spec));
          output.push_back(ref);  // base view must expose the column
          break;
        }
      }
    }
    if (any_aggregate_item && !is_aggregate) {
      Fail("aggregates require a GROUP BY clause");
      return Error();
    }
    if (is_aggregate && !any_aggregate_item) {
      Fail("GROUP BY requires at least one aggregate in the SELECT list");
      return Error();
    }
    if (is_aggregate) {
      // The base view needs the group columns too.
      for (const ColumnRef& ref : group_by) output.push_back(ref);
    }

    // Paper §2: views output every referenced table's unique key; append
    // any the SELECT list omitted, then drop duplicates.
    for (const std::string& t : tables) {
      for (const std::string& key : catalog_.GetTable(t)->key_columns()) {
        output.push_back(ColumnRef{t, key});
      }
    }
    std::vector<ColumnRef> deduped;
    for (const ColumnRef& ref : output) {
      bool seen = false;
      for (const ColumnRef& existing : deduped) {
        if (existing == ref) {
          seen = true;
          break;
        }
      }
      if (!seen) deduped.push_back(ref);
    }

    ParsedView parsed{ViewDef(view_name, tree, std::move(deduped), catalog_),
                      is_aggregate, std::move(group_by),
                      std::move(aggregates)};
    return parsed;
  }

  const std::string& error() const { return error_; }

 private:
  std::optional<ParsedView> Error() { return std::nullopt; }

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " (near position " +
               std::to_string(Peek().position) + ")";
    }
    return false;
  }

  bool AcceptKeyword(const std::string& keyword) {
    if (Peek().kind == TokenKind::kKeyword && Peek().text == keyword) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ExpectKeyword(const std::string& keyword) {
    if (AcceptKeyword(keyword)) return true;
    return Fail("expected " + keyword);
  }

  bool AcceptSymbol(const std::string& symbol) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == symbol) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ExpectSymbol(const std::string& symbol) {
    if (AcceptSymbol(symbol)) return true;
    return Fail("expected '" + symbol + "'");
  }

  bool ExpectIdentifier(std::string* out) {
    if (Peek().kind == TokenKind::kIdentifier) {
      *out = Next().text;
      return true;
    }
    return Fail("expected an identifier");
  }

  // name | table.name — qualifier empty when absent.
  bool ParseQualifiedName(std::string* qualifier, std::string* column) {
    std::string first;
    if (!ExpectIdentifier(&first)) return false;
    if (AcceptSymbol(".")) {
      *qualifier = first;
      return ExpectIdentifier(column);
    }
    qualifier->clear();
    *column = first;
    return true;
  }

  bool Resolve(const std::string& qualifier, const std::string& column,
               const std::set<std::string>& tables, ColumnRef* out) {
    if (!qualifier.empty()) {
      if (tables.count(qualifier) == 0) {
        return Fail("unknown table '" + qualifier + "' in column reference");
      }
      if (catalog_.GetTable(qualifier)->schema().Find(column) < 0) {
        return Fail("unknown column '" + qualifier + "." + column + "'");
      }
      *out = ColumnRef{qualifier, column};
      return true;
    }
    const std::string* found = nullptr;
    for (const std::string& t : tables) {
      if (catalog_.GetTable(t)->schema().Find(column) >= 0) {
        if (found != nullptr) {
          return Fail("ambiguous column '" + column + "'");
        }
        found = &t;
      }
    }
    if (found == nullptr) {
      return Fail("unknown column '" + column + "'");
    }
    *out = ColumnRef{*found, column};
    return true;
  }

  bool ParseSelectList(std::vector<SelectItem>* items) {
    do {
      SelectItem item;
      if (AcceptSymbol("*")) {
        item.kind = SelectItem::Kind::kStar;
      } else if (AcceptKeyword("COUNT")) {
        if (!ExpectSymbol("(")) return false;
        if (AcceptSymbol("*")) {
          item.kind = SelectItem::Kind::kCountStar;
        } else {
          item.kind = SelectItem::Kind::kCount;
          if (!ParseQualifiedName(&item.table, &item.column)) return false;
        }
        if (!ExpectSymbol(")")) return false;
        if (AcceptKeyword("AS")) {
          if (!ExpectIdentifier(&item.alias)) return false;
        }
      } else if (AcceptKeyword("SUM")) {
        item.kind = SelectItem::Kind::kSum;
        if (!ExpectSymbol("(")) return false;
        if (!ParseQualifiedName(&item.table, &item.column)) return false;
        if (!ExpectSymbol(")")) return false;
        if (AcceptKeyword("AS")) {
          if (!ExpectIdentifier(&item.alias)) return false;
        }
      } else if (AcceptKeyword("MIN") || AcceptKeyword("MAX")) {
        // The keyword just consumed decides the kind.
        item.kind = tokens_[pos_ - 1].text == "MIN" ? SelectItem::Kind::kMin
                                                    : SelectItem::Kind::kMax;
        if (!ExpectSymbol("(")) return false;
        if (!ParseQualifiedName(&item.table, &item.column)) return false;
        if (!ExpectSymbol(")")) return false;
        if (AcceptKeyword("AS")) {
          if (!ExpectIdentifier(&item.alias)) return false;
        }
      } else if (AcceptKeyword("AVG")) {
        return Fail("AVG is not self-maintainable here; use SUM and COUNT");
      } else {
        item.kind = SelectItem::Kind::kColumn;
        if (!ParseQualifiedName(&item.table, &item.column)) return false;
      }
      items->push_back(std::move(item));
    } while (AcceptSymbol(","));
    return true;
  }

  // primary := table | '(' join_expr ')' | '(' SELECT * FROM ... ')'
  bool ParsePrimary(RelExprPtr* expr, std::set<std::string>* tables) {
    if (AcceptSymbol("(")) {
      if (AcceptKeyword("SELECT")) {
        // Derived table: SELECT * FROM <join> [WHERE cond].
        if (!ExpectSymbol("*")) {
          return Fail("derived tables support SELECT * only");
        }
        if (!ExpectKeyword("FROM")) return false;
        RelExprPtr inner;
        std::set<std::string> inner_tables;
        if (!ParseJoinExpr(&inner, &inner_tables)) return false;
        if (AcceptKeyword("WHERE")) {
          ScalarExprPtr condition;
          if (!ParseCondition(inner_tables, &condition)) return false;
          inner = RelExpr::Select(inner, condition);
        }
        if (!ExpectSymbol(")")) return false;
        *expr = inner;
        tables->insert(inner_tables.begin(), inner_tables.end());
        return true;
      }
      if (!ParseJoinExpr(expr, tables)) return false;
      return ExpectSymbol(")");
    }
    std::string name;
    if (!ExpectIdentifier(&name)) return false;
    if (!catalog_.HasTable(name)) {
      return Fail("unknown table '" + name + "'");
    }
    // One namespace per statement: a view may reference a table once.
    if (!all_tables_.insert(name).second) {
      return Fail("table '" + name + "' referenced twice (no self-joins)");
    }
    *expr = RelExpr::Scan(name);
    tables->insert(name);
    return true;
  }

  bool ParseJoinKind(JoinKind* kind, bool* found) {
    *found = true;
    if (AcceptKeyword("JOIN")) {
      *kind = JoinKind::kInner;
      return true;
    }
    if (AcceptKeyword("INNER")) {
      *kind = JoinKind::kInner;
      return ExpectKeyword("JOIN");
    }
    if (AcceptKeyword("LEFT")) {
      *kind = JoinKind::kLeftOuter;
      AcceptKeyword("OUTER");
      return ExpectKeyword("JOIN");
    }
    if (AcceptKeyword("RIGHT")) {
      *kind = JoinKind::kRightOuter;
      AcceptKeyword("OUTER");
      return ExpectKeyword("JOIN");
    }
    if (AcceptKeyword("FULL")) {
      *kind = JoinKind::kFullOuter;
      AcceptKeyword("OUTER");
      return ExpectKeyword("JOIN");
    }
    *found = false;
    return true;
  }

  bool ParseJoinExpr(RelExprPtr* expr, std::set<std::string>* tables) {
    std::set<std::string> left_tables;
    if (!ParsePrimary(expr, &left_tables)) return false;
    while (true) {
      JoinKind kind;
      bool found;
      if (!ParseJoinKind(&kind, &found)) return false;
      if (!found) break;
      RelExprPtr right;
      std::set<std::string> right_tables;
      if (!ParsePrimary(&right, &right_tables)) return false;
      if (!ExpectKeyword("ON")) return false;
      std::set<std::string> visible = left_tables;
      visible.insert(right_tables.begin(), right_tables.end());
      ScalarExprPtr condition;
      if (!ParseCondition(visible, &condition)) return false;
      // The join predicate must connect the two inputs (ViewDef would
      // abort otherwise; diagnose here instead).
      bool touches_left = false;
      bool touches_right = false;
      for (const std::string& t : condition->ReferencedTables()) {
        if (left_tables.count(t) > 0) touches_left = true;
        if (right_tables.count(t) > 0) touches_right = true;
      }
      if (!touches_left || !touches_right) {
        return Fail("join condition must reference both join inputs");
      }
      *expr = RelExpr::Join(kind, *expr, right, condition);
      left_tables = visible;
    }
    *tables = left_tables;
    return true;
  }

  // condition := comparison (AND comparison)*
  bool ParseCondition(const std::set<std::string>& visible,
                      ScalarExprPtr* out) {
    std::vector<ScalarExprPtr> conjuncts;
    do {
      ScalarExprPtr comparison;
      if (!ParseComparison(visible, &comparison)) return false;
      conjuncts.push_back(std::move(comparison));
    } while (AcceptKeyword("AND"));
    *out = MakeConjunction(std::move(conjuncts));
    return true;
  }

  bool ParseOperand(const std::set<std::string>& visible, ScalarExprPtr* out) {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kNumber: {
        std::string text = Next().text;
        try {
          if (text.find('.') != std::string::npos) {
            *out = ScalarExpr::Literal(Value::Float64(std::stod(text)));
          } else {
            *out = ScalarExpr::Literal(Value::Int64(std::stoll(text)));
          }
        } catch (const std::exception&) {
          return Fail("numeric literal out of range: " + text);
        }
        return true;
      }
      case TokenKind::kString:
        *out = ScalarExpr::Literal(Value::String(Next().text));
        return true;
      case TokenKind::kKeyword:
        if (token.text == "DATE") {
          ++pos_;
          if (Peek().kind != TokenKind::kString) {
            return Fail("DATE requires a 'YYYY-MM-DD' literal");
          }
          *out = ScalarExpr::Literal(Value::Date(ParseDate(Next().text)));
          return true;
        }
        return Fail("unexpected keyword '" + token.text + "' in expression");
      case TokenKind::kIdentifier: {
        std::string qualifier, column;
        if (!ParseQualifiedName(&qualifier, &column)) return false;
        ColumnRef ref;
        if (!Resolve(qualifier, column, visible, &ref)) return false;
        *out = ScalarExpr::Column(ref.table, ref.column);
        return true;
      }
      default:
        return Fail("expected a column or literal");
    }
  }

  bool ParseComparison(const std::set<std::string>& visible,
                       ScalarExprPtr* out) {
    ScalarExprPtr lhs;
    if (!ParseOperand(visible, &lhs)) return false;
    if (AcceptKeyword("BETWEEN")) {
      ScalarExprPtr lo, hi;
      if (!ParseOperand(visible, &lo)) return false;
      if (!ExpectKeyword("AND")) return false;
      if (!ParseOperand(visible, &hi)) return false;
      *out = ScalarExpr::And(
          {ScalarExpr::Compare(CompareOp::kGe, lhs, std::move(lo)),
           ScalarExpr::Compare(CompareOp::kLe, lhs, std::move(hi))});
      return true;
    }
    CompareOp op;
    if (AcceptSymbol("=")) {
      op = CompareOp::kEq;
    } else if (AcceptSymbol("<>")) {
      op = CompareOp::kNe;
    } else if (AcceptSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (AcceptSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (AcceptSymbol("<")) {
      op = CompareOp::kLt;
    } else if (AcceptSymbol(">")) {
      op = CompareOp::kGt;
    } else {
      return Fail("expected a comparison operator");
    }
    ScalarExprPtr rhs;
    if (!ParseOperand(visible, &rhs)) return false;
    *out = ScalarExpr::Compare(op, std::move(lhs), std::move(rhs));
    return true;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const Catalog& catalog_;
  std::set<std::string> all_tables_;  // every table scanned so far
  std::string error_;
};

}  // namespace

std::optional<ParsedView> ParseCreateView(const std::string& sql,
                                          const Catalog& catalog,
                                          std::string* error) {
  std::vector<Token> tokens;
  std::string lex_error;
  if (!Lex(sql, &tokens, &lex_error)) {
    if (error != nullptr) *error = lex_error;
    return std::nullopt;
  }
  Parser parser(std::move(tokens), catalog);
  std::optional<ParsedView> parsed = parser.ParseCreateViewStatement();
  if (!parsed.has_value() && error != nullptr) {
    *error = parser.error();
  }
  return parsed;
}

bool ExecuteCreateView(const std::string& sql, Database* db,
                       std::string* error) {
  std::optional<ParsedView> parsed =
      ParseCreateView(sql, *db->catalog(), error);
  if (!parsed.has_value()) return false;
  if (parsed->is_aggregate) {
    db->CreateAggregateView(std::move(parsed->view),
                            std::move(parsed->group_by),
                            std::move(parsed->aggregates));
  } else {
    db->CreateMaterializedView(std::move(parsed->view));
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace sql
}  // namespace ojv
