// The full stack in one place: a Database with TPC-H tables, views
// defined in SQL (including an aggregation view), statements with
// foreign-key enforcement, and every view maintained automatically —
// the workflow the paper's SQL Server prototype implements with
// indexed views and triggers.

#include <cstdio>

#include "baseline/recompute.h"
#include "ivm/database.h"
#include "sql/parser.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"

using namespace ojv;

int main() {
  Database db;
  tpch::CreateSchema(db.catalog());
  tpch::DbgenOptions options;
  options.scale_factor = 0.003;
  tpch::Dbgen dbgen(options);
  dbgen.Populate(db.catalog());
  tpch::RefreshStream refresh(db.catalog(), &dbgen, 2024);

  // The paper's introductory view, as SQL.
  std::string error;
  bool ok = sql::ExecuteCreateView(R"sql(
      CREATE VIEW oj_view AS
      SELECT p_partkey, p_name, p_retailprice, o_orderkey, o_custkey,
             l_orderkey, l_linenumber, l_quantity, l_extendedprice
      FROM part FULL OUTER JOIN
           (orders LEFT OUTER JOIN lineitem ON l_orderkey = o_orderkey)
           ON p_partkey = l_partkey)sql",
                                   &db, &error);
  if (!ok) {
    std::fprintf(stderr, "oj_view: %s\n", error.c_str());
    return 1;
  }

  // A revenue dashboard over outer joins, as SQL with GROUP BY.
  ok = sql::ExecuteCreateView(R"sql(
      CREATE VIEW segment_revenue AS
      SELECT c_mktsegment, COUNT(*) AS row_cnt,
             SUM(l_extendedprice) AS revenue
      FROM customer LEFT OUTER JOIN
           (SELECT * FROM orders JOIN lineitem ON l_orderkey = o_orderkey
             WHERE o_orderdate BETWEEN DATE '1994-01-01' AND DATE '1994-12-31')
           ON c_custkey = o_custkey
      GROUP BY c_mktsegment)sql",
                              &db, &error);
  if (!ok) {
    std::fprintf(stderr, "segment_revenue: %s\n", error.c_str());
    return 1;
  }

  std::printf("views registered: oj_view (%lld rows), segment_revenue "
              "(%lld groups)\n",
              static_cast<long long>(db.GetView("oj_view")->view().size()),
              static_cast<long long>(
                  db.GetAggregateView("segment_revenue")->num_groups()));

  // Statements. Every insert/delete/update checks FKs and maintains both
  // views incrementally.
  Database::StatementResult r =
      db.Insert("lineitem", refresh.NewLineitems(250));
  std::printf("\nINSERT 250 lineitems: %lld applied, maintenance %.2f ms\n",
              static_cast<long long>(r.rows_affected),
              r.maintenance_micros / 1000.0);

  // An insert violating the FK l_orderkey -> o_orderkey is rejected.
  Row bogus = refresh.NewLineitems(1)[0];
  bogus[0] = Value::Int64(999999999);  // no such order
  r = db.Insert("lineitem", {bogus});
  std::printf("INSERT bogus lineitem: %lld applied, %lld rejected (FK)\n",
              static_cast<long long>(r.rows_affected),
              static_cast<long long>(r.rows_rejected));

  // Deleting an order with lineitems is blocked...
  int64_t busy_order = -1;
  db.catalog()->GetTable("lineitem")->ForEach([&](const Row& row) {
    if (busy_order < 0) busy_order = row[0].int64();
  });
  r = db.Delete("orders", {Row{Value::Int64(busy_order)}});
  std::printf("DELETE busy order: %s\n", r.error.c_str());

  // ...but lineitem churn flows straight through.
  r = db.Delete("lineitem", refresh.PickLineitemDeleteKeys(150));
  std::printf("DELETE 150 lineitems: %lld applied, maintenance %.2f ms\n",
              static_cast<long long>(r.rows_affected),
              r.maintenance_micros / 1000.0);

  // An UPDATE statement (delete+insert pair, §6 caveat 1 handled).
  Row some_line;
  db.catalog()->GetTable("lineitem")->ForEach([&](const Row& row) {
    if (some_line.empty()) some_line = row;
  });
  Row updated = some_line;
  updated[4] = Value::Float64(some_line[4].float64() + 1);  // l_quantity
  r = db.Update("lineitem", {Row{some_line[0], some_line[3]}}, {updated});
  std::printf("UPDATE 1 lineitem: %lld applied\n",
              static_cast<long long>(r.rows_affected));

  // Verify both views against recomputation.
  ViewMaintainer* oj = db.GetView("oj_view");
  AggViewMaintainer* agg = db.GetAggregateView("segment_revenue");
  std::string diff;
  bool oj_ok =
      ViewMatchesRecompute(*db.catalog(), oj->view_def(), oj->view(), &diff);
  std::printf("\noj_view == recompute: %s\n", oj_ok ? "yes" : diff.c_str());
  bool agg_ok = agg->MatchesRecompute(1e-9, &diff);
  std::printf("segment_revenue == recompute: %s\n",
              agg_ok ? "yes" : diff.c_str());

  // Show the dashboard.
  Relation snapshot = agg->AsRelation();
  std::vector<Row> rows = snapshot.rows();
  SortRows(&rows);
  int seg = snapshot.schema().Find("customer", "c_mktsegment");
  int cnt = snapshot.schema().Find("#agg", "row_cnt");
  int rev = snapshot.schema().Find("#agg", "revenue");
  std::printf("\nsegment_revenue:\n");
  for (const Row& row : rows) {
    std::printf("  %-12s rows=%-6s revenue=%s\n",
                row[static_cast<size_t>(seg)].ToString().c_str(),
                row[static_cast<size_t>(cnt)].ToString().c_str(),
                row[static_cast<size_t>(rev)].ToString().c_str());
  }
  return oj_ok && agg_ok ? 0 : 1;
}
