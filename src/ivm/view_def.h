#ifndef OJV_IVM_VIEW_DEF_H_
#define OJV_IVM_VIEW_DEF_H_

#include <set>
#include <string>
#include <vector>

#include "algebra/rel_expr.h"
#include "catalog/catalog.h"
#include "exec/relation.h"

namespace ojv {

/// Definition of an SPOJ view: a join tree (scans, selects, inner and
/// outer joins) plus an output column list. The projection is kept
/// outside the tree because every maintenance rewrite operates on the
/// join tree and projects at the end.
///
/// Restrictions enforced (paper §2): each base table referenced at most
/// once; every predicate conjunct references at most two tables and is
/// null-rejecting on each table it references; the output includes the
/// full unique key of every referenced table (so the view "outputs a
/// unique key" and deltas can be applied by key).
class ViewDef {
 public:
  /// Builds and validates; aborts with a diagnostic on violations.
  ViewDef(std::string name, RelExprPtr tree, std::vector<ColumnRef> output,
          const Catalog& catalog);

  const std::string& name() const { return name_; }
  const RelExprPtr& tree() const { return tree_; }
  const std::vector<ColumnRef>& output() const { return output_; }

  /// Tables referenced by the view.
  const std::set<std::string>& tables() const { return tables_; }

  /// Every atomic predicate conjunct appearing in the view (join
  /// predicates and selections).
  const std::vector<ScalarExprPtr>& conjuncts() const { return conjuncts_; }

  /// The view's output schema with table tags and key ordinals.
  const BoundSchema& output_schema() const { return output_schema_; }

  /// Complete evaluable expression: projection over the join tree.
  RelExprPtr WithProjection() const {
    return RelExpr::Project(tree_, output_);
  }

  /// The "core view" of the experiments section: same tree with every
  /// outer join replaced by an inner join.
  ViewDef CoreView(const Catalog& catalog) const;

 private:
  std::string name_;
  RelExprPtr tree_;
  std::vector<ColumnRef> output_;
  std::set<std::string> tables_;
  std::vector<ScalarExprPtr> conjuncts_;
  BoundSchema output_schema_;
};

}  // namespace ojv

#endif  // OJV_IVM_VIEW_DEF_H_
