#include "normalform/jdnf.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace ojv {
namespace {

// Attaches the conjuncts of `predicate` to `term`. Returns false (term
// must be discarded) if a conjunct references a table outside the term's
// source set: every predicate is null-rejecting, so it cannot hold on
// tuples null-extended on a referenced table.
bool ApplyPredicate(const ScalarExprPtr& predicate, Term* term) {
  for (const ScalarExprPtr& conjunct : SplitConjuncts(predicate)) {
    // Constant conjuncts (e.g. literal TRUE used for cross joins) apply
    // everywhere.
    std::set<std::string> refs = conjunct->ReferencedTables();
    for (const std::string& t : refs) {
      if (term->source.count(t) == 0) return false;
    }
    if (!refs.empty()) term->predicates.push_back(conjunct);
  }
  return true;
}

std::vector<Term> Walk(const RelExprPtr& expr) {
  switch (expr->kind()) {
    case RelKind::kScan: {
      Term t;
      t.source.insert(expr->table());
      return {t};
    }
    case RelKind::kSelect: {
      std::vector<Term> in = Walk(expr->input());
      std::vector<Term> out;
      for (Term& term : in) {
        if (ApplyPredicate(expr->predicate(), &term)) {
          out.push_back(std::move(term));
        }
      }
      return out;
    }
    case RelKind::kJoin: {
      const JoinKind kind = expr->join_kind();
      OJV_CHECK(kind == JoinKind::kInner || kind == JoinKind::kLeftOuter ||
                    kind == JoinKind::kRightOuter ||
                    kind == JoinKind::kFullOuter,
                "JDNF input must be an SPOJ tree");
      std::vector<Term> left = Walk(expr->left());
      std::vector<Term> right = Walk(expr->right());
      std::vector<Term> out;
      // "Multiplication": every cross combination that the (null-
      // rejecting) join predicate can accept.
      for (const Term& l : left) {
        for (const Term& r : right) {
          Term combined;
          combined.source = l.source;
          combined.source.insert(r.source.begin(), r.source.end());
          combined.predicates = l.predicates;
          combined.predicates.insert(combined.predicates.end(),
                                     r.predicates.begin(),
                                     r.predicates.end());
          if (ApplyPredicate(expr->predicate(), &combined)) {
            out.push_back(std::move(combined));
          }
        }
      }
      if (kind == JoinKind::kLeftOuter || kind == JoinKind::kFullOuter) {
        out.insert(out.end(), left.begin(), left.end());
      }
      if (kind == JoinKind::kRightOuter || kind == JoinKind::kFullOuter) {
        out.insert(out.end(), right.begin(), right.end());
      }
      return out;
    }
    default:
      OJV_CHECK(false, "unsupported operator in SPOJ view tree");
  }
}

// True if `conjunct` is `left.col = right.col` for the given refs in
// either order.
bool IsEqualityBetween(const ScalarExprPtr& conjunct, const ColumnRef& a,
                       const ColumnRef& b) {
  if (conjunct->kind() != ScalarKind::kCompare ||
      conjunct->compare_op() != CompareOp::kEq) {
    return false;
  }
  if (conjunct->left()->kind() != ScalarKind::kColumn ||
      conjunct->right()->kind() != ScalarKind::kColumn) {
    return false;
  }
  const ColumnRef& l = conjunct->left()->column();
  const ColumnRef& r = conjunct->right()->column();
  return (l == a && r == b) || (l == b && r == a);
}

// True when the term's predicate set contains the full FK equijoin
// child.fk_i = parent.key_i for all i.
bool TermJoinsOnForeignKey(const Term& term, const ForeignKey& fk) {
  for (size_t i = 0; i < fk.child_columns.size(); ++i) {
    ColumnRef child{fk.child_table, fk.child_columns[i]};
    ColumnRef parent{fk.parent_table, fk.parent_columns[i]};
    bool found = false;
    for (const ScalarExprPtr& conjunct : term.predicates) {
      if (IsEqualityBetween(conjunct, child, parent)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

// Structural equivalence treating column equalities as symmetric
// (a = b matches b = a).
bool PredEquivalent(const ScalarExpr& a, const ScalarExpr& b) {
  if (a.Equals(b)) return true;
  if (a.kind() == ScalarKind::kCompare && b.kind() == ScalarKind::kCompare &&
      a.compare_op() == CompareOp::kEq && b.compare_op() == CompareOp::kEq) {
    return a.left()->Equals(*b.right()) && a.right()->Equals(*b.left());
  }
  return false;
}

bool SamePredicateSet(const std::vector<ScalarExprPtr>& a,
                      const std::vector<ScalarExprPtr>& b) {
  if (a.size() != b.size()) return false;
  std::vector<bool> used(b.size(), false);
  for (const ScalarExprPtr& pa : a) {
    bool found = false;
    for (size_t i = 0; i < b.size(); ++i) {
      if (!used[i] && PredEquivalent(*pa, *b[i])) {
        used[i] = true;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

// Conjuncts of the FK equijoin for structural set comparison.
std::vector<ScalarExprPtr> FkConjuncts(const ForeignKey& fk) {
  std::vector<ScalarExprPtr> out;
  for (size_t i = 0; i < fk.child_columns.size(); ++i) {
    out.push_back(ScalarExpr::ColumnsEqual(
        ColumnRef{fk.child_table, fk.child_columns[i]},
        ColumnRef{fk.parent_table, fk.parent_columns[i]}));
  }
  return out;
}

// A term is prunable when an FK guarantees each of its tuples is
// subsumed by a tuple of the parent term source ∪ {fk.parent}: the FK
// child is in the source, the parent is not, the child's FK columns are
// NOT NULL (so every child tuple references some parent row), and the
// parent term adds exactly the FK join conjuncts — no extra predicate
// that a referenced parent row might fail.
bool TermPrunable(const Term& term, const std::vector<Term>& all,
                  const Catalog& catalog) {
  for (const ForeignKey& fk : catalog.foreign_keys()) {
    if (fk.deferrable) continue;
    if (term.source.count(fk.child_table) == 0) continue;
    if (term.source.count(fk.parent_table) > 0) continue;
    const Table* child = catalog.GetTable(fk.child_table);
    bool fk_cols_not_null = true;
    for (const std::string& c : fk.child_columns) {
      if (child->schema().column(child->schema().IndexOf(c)).nullable) {
        fk_cols_not_null = false;
      }
    }
    if (!fk_cols_not_null) continue;

    std::set<std::string> parent_source = term.source;
    parent_source.insert(fk.parent_table);
    int parent_index = FindTerm(all, parent_source);
    if (parent_index < 0) continue;
    const Term& parent = all[static_cast<size_t>(parent_index)];
    if (!TermJoinsOnForeignKey(parent, fk)) continue;

    std::vector<ScalarExprPtr> expected = term.predicates;
    std::vector<ScalarExprPtr> fk_conjuncts = FkConjuncts(fk);
    expected.insert(expected.end(), fk_conjuncts.begin(), fk_conjuncts.end());
    if (SamePredicateSet(expected, parent.predicates)) return true;
  }
  return false;
}

}  // namespace

int FindTerm(const std::vector<Term>& terms,
             const std::set<std::string>& source) {
  for (size_t i = 0; i < terms.size(); ++i) {
    if (terms[i].source == source) return static_cast<int>(i);
  }
  return -1;
}

std::vector<Term> ComputeJdnf(const RelExprPtr& tree, const Catalog& catalog,
                              const JdnfOptions& options) {
  OJV_CHECK(tree != nullptr, "null view tree");
  std::vector<Term> terms = Walk(tree);

  // Source sets must be unique (each table referenced once).
  for (size_t i = 0; i < terms.size(); ++i) {
    for (size_t j = i + 1; j < terms.size(); ++j) {
      OJV_CHECK(terms[i].source != terms[j].source,
                "duplicate term source set; self-joins are unsupported");
    }
  }

  if (options.exploit_foreign_keys) {
    // Iterate pruning to a fixpoint: removing a term never enables more
    // pruning (the test looks only at the surviving parent), but pruning
    // is cheap and a fixpoint keeps the reasoning simple.
    std::vector<Term> kept;
    for (const Term& t : terms) {
      if (!TermPrunable(t, terms, catalog)) kept.push_back(t);
    }
    if constexpr (obs::kEnabled) {
      static obs::Counter& pruned = obs::Registry::Global().GetCounter(
          "ojv.normalform.fk_pruned_terms");
      pruned.Add(static_cast<int64_t>(terms.size() - kept.size()));
    }
    terms = std::move(kept);
  }

  // Deterministic order: larger source sets first, then by label.
  std::stable_sort(terms.begin(), terms.end(),
                   [](const Term& a, const Term& b) {
                     if (a.source.size() != b.source.size()) {
                       return a.source.size() > b.source.size();
                     }
                     return a.Label() < b.Label();
                   });
  return terms;
}

}  // namespace ojv
