#include "deferred/consolidate.h"

#include <algorithm>

#include "common/check.h"

namespace ojv {
namespace deferred {
namespace {

struct RowKeyLess {
  bool operator()(const Row& a, const Row& b) const {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      int c = a[i].SortCompare(b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  }
};

/// Net state of one key while walking its entries in log order.
struct NetState {
  bool has_old = false;  // pre-image deleted from the batch's pre-state
  bool has_new = false;  // post-image present in the batch's post-state
  Row old_row;
  Row new_row;
};

Row KeyOf(const Row& row, const std::vector<int>& key_positions) {
  Row key;
  key.reserve(key_positions.size());
  for (int p : key_positions) key.push_back(row[static_cast<size_t>(p)]);
  return key;
}

TableDelta ConsolidateTable(const std::string& table,
                            const std::vector<DeltaEntry>& entries,
                            const std::vector<int>& key_positions) {
  TableDelta delta;
  delta.table = table;
  delta.first_seq = entries.front().seq;
  delta.raw_entries = static_cast<int64_t>(entries.size());

  std::map<Row, NetState, RowKeyLess> by_key;
  for (const DeltaEntry& entry : entries) {
    NetState& state = by_key[KeyOf(entry.row, key_positions)];
    if (entry.op == DeltaOp::kInsert) {
      // A second insert of a live key cannot be logged: the base table
      // rejects duplicate keys at statement time.
      OJV_CHECK(!state.has_new, "duplicate pending insert for one key");
      state.has_new = true;
      state.new_row = entry.row;
    } else {
      if (state.has_new) {
        // Deleting a row inserted within the batch: the insert never
        // reaches the view. With a pre-image too, the key collapses back
        // to a pure delete of the original row.
        state.has_new = false;
        state.new_row.clear();
      } else {
        OJV_CHECK(!state.has_old, "duplicate pending delete for one key");
        state.has_old = true;
        state.old_row = entry.row;
      }
    }
  }

  for (auto& [key, state] : by_key) {
    if (state.has_old && state.has_new && state.old_row == state.new_row) {
      // delete + reinsert of the identical row: no net effect.
      continue;
    }
    if (state.has_old && state.has_new) ++delta.update_pairs;
    if (state.has_old) delta.deletes.push_back(std::move(state.old_row));
    if (state.has_new) delta.inserts.push_back(std::move(state.new_row));
  }
  delta.cancelled =
      delta.raw_entries - static_cast<int64_t>(delta.deletes.size()) -
      static_cast<int64_t>(delta.inserts.size());
  return delta;
}

}  // namespace

std::vector<TableDelta> Consolidate(
    const std::map<std::string, std::vector<DeltaEntry>>& pending,
    const Catalog& catalog) {
  std::vector<TableDelta> deltas;
  for (const auto& [table, entries] : pending) {
    if (entries.empty()) continue;
    const Table* base = catalog.GetTable(table);
    OJV_CHECK(base != nullptr, "pending entries for unknown table");
    TableDelta delta = ConsolidateTable(table, entries, base->key_positions());
    if (delta.deletes.empty() && delta.inserts.empty()) {
      // Fully cancelled: nothing for the maintainers, but keep the raw /
      // cancelled counts visible to the caller's stats.
    }
    deltas.push_back(std::move(delta));
  }
  std::sort(deltas.begin(), deltas.end(),
            [](const TableDelta& a, const TableDelta& b) {
              return a.first_seq < b.first_seq;
            });
  return deltas;
}

}  // namespace deferred
}  // namespace ojv
