// Term utilities: labels, subset relations, expression reconstruction,
// and the net-contribution equality of Theorem 1.

#include "normalform/term.h"

#include <gtest/gtest.h>

#include "exec/evaluator.h"
#include "normalform/jdnf.h"
#include "normalform/subsumption_graph.h"
#include "test_util.h"

namespace ojv {
namespace {

TEST(TermTest, LabelAndSubset) {
  Term a;
  a.source = {"R", "S"};
  Term b;
  b.source = {"R", "S", "T"};
  EXPECT_EQ(a.Label(), "{R,S}");
  EXPECT_TRUE(a.IsStrictSubsetOf(b));
  EXPECT_FALSE(b.IsStrictSubsetOf(a));
  EXPECT_FALSE(a.IsStrictSubsetOf(a));
  Term c;
  c.source = {"R", "U"};
  EXPECT_FALSE(c.IsStrictSubsetOf(b));
}

TEST(TermTest, ToRelExprPlacesPredicatesAtFirstBindingJoin) {
  Term t;
  t.source = {"R", "S", "T"};
  t.predicates = {
      ScalarExpr::ColumnsEqual({"R", "r_a"}, {"S", "s_a"}),
      ScalarExpr::ColumnsEqual({"R", "r_b"}, {"T", "t_b"}),
      ScalarExpr::Compare(CompareOp::kGt, ScalarExpr::Column("R", "r_v"),
                          ScalarExpr::Literal(Value::Int64(0)))};
  RelExprPtr expr = t.ToRelExpr();
  // Source iterates alphabetically: R (with its single-table predicate
  // as a selection), then S (binding p(r,s)), then T (binding p(r,t)).
  EXPECT_EQ(expr->ToString(),
            "((sel[R.r_v > 0](R) join S) join T)");
}

TEST(TermTest, ToRelExprUsesCrossJoinWhenNoPredicateBinds) {
  Term t;
  t.source = {"R", "S"};
  RelExprPtr expr = t.ToRelExpr();
  EXPECT_EQ(expr->ToString(), "(R join S)");
  // Evaluates as a cross product.
  Catalog catalog;
  testing_util::CreateRstuSchema(&catalog);
  Rng rng(3);
  testing_util::PopulateRandomRstu(&catalog, &rng, 5, 3);
  Evaluator evaluator(&catalog);
  EXPECT_EQ(evaluator.Eval(expr)->size(), 25);
}

// Theorem 1: E = E1 ⊕ ... ⊕ En = D1 ⊎ ... ⊎ Dn, where Di is Ei minus the
// tuples subsumed by parent terms. We verify both representations
// evaluate to the same relation on random data.
TEST(TermTest, NetContributionFormEqualsMinimumUnion) {
  Catalog catalog;
  testing_util::CreateRstuSchema(&catalog);
  Rng rng(21);
  testing_util::PopulateRandomRstu(&catalog, &rng, 30, 4);
  ViewDef v1 = testing_util::MakeV1(catalog);
  std::vector<Term> terms = ComputeJdnf(v1.tree(), catalog);
  SubsumptionGraph graph(terms);

  Evaluator evaluator(&catalog);
  Relation minimum_union = evaluator.EvalToRelation(NormalFormRelExpr(terms));

  // Net contribution of each term: anti-join against the outer union of
  // its parents on the term's key columns (Lemma 1). We realize it by
  // evaluating each term, then removing tuples whose key combination
  // appears in a parent term's result.
  Relation net_form;
  bool first = true;
  for (size_t i = 0; i < terms.size(); ++i) {
    std::shared_ptr<const Relation> ei = evaluator.Eval(terms[i].ToRelExpr());
    // Collect parent results.
    std::vector<std::shared_ptr<const Relation>> parents;
    for (int p : graph.Parents(static_cast<int>(i))) {
      parents.push_back(
          evaluator.Eval(terms[static_cast<size_t>(p)].ToRelExpr()));
    }
    // Di = tuples of Ei whose key (all of Ei's table keys) does not
    // appear in any parent.
    Relation di(ei->schema());
    for (const Row& row : ei->rows()) {
      bool subsumed = false;
      for (const auto& parent : parents) {
        for (const Row& prow : parent->rows()) {
          bool match = true;
          for (const std::string& table : terms[i].source) {
            const std::vector<int>& kp = ei->schema().KeyPositions(table);
            const std::vector<int>& pp = parent->schema().KeyPositions(table);
            for (size_t k = 0; k < kp.size(); ++k) {
              if (row[static_cast<size_t>(kp[k])] !=
                  prow[static_cast<size_t>(pp[k])]) {
                match = false;
                break;
              }
            }
            if (!match) break;
          }
          if (match) {
            subsumed = true;
            break;
          }
        }
        if (subsumed) break;
      }
      if (!subsumed) di.Add(row);
    }
    if (first) {
      net_form = std::move(di);
      first = false;
    } else {
      net_form = Evaluator::OuterUnionOf(net_form, di);
    }
  }

  std::string diff;
  EXPECT_TRUE(SameBag(minimum_union, net_form, &diff)) << diff;
}

}  // namespace
}  // namespace ojv
