#ifndef OJV_EXEC_EXEC_CONFIG_H_
#define OJV_EXEC_EXEC_CONFIG_H_

#include <cstdint>

namespace ojv {

/// Parallelism knobs of the morsel-driven executor. The default runs
/// everything on the calling thread; num_threads > 1 turns on the
/// parallel operator variants (join build/probe, scans, dedup,
/// subsumption removal) for inputs large enough to amortize the fan-out.
///
/// Determinism: for a fixed config the parallel operators produce rows
/// in exactly the serial order — inputs are split into fixed-size
/// morsels, each morsel's output is buffered separately, and buffers are
/// concatenated in morsel index order. The only thing a thread count
/// changes is wall-clock time.
struct ExecConfig {
  /// Total worker count including the calling thread; 1 = serial.
  int num_threads = 1;
  /// Rows per morsel (scheduling granule of the parallel loops).
  int64_t morsel_rows = 2048;
  /// Inputs smaller than this stay on the serial path: fan-out overhead
  /// beats the win on tiny deltas, which are the common case for
  /// immediate maintenance.
  int64_t parallel_min_rows = 4096;
};

}  // namespace ojv

#endif  // OJV_EXEC_EXEC_CONFIG_H_
