#ifndef OJV_TPCH_TPCH_SCHEMA_H_
#define OJV_TPCH_TPCH_SCHEMA_H_

#include "catalog/catalog.h"

namespace ojv {
namespace tpch {

/// Creates the eight TPC-H tables (region, nation, supplier, part,
/// partsupp, customer, orders, lineitem) with their primary keys and the
/// standard foreign-key constraints. Column names follow the TPC-H
/// specification (l_orderkey, p_partkey, ...).
///
/// The constraints the paper's views exploit are all declared:
///   lineitem.l_orderkey -> orders.o_orderkey
///   lineitem.l_partkey  -> part.p_partkey
///   lineitem.l_suppkey  -> supplier.s_suppkey
///   orders.o_custkey    -> customer.c_custkey
///   (plus nation/region/partsupp links)
void CreateSchema(Catalog* catalog);

}  // namespace tpch
}  // namespace ojv

#endif  // OJV_TPCH_TPCH_SCHEMA_H_
