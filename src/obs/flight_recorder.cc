#include "obs/flight_recorder.h"

#include <sys/stat.h>

#include <algorithm>
#include <csignal>
#include <sstream>

#include "obs/export.h"

namespace ojv {
namespace obs {

namespace {

// Set by the SIGUSR2 handler — the only thing a signal handler may
// safely do. File-scope (not a member) so the handler needs no capture.
std::atomic<bool> g_dump_pending{false};

void HandleSigusr2(int) { g_dump_pending.store(true, std::memory_order_relaxed); }

}  // namespace

FlightRecorder::FlightRecorder() : epoch_(std::chrono::steady_clock::now()) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* instance = new FlightRecorder();  // never destroyed
  return *instance;
}

void FlightRecorder::SetEnabled(bool enabled) {
  enabled_.store(enabled, std::memory_order_relaxed);
}

bool FlightRecorder::enabled() const {
  if constexpr (!kEnabled) return false;
  return enabled_.load(std::memory_order_relaxed);
}

void FlightRecorder::SetSampleEvery(int n) {
  sample_every_.store(n < 1 ? 1 : n, std::memory_order_relaxed);
}

int FlightRecorder::sample_every() const {
  return sample_every_.load(std::memory_order_relaxed);
}

bool FlightRecorder::Sample() {
  if constexpr (!kEnabled) return false;
  if (!enabled_.load(std::memory_order_relaxed)) return false;
  int every = sample_every_.load(std::memory_order_relaxed);
  if (every <= 1) return true;
  thread_local uint64_t counter = 0;
  return (counter++ % static_cast<uint64_t>(every)) == 0;
}

int64_t FlightRecorder::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  // One ring per (thread, process): the recorder is a singleton, so a
  // plain thread_local cache is enough. Rings are registered once and
  // never freed — a dump must be able to show spans from dead threads.
  thread_local Ring* t_ring = nullptr;
  if (t_ring == nullptr) {
    t_ring = new Ring();
    std::lock_guard<std::mutex> lock(rings_mu_);
    t_ring->tid = static_cast<int>(rings_.size());
    rings_.push_back(t_ring);
  }
  return t_ring;
}

void FlightRecorder::Record(const char* name, const char* category,
                            int64_t start_micros, int64_t dur_micros) {
  if constexpr (!kEnabled) {
    (void)name;
    (void)category;
    (void)start_micros;
    (void)dur_micros;
    return;
  }
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* ring = RingForThisThread();
  uint64_t i = ring->next.fetch_add(1, std::memory_order_relaxed) %
               kRingCapacity;
  Slot& slot = ring->slots[static_cast<size_t>(i)];
  slot.category.store(category, std::memory_order_relaxed);
  slot.start_micros.store(start_micros, std::memory_order_relaxed);
  slot.dur_micros.store(dur_micros < 0 ? 0 : dur_micros,
                        std::memory_order_relaxed);
  // Name last: it doubles as the slot's "written" marker, so a reader
  // usually sees a complete event (no ordering guarantee — see class
  // comment on torn reads).
  slot.name.store(name, std::memory_order_relaxed);
}

std::vector<TraceEvent> FlightRecorder::Snapshot() const {
  std::vector<TraceEvent> out;
  if constexpr (!kEnabled) return out;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const Ring* ring : rings_) {
    for (const Slot& slot : ring->slots) {
      const char* name = slot.name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;
      TraceEvent& ev = out.emplace_back();
      ev.name = name;
      const char* cat = slot.category.load(std::memory_order_relaxed);
      ev.category = cat != nullptr ? cat : "";
      ev.start_micros = slot.start_micros.load(std::memory_order_relaxed);
      ev.dur_micros = slot.dur_micros.load(std::memory_order_relaxed);
      ev.tid = ring->tid;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_micros < b.start_micros;
            });
  return out;
}

void FlightRecorder::WriteChromeTrace(std::ostream& out) const {
  WriteChromeTraceEvents(out, Snapshot(), NowMicros());
}

bool FlightRecorder::DumpToFile(const std::string& path,
                                std::string* error) const {
  std::ostringstream body;
  WriteChromeTrace(body);
  return WriteFileAtomic(path, body.str(), error);
}

bool FlightRecorder::StartSignalDumps(const std::string& dir) {
  if constexpr (!kEnabled) {
    (void)dir;
    return false;
  }
  std::lock_guard<std::mutex> lock(dump_mu_);
  dump_dir_ = dir;
  // Best effort: dumps into a directory nobody created would silently
  // fail at the worst possible moment (post-mortem).
  ::mkdir(dir.c_str(), 0755);
  struct sigaction sa = {};
  sa.sa_handler = HandleSigusr2;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGUSR2, &sa, nullptr);
  if (!poller_.joinable()) {
    poller_stop_.store(false, std::memory_order_relaxed);
    poller_ = std::thread([this] {
      while (!poller_stop_.load(std::memory_order_relaxed)) {
        DrainPendingDump();
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
  }
  return true;
}

void FlightRecorder::StopSignalDumps() {
  if constexpr (!kEnabled) return;
  std::thread poller;
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    if (!poller_.joinable()) return;
    poller_stop_.store(true, std::memory_order_relaxed);
    poller = std::move(poller_);
  }
  poller.join();
  // The SIGUSR2 handler stays installed: with the poller gone a stray
  // signal just sets the flag instead of killing the process.
}

void FlightRecorder::RequestDump() {
  if constexpr (!kEnabled) return;
  g_dump_pending.store(true, std::memory_order_relaxed);
}

std::string FlightRecorder::DrainPendingDump() {
  if constexpr (!kEnabled) return "";
  if (!g_dump_pending.exchange(false, std::memory_order_relaxed)) return "";
  std::string path;
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    std::string dir = dump_dir_.empty() ? "." : dump_dir_;
    path = dir + "/flight-" + std::to_string(++dump_seq_) + ".json";
  }
  if (!DumpToFile(path)) return "";
  return path;
}

void FlightRecorder::ClearForTest() {
  if constexpr (!kEnabled) return;
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (Ring* ring : rings_) {
    for (Slot& slot : ring->slots) {
      slot.name.store(nullptr, std::memory_order_relaxed);
      slot.category.store(nullptr, std::memory_order_relaxed);
      slot.start_micros.store(0, std::memory_order_relaxed);
      slot.dur_micros.store(0, std::memory_order_relaxed);
    }
    ring->next.store(0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> dump_lock(dump_mu_);
  dump_seq_ = 0;
  g_dump_pending.store(false, std::memory_order_relaxed);
}

namespace flight_hook {

bool Sample() { return FlightRecorder::Global().Sample(); }

int64_t NowMicros() { return FlightRecorder::Global().NowMicros(); }

void Record(const char* name, const char* category, int64_t start_micros,
            int64_t dur_micros) {
  FlightRecorder::Global().Record(name, category, start_micros, dur_micros);
}

}  // namespace flight_hook

}  // namespace obs
}  // namespace ojv
