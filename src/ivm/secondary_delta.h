#ifndef OJV_IVM_SECONDARY_DELTA_H_
#define OJV_IVM_SECONDARY_DELTA_H_

#include <string>
#include <vector>

#include "exec/evaluator.h"
#include "exec/relation.h"
#include "ivm/materialized_view.h"
#include "ivm/view_def.h"
#include "normalform/maintenance_graph.h"
#include "normalform/term.h"
#include "obs/trace.h"
#include "opt/planner.h"

namespace ojv {

/// Where to compute the secondary delta from (paper §5.2 vs §5.3). The
/// paper notes the optimizer should choose cost-based; kAuto implements
/// that choice with a simple cardinality model, and the explicit values
/// let benchmarks compare the two plans.
enum class SecondaryStrategy {
  kAuto,            // pick per operation from estimated costs
  kFromView,        // semijoin/antijoin of ΔV^D against the view itself
  kFromBaseTables,  // recompute parent fragments from base tables
};

/// Computes and applies ΔV^I — the "clean-up" deltas of the indirectly
/// affected terms — after the primary delta has been applied to both the
/// base table and the view.
///
/// For an insertion, new parent-term tuples may subsume existing orphans,
/// which must be deleted from the view; for a deletion, removed parent
/// tuples may expose new orphans, which must be inserted.
class SecondaryDeltaEngine {
 public:
  /// All references must outlive the engine. `primary_delta` must be
  /// aligned to the view's output schema.
  SecondaryDeltaEngine(const ViewDef& view_def, const Catalog& catalog,
                       const std::vector<Term>& terms,
                       const MaintenanceGraph& graph,
                       const std::string& updated_table);

  /// Uses `cache` for base-table scans of the §5.3 expressions
  /// (optional; not owned).
  void set_table_cache(TableRelationCache* cache) { cache_ = cache; }

  /// Executor configuration for the §5.3 delta expressions; `pool` is
  /// not owned and must outlive the engine (null = serial).
  void set_exec(const ExecConfig& exec, ThreadPool* pool) {
    exec_ = exec;
    pool_ = pool;
  }

  /// Trace sink (optional; not owned). Records which strategy each
  /// apply resolved to and, for the base-table plan, the §5.3
  /// expressions' operator spans.
  void set_trace(obs::TraceContext* trace) { trace_ = trace; }

  /// Cost-based planner (optional; not owned). When set, the §5.3
  /// expressions' inner-join chains over the residual parent tables (rk)
  /// are ordered by estimated cardinality instead of name order. Null
  /// (the static default) keeps the historic name order byte-for-byte.
  void set_planner(opt::DeltaPlanner* planner) { planner_ = planner; }

  /// Processes every indirectly affected term for an insertion into the
  /// updated table. Deletes subsumed orphans from `view`; returns the
  /// number of rows deleted. `delta_t` is ΔT (used by the base-table
  /// strategy to reconstruct the pre-insert table state).
  int64_t ApplyAfterInsert(SecondaryStrategy strategy,
                           const Relation& primary_delta,
                           const Relation& delta_t, MaterializedView* view);

  /// Processes every indirectly affected term for a deletion. Inserts
  /// newly exposed orphans into `view`; returns the number inserted.
  int64_t ApplyAfterDelete(SecondaryStrategy strategy,
                           const Relation& primary_delta,
                           MaterializedView* view);

  /// Computes ΔV^I entirely from base tables (§5.3) — no access to the
  /// materialized view — for all indirectly affected terms. Rows are in
  /// the view's output schema, null-extended outside each term's source.
  /// After an insertion these are the orphans that leave the view; after
  /// a deletion, the orphans that enter it. This is the path aggregation
  /// views use (terms cannot be extracted from an aggregated view).
  std::vector<Row> CandidatesFromBaseTables(const Relation& primary_delta,
                                            const Relation& delta_t,
                                            bool is_insert);

  /// The strategy kAuto resolves to for a delta of the given size: the
  /// view plan costs O(|ΔV^D|) index probes, the base-table plan touches
  /// every parent fragment's tables, so the view wins unless the delta
  /// dwarfs them (paper §5: "usually cheaper to use the view").
  SecondaryStrategy ResolveStrategy(SecondaryStrategy requested,
                                    int64_t primary_rows) const;

 private:
  struct TermPlan {
    int term_index;
    std::vector<std::string> ti_tables;      // source of Ei, ordered
    std::vector<std::string> null_tables;    // view tables not in Ti
    // For each direct parent: its term index.
    std::vector<int> direct_parents;
    // Tables added by indirectly affected parents (for Qi).
    std::set<std::string> indirect_parent_extra;
    // Output-schema positions resolved once at construction, so the
    // per-row probe loops below never touch the schema's name→position
    // maps. A table is null-extended iff its first key column is NULL,
    // so one position per table suffices for the nn/n tests.
    std::vector<int> ti_null_probes;    // first key col of each ti table
    std::vector<int> null_table_probes;  // first key col of each null table
    // Per direct parent (index-aligned with direct_parents): first key
    // col of each of the parent's source tables, for SatisfiesPi.
    std::vector<std::vector<int>> parent_nn_probes;
    // All key columns of all ti tables, flattened, for TiKeysMatch.
    std::vector<int> ti_key_positions;
    // KeyPositions(ti_tables[0]), for the view-index probe in LookupTi.
    std::vector<int> first_ti_keys;
  };

  // --- shared helpers ---
  bool SatisfiesPi(const Row& delta_row, const TermPlan& plan) const;
  bool IsOrphanOf(const Row& view_row, const TermPlan& plan) const;
  bool TiKeysMatch(const Row& a, const Row& b, const TermPlan& plan) const;
  // View row ids with the same Ti key as `probe` (probe in view schema).
  std::vector<int64_t> LookupTi(const MaterializedView& view, const Row& probe,
                                const TermPlan& plan) const;

  // --- view-based strategy ---
  int64_t DeleteOrphansFromView(const TermPlan& plan,
                                const Relation& primary_delta,
                                MaterializedView* view);
  int64_t InsertOrphansFromView(const TermPlan& plan,
                                const Relation& primary_delta,
                                MaterializedView* view);

  // --- base-table strategy (paper §5.3) ---
  // Builds and evaluates the ΔDi expression; returns candidate Ti tuples
  // in the view's output schema (non-Ti columns null).
  std::vector<Row> ComputeFromBaseTables(const TermPlan& plan,
                                         const Relation& primary_delta,
                                         const Relation& delta_t,
                                         bool is_insert);
  // Appends to `candidates` the Si columns in `missing` — predicate-only
  // columns the view does not output — recovered by unique-key lookup
  // against the base tables. A candidate whose base row no longer exists
  // (deleted elsewhere in the same consolidated batch) is dropped: its
  // term tuple cannot survive the batch either.
  Relation EnrichCandidates(const Relation& candidates,
                            const std::vector<ColumnRef>& missing) const;
  int64_t DeleteCandidateOrphans(const std::vector<Row>& candidates,
                                 const TermPlan& plan, MaterializedView* view);
  int64_t InsertCandidateOrphans(const std::vector<Row>& candidates,
                                 const TermPlan& plan, MaterializedView* view);

  const ViewDef& view_def_;
  const Catalog& catalog_;
  const std::vector<Term>& terms_;
  const MaintenanceGraph& graph_;
  std::string updated_table_;
  std::vector<TermPlan> plans_;
  TableRelationCache* cache_ = nullptr;
  ExecConfig exec_;
  ThreadPool* pool_ = nullptr;
  obs::TraceContext* trace_ = nullptr;
  opt::DeltaPlanner* planner_ = nullptr;
};

/// Human-readable strategy name ("auto"/"from_view"/"from_base_tables").
const char* SecondaryStrategyName(SecondaryStrategy strategy);

}  // namespace ojv

#endif  // OJV_IVM_SECONDARY_DELTA_H_
