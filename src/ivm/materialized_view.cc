#include "ivm/materialized_view.h"

#include "common/check.h"

namespace ojv {
namespace {

size_t HashPositions(const Row& row, const std::vector<int>& positions) {
  size_t h = 0xcbf29ce484222325ULL;
  for (int p : positions) {
    h ^= row[static_cast<size_t>(p)].Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool AnyNullAtPositions(const Row& row, const std::vector<int>& positions) {
  for (int p : positions) {
    if (row[static_cast<size_t>(p)].is_null()) return true;
  }
  return false;
}

}  // namespace

MaterializedView::MaterializedView(BoundSchema schema)
    : schema_(std::move(schema)) {
  for (const std::string& table : schema_.Tables()) {
    const std::vector<int>& keys = schema_.KeyPositions(table);
    OJV_CHECK(!keys.empty(), "view schema must expose every table's key");
    table_keys_.emplace_back(table, keys);
    full_key_positions_.insert(full_key_positions_.end(), keys.begin(),
                               keys.end());
  }
  table_indexes_.resize(table_keys_.size());
}

size_t MaterializedView::FullKeyHash(const Row& row) const {
  return HashPositions(row, full_key_positions_);
}

bool MaterializedView::FullKeyEquals(const Row& a, const Row& b) const {
  for (int p : full_key_positions_) {
    if (a[static_cast<size_t>(p)] != b[static_cast<size_t>(p)]) return false;
  }
  return true;
}

void MaterializedView::Insert(Row row) {
  OJV_CHECK(static_cast<int>(row.size()) == schema_.num_columns(),
            "view row arity mismatch");
  size_t h = FullKeyHash(row);
  auto range = full_index_.equal_range(h);
  for (auto it = range.first; it != range.second; ++it) {
    OJV_CHECK(!FullKeyEquals(rows_[static_cast<size_t>(it->second)], row),
              "duplicate view row key");
  }
  int64_t id;
  if (!free_.empty()) {
    id = static_cast<int64_t>(free_.back());
    free_.pop_back();
    rows_[static_cast<size_t>(id)] = std::move(row);
    live_[static_cast<size_t>(id)] = 1;
  } else {
    id = static_cast<int64_t>(rows_.size());
    rows_.push_back(std::move(row));
    live_.push_back(1);
  }
  const Row& stored = rows_[static_cast<size_t>(id)];
  full_index_.emplace(h, id);
  for (size_t t = 0; t < table_keys_.size(); ++t) {
    // NULL keys are never matched by lookups (SQL equality), so rows
    // null-extended on a table are not entered into that table's index —
    // otherwise every orphan lands in one degenerate hash chain and
    // deletion becomes linear in the orphan count.
    if (!AnyNullAtPositions(stored, table_keys_[t].second)) {
      table_indexes_[t].emplace(HashPositions(stored, table_keys_[t].second),
                                id);
    }
  }
  ++live_count_;
}

bool MaterializedView::DeleteMatching(const Row& row) {
  size_t h = FullKeyHash(row);
  auto range = full_index_.equal_range(h);
  for (auto it = range.first; it != range.second; ++it) {
    int64_t id = it->second;
    if (live_[static_cast<size_t>(id)] &&
        FullKeyEquals(rows_[static_cast<size_t>(id)], row)) {
      DeleteById(id);
      return true;
    }
  }
  return false;
}

void MaterializedView::DeleteById(int64_t id) {
  OJV_CHECK(live_[static_cast<size_t>(id)], "deleting dead view row");
  const Row& row = rows_[static_cast<size_t>(id)];
  // Remove index entries.
  size_t h = FullKeyHash(row);
  auto range = full_index_.equal_range(h);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == id) {
      full_index_.erase(it);
      break;
    }
  }
  for (size_t t = 0; t < table_keys_.size(); ++t) {
    if (AnyNullAtPositions(row, table_keys_[t].second)) continue;  // unindexed
    size_t th = HashPositions(row, table_keys_[t].second);
    auto trange = table_indexes_[t].equal_range(th);
    for (auto it = trange.first; it != trange.second; ++it) {
      if (it->second == id) {
        table_indexes_[t].erase(it);
        break;
      }
    }
  }
  rows_[static_cast<size_t>(id)].clear();
  live_[static_cast<size_t>(id)] = 0;
  free_.push_back(static_cast<size_t>(id));
  --live_count_;
}

std::vector<int64_t> MaterializedView::LookupByTableKey(
    const std::string& table, const Row& probe,
    const std::vector<int>& probe_positions) const {
  std::vector<int64_t> out;
  for (int p : probe_positions) {
    if (probe[static_cast<size_t>(p)].is_null()) return out;
  }
  for (size_t t = 0; t < table_keys_.size(); ++t) {
    if (table_keys_[t].first != table) continue;
    const std::vector<int>& view_pos = table_keys_[t].second;
    OJV_CHECK(view_pos.size() == probe_positions.size(),
              "table key arity mismatch");
    size_t h = HashPositions(probe, probe_positions);
    auto range = table_indexes_[t].equal_range(h);
    for (auto it = range.first; it != range.second; ++it) {
      int64_t id = it->second;
      if (!live_[static_cast<size_t>(id)]) continue;
      const Row& row = rows_[static_cast<size_t>(id)];
      bool equal = true;
      for (size_t i = 0; i < view_pos.size(); ++i) {
        const Value& a = row[static_cast<size_t>(view_pos[i])];
        const Value& b = probe[static_cast<size_t>(probe_positions[i])];
        if (a.is_null() || b.is_null() || a != b) {
          equal = false;
          break;
        }
      }
      if (equal) out.push_back(id);
    }
    return out;
  }
  OJV_CHECK(false, "unknown table in view");
}

Relation MaterializedView::AsRelation() const {
  Relation rel(schema_);
  ForEach([&](int64_t, const Row& row) { rel.Add(row); });
  return rel;
}

}  // namespace ojv
