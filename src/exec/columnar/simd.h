#ifndef OJV_EXEC_COLUMNAR_SIMD_H_
#define OJV_EXEC_COLUMNAR_SIMD_H_

#include <cstdint>

#include "algebra/scalar_expr.h"

namespace ojv {
namespace columnar {

/// Portable explicit-SIMD layer for the columnar kernels: filter
/// compares, join-key hashing, and selection-vector gathers over
/// contiguous typed arrays.
///
/// Three backends share one contract — identical outputs at every
/// length:
///   - AVX2 (x86-64): compiled in a separate -mavx2 TU when the
///     compiler supports it and OJV_SIMD=ON; selected at process start
///     only if the CPU reports AVX2.
///   - NEON (aarch64): always available on that architecture.
///   - scalar: the reference implementation (simd_common.h formulas),
///     the fallback everywhere else and the whole story under
///     -DOJV_SIMD=OFF.
///
/// Dispatch is a per-function pointer resolved once before main() —
/// callers never branch on the backend. The kernels are deliberately
/// oblivious to NULLs: validity is applied afterwards by the caller
/// from the packed bitmaps (branch-free word ops), which keeps these
/// loops straight-line.
namespace simd {

/// Name of the backend the dispatcher selected: "avx2", "neon", or
/// "scalar". Stable for the process lifetime.
const char* BackendName();

/// True when an explicit vector backend (not scalar) is active.
bool VectorBackendActive();

/// Lane width (int64 elements per vector) of the active backend;
/// 1 for scalar. The kernel unit tests exercise lengths around this.
int LanesI64();

/// out[i] = vals[i] <op> literal ? 1 : 0, for i in [0, n).
void CmpI64Lit(const int64_t* vals, int64_t n, CompareOp op, int64_t literal,
               uint8_t* out);

/// out[i] = a[i] <op> b[i] ? 1 : 0, for i in [0, n).
void CmpI64Cols(const int64_t* a, const int64_t* b, int64_t n, CompareOp op,
                uint8_t* out);

/// out[i] = vals[i] <op> literal ? 1 : 0 (IEEE semantics; NaN compares
/// false except under kNe).
void CmpF64Lit(const double* vals, int64_t n, CompareOp op, double literal,
               uint8_t* out);

/// out[i] = Mix64(vals[i]): full-avalanche per-element hash of the
/// first (or only) key column.
void HashI64(const int64_t* vals, int64_t n, uint64_t* out);

/// inout[i] = CombineHash(inout[i], Mix64(vals[i])): folds another key
/// column into running multi-key hashes.
void HashCombineI64(const int64_t* vals, int64_t n, uint64_t* inout);

/// dst[i] = src[idx[i]]: selection-vector gather.
void GatherI64(const int64_t* src, const int32_t* idx, int64_t n,
               int64_t* dst);
void GatherF64(const double* src, const int32_t* idx, int64_t n, double* dst);

/// Scalar reference entry points (always the scalar implementation,
/// regardless of dispatch). The kernel unit tests compare the
/// dispatched functions against these at boundary lengths.
namespace scalar {
void CmpI64Lit(const int64_t* vals, int64_t n, CompareOp op, int64_t literal,
               uint8_t* out);
void CmpI64Cols(const int64_t* a, const int64_t* b, int64_t n, CompareOp op,
                uint8_t* out);
void CmpF64Lit(const double* vals, int64_t n, CompareOp op, double literal,
               uint8_t* out);
void HashI64(const int64_t* vals, int64_t n, uint64_t* out);
void HashCombineI64(const int64_t* vals, int64_t n, uint64_t* inout);
void GatherI64(const int64_t* src, const int32_t* idx, int64_t n,
               int64_t* dst);
void GatherF64(const double* src, const int32_t* idx, int64_t n, double* dst);
}  // namespace scalar

}  // namespace simd
}  // namespace columnar
}  // namespace ojv

#endif  // OJV_EXEC_COLUMNAR_SIMD_H_
