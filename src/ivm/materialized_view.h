#ifndef OJV_IVM_MATERIALIZED_VIEW_H_
#define OJV_IVM_MATERIALIZED_VIEW_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "exec/relation.h"

namespace ojv {

/// Storage for a materialized SPOJ view.
///
/// Rows are indexed by the view's unique clustered key — the
/// concatenation of every referenced table's key columns, where NULLs
/// (null-extended tables) participate as ordinary sentinel values — and
/// by a secondary hash index per table key, which is what makes the
/// paper's secondary-delta "clean-up" deletes (Q3/Q4 in §7) cheap.
class MaterializedView {
 public:
  explicit MaterializedView(BoundSchema schema);

  const BoundSchema& schema() const { return schema_; }
  int64_t size() const { return live_count_; }

  /// Inserts a row (arity must match the schema). Aborts on duplicate
  /// full key: the maintenance algebra never inserts a row twice.
  void Insert(Row row);

  /// Deletes the row whose full key matches `row`'s (only the key
  /// positions of `row` are consulted). Returns false if absent.
  bool DeleteMatching(const Row& row);

  /// Row ids whose `table` key columns equal the key columns found in
  /// `probe` at `probe_positions`. NULL keys never match (SQL equality).
  std::vector<int64_t> LookupByTableKey(const std::string& table,
                                        const Row& probe,
                                        const std::vector<int>& probe_positions) const;

  /// All live row ids whose `table` key is NULL (orphans of terms not
  /// containing `table` cannot be found this way; use scans).
  const Row& row(int64_t id) const { return rows_[static_cast<size_t>(id)]; }
  bool live(int64_t id) const { return live_[static_cast<size_t>(id)] != 0; }

  /// Deletes a row by id (must be live).
  void DeleteById(int64_t id);

  /// Snapshot as a relation (tagged with the view's schema).
  Relation AsRelation() const;

  /// Visits all live rows.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (live_[i]) fn(static_cast<int64_t>(i), rows_[i]);
    }
  }

 private:
  size_t FullKeyHash(const Row& row) const;
  bool FullKeyEquals(const Row& a, const Row& b) const;
  size_t TableKeyHash(const Row& row, const std::vector<int>& positions) const;

  BoundSchema schema_;
  std::vector<int> full_key_positions_;   // concatenated table keys
  // Per table: key positions in the view schema.
  std::vector<std::pair<std::string, std::vector<int>>> table_keys_;

  std::vector<Row> rows_;
  std::vector<char> live_;
  std::vector<size_t> free_;
  int64_t live_count_ = 0;

  std::unordered_multimap<size_t, int64_t> full_index_;
  // One secondary index per table (parallel to table_keys_).
  std::vector<std::unordered_multimap<size_t, int64_t>> table_indexes_;
};

}  // namespace ojv

#endif  // OJV_IVM_MATERIALIZED_VIEW_H_
