# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("catalog")
subdirs("algebra")
subdirs("exec")
subdirs("normalform")
subdirs("ivm")
subdirs("baseline")
subdirs("tpch")
subdirs("sql")
subdirs("io")
subdirs("matching")
