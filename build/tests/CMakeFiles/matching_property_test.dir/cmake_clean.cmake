file(REMOVE_RECURSE
  "CMakeFiles/matching_property_test.dir/matching/matching_property_test.cc.o"
  "CMakeFiles/matching_property_test.dir/matching/matching_property_test.cc.o.d"
  "matching_property_test"
  "matching_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
