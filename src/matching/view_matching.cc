#include "matching/view_matching.h"

#include <set>

#include "exec/evaluator.h"
#include "normalform/jdnf.h"
#include "obs/metrics.h"

namespace ojv {
namespace {

// Structural equivalence treating column equalities as symmetric.
bool SameConjunct(const ScalarExpr& a, const ScalarExpr& b) {
  if (a.Equals(b)) return true;
  if (a.kind() == ScalarKind::kCompare && b.kind() == ScalarKind::kCompare &&
      a.compare_op() == CompareOp::kEq && b.compare_op() == CompareOp::kEq) {
    return a.left()->Equals(*b.right()) && a.right()->Equals(*b.left());
  }
  return false;
}

// Extracts (column, op, literal) from a comparison in either orientation,
// flipping the operator when the literal is on the left.
bool AsRangeConstraint(const ScalarExpr& e, ColumnRef* column, CompareOp* op,
                       Value* literal) {
  if (e.kind() != ScalarKind::kCompare) return false;
  const ScalarExprPtr& l = e.left();
  const ScalarExprPtr& r = e.right();
  if (l->kind() == ScalarKind::kColumn && r->kind() == ScalarKind::kLiteral) {
    *column = l->column();
    *op = e.compare_op();
    *literal = r->literal();
    return true;
  }
  if (l->kind() == ScalarKind::kLiteral && r->kind() == ScalarKind::kColumn) {
    *column = r->column();
    *literal = l->literal();
    switch (e.compare_op()) {
      case CompareOp::kLt:
        *op = CompareOp::kGt;
        break;
      case CompareOp::kLe:
        *op = CompareOp::kGe;
        break;
      case CompareOp::kGt:
        *op = CompareOp::kLt;
        break;
      case CompareOp::kGe:
        *op = CompareOp::kLe;
        break;
      default:
        *op = e.compare_op();
        break;
    }
    return true;
  }
  return false;
}

// True when range constraint (c, qop, qlit) implies (c, vop, vlit):
// every value satisfying the query side satisfies the view side.
bool RangeImplies(CompareOp qop, const Value& qlit, CompareOp vop,
                  const Value& vlit) {
  int cmp = 0;
  if (!qlit.SqlCompare(vlit, &cmp)) return false;
  switch (vop) {
    case CompareOp::kLt:
      // x <op> qlit  ⇒  x < vlit
      if (qop == CompareOp::kLt) return cmp <= 0;
      if (qop == CompareOp::kLe) return cmp < 0;
      if (qop == CompareOp::kEq) return cmp < 0;
      return false;
    case CompareOp::kLe:
      if (qop == CompareOp::kLt || qop == CompareOp::kLe ||
          qop == CompareOp::kEq) {
        return cmp <= 0;
      }
      return false;
    case CompareOp::kGt:
      if (qop == CompareOp::kGt) return cmp >= 0;
      if (qop == CompareOp::kGe) return cmp > 0;
      if (qop == CompareOp::kEq) return cmp > 0;
      return false;
    case CompareOp::kGe:
      if (qop == CompareOp::kGt || qop == CompareOp::kGe ||
          qop == CompareOp::kEq) {
        return cmp >= 0;
      }
      return false;
    case CompareOp::kEq:
      return qop == CompareOp::kEq && cmp == 0;
    case CompareOp::kNe:
      if (qop == CompareOp::kNe) return cmp == 0;
      if (qop == CompareOp::kEq) return cmp != 0;
      if (qop == CompareOp::kLt || qop == CompareOp::kLe) {
        return qop == CompareOp::kLt ? cmp <= 0 : cmp < 0;
      }
      if (qop == CompareOp::kGt || qop == CompareOp::kGe) {
        return qop == CompareOp::kGt ? cmp >= 0 : cmp > 0;
      }
      return false;
  }
  return false;
}

// True when some query conjunct implies the view conjunct.
bool Implied(const ScalarExpr& view_conjunct,
             const std::vector<ScalarExprPtr>& query_conjuncts) {
  for (const ScalarExprPtr& q : query_conjuncts) {
    if (SameConjunct(view_conjunct, *q)) return true;
  }
  ColumnRef vcol, qcol;
  CompareOp vop, qop;
  Value vlit, qlit;
  if (!AsRangeConstraint(view_conjunct, &vcol, &vop, &vlit)) return false;
  for (const ScalarExprPtr& q : query_conjuncts) {
    if (AsRangeConstraint(*q, &qcol, &qop, &qlit) && qcol == vcol &&
        RangeImplies(qop, qlit, vop, vlit)) {
      return true;
    }
  }
  return false;
}

// nn(t) / n(t) over the view's output key columns.
ScalarExprPtr KeyIsNull(const BoundSchema& schema, const std::string& table,
                        bool want_null) {
  const std::vector<int>& keys = schema.KeyPositions(table);
  const BoundColumn& col = schema.column(keys[0]);
  ScalarExprPtr test =
      ScalarExpr::IsNull(ScalarExpr::Column(col.table, col.column));
  return want_null ? test : ScalarExpr::Not(test);
}

MatchResult MatchViewImpl(const ViewDef& query, const ViewDef& view,
                          const Catalog& catalog) {
  MatchResult result;
  if (query.tables() != view.tables()) {
    result.reason = "query and view reference different table sets";
    return result;
  }

  // Normal forms. FK pruning must agree between the two, so use the same
  // options for both (pruned terms are empty either way).
  std::vector<Term> query_terms = ComputeJdnf(query.tree(), catalog);
  std::vector<Term> view_terms = ComputeJdnf(view.tree(), catalog);

  // Condition 2: every query term backed by a view term, implied preds.
  for (const Term& qt : query_terms) {
    int vi = FindTerm(view_terms, qt.source);
    if (vi < 0) {
      result.reason = "view lacks term " + qt.Label();
      return result;
    }
    const Term& vt = view_terms[static_cast<size_t>(vi)];
    for (const ScalarExprPtr& v : vt.predicates) {
      if (!Implied(*v, qt.predicates)) {
        result.reason = "view term " + vt.Label() +
                        " filters on " + v->ToString() +
                        " which the query does not imply";
        return result;
      }
    }
  }

  // Condition 3: dropped view terms must not hide retained subsets —
  // pattern-rejecting a term's rows loses the subsumed narrower tuples
  // a retained subset term would need, which requires [6]'s null-if
  // compensation to resurrect. For queries over the *same* table set
  // this cannot actually arise: outer-join weakening (fo→lo→⋈) drops
  // the preserved side's terms — always the *smaller* sources — and a
  // null-rejecting selection drops the terms not covering its columns,
  // again smaller ones; no SPOJ rewrite of the same tree drops a
  // superset while keeping a strict subset. The check is therefore a
  // safeguard (e.g. against hand-built term lists), not a live path.
  std::vector<const Term*> dropped;
  for (const Term& vt : view_terms) {
    if (FindTerm(query_terms, vt.source) < 0) dropped.push_back(&vt);
  }
  for (const Term* d : dropped) {
    for (const Term& qt : query_terms) {
      if (qt.IsStrictSubsetOf(*d)) {
        result.reason =
            "dropping view term " + d->Label() + " would hide tuples of " +
            qt.Label() + " (null-if compensation not supported)";
        return result;
      }
    }
  }

  // Compensation conjuncts: query conjuncts with no syntactic twin in
  // the view. Condition 4: they may only reference core tables.
  std::set<std::string> core = query_terms.empty()
                                   ? std::set<std::string>{}
                                   : query_terms[0].source;
  for (const Term& qt : query_terms) {
    std::set<std::string> next;
    for (const std::string& t : core) {
      if (qt.source.count(t) > 0) next.insert(t);
    }
    core = std::move(next);
  }
  std::vector<ScalarExprPtr> extra;
  for (const ScalarExprPtr& q : query.conjuncts()) {
    bool in_view = false;
    for (const ScalarExprPtr& v : view.conjuncts()) {
      if (SameConjunct(*q, *v)) {
        in_view = true;
        break;
      }
    }
    if (in_view) continue;
    for (const std::string& t : q->ReferencedTables()) {
      if (core.count(t) == 0) {
        result.reason = "compensation predicate " + q->ToString() +
                        " references " + t +
                        ", which is null-extended in some retained term";
        return result;
      }
    }
    extra.push_back(q);
  }

  // Condition 5: column availability.
  const BoundSchema& vout = view.output_schema();
  for (const ColumnRef& ref : query.output()) {
    if (vout.Find(ref) < 0) {
      result.reason = "view does not output " + ref.ToString();
      return result;
    }
  }
  std::vector<ColumnRef> needed;
  for (const ScalarExprPtr& e : extra) e->CollectColumns(&needed);
  for (const ColumnRef& ref : needed) {
    if (vout.Find(ref) < 0) {
      result.reason = "view does not output " + ref.ToString() +
                      " needed by the compensation";
      return result;
    }
  }

  // Build the rewrite: pattern acceptance ∧ extra conjuncts, projected.
  RelExprPtr expr = RelExpr::DeltaScan("#view");
  if (!dropped.empty() || !extra.empty()) {
    std::vector<ScalarExprPtr> acceptance;
    if (!dropped.empty()) {
      std::vector<ScalarExprPtr> patterns;
      for (const Term& qt : query_terms) {
        std::vector<ScalarExprPtr> tests;
        for (const std::string& t : view.tables()) {
          tests.push_back(
              KeyIsNull(vout, t, /*want_null=*/qt.source.count(t) == 0));
        }
        patterns.push_back(ScalarExpr::And(std::move(tests)));
      }
      acceptance.push_back(ScalarExpr::Or(std::move(patterns)));
    }
    acceptance.insert(acceptance.end(), extra.begin(), extra.end());
    expr = RelExpr::Select(expr, MakeConjunction(std::move(acceptance)));
  }
  result.rewrite = RelExpr::Project(expr, query.output());
  result.matched = true;
  return result;
}

}  // namespace

MatchResult MatchView(const ViewDef& query, const ViewDef& view,
                      const Catalog& catalog) {
  MatchResult result = MatchViewImpl(query, view, catalog);
  if constexpr (obs::kEnabled) {
    static obs::Counter& attempts =
        obs::Registry::Global().GetCounter("ojv.matching.attempts");
    static obs::Counter& matched =
        obs::Registry::Global().GetCounter("ojv.matching.matched");
    static obs::Counter& rejected =
        obs::Registry::Global().GetCounter("ojv.matching.rejected");
    attempts.Add(1);
    (result.matched ? matched : rejected).Add(1);
  }
  return result;
}

std::optional<Relation> AnswerFromView(const ViewDef& query,
                                       const ViewDef& view,
                                       const MaterializedView& contents,
                                       const Catalog& catalog) {
  MatchResult match = MatchView(query, view, catalog);
  if (!match.matched) return std::nullopt;
  Relation view_relation = contents.AsRelation();
  Evaluator evaluator(&catalog);
  evaluator.BindDelta("#view", &view_relation);
  return evaluator.EvalToRelation(match.rewrite);
}

std::optional<Relation> AnswerFromDatabase(const ViewDef& query, Database* db,
                                           std::string* matched_view) {
  for (ViewMaintainer* maintainer : db->Views()) {
    std::optional<Relation> answer = AnswerFromView(
        query, maintainer->view_def(), maintainer->view(), *db->catalog());
    if (answer.has_value()) {
      if (matched_view != nullptr) {
        *matched_view = maintainer->view_def().name();
      }
      return answer;
    }
  }
  return std::nullopt;
}

}  // namespace ojv
