#ifndef OJV_OBS_HTTP_SERVER_H_
#define OJV_OBS_HTTP_SERVER_H_

#include <atomic>
#include <string>
#include <thread>

#include "obs/obs_config.h"

namespace ojv {
namespace obs {

/// Tiny embedded HTTP/1.0 endpoint for scraping live telemetry:
///
///   GET /metrics        Prometheus text exposition (WritePrometheus)
///   GET /snapshot.json  registry JSON snapshot (WriteSnapshotJson)
///   GET /flight.json    flight-recorder Chrome trace (WriteChromeTrace)
///
/// One blocking accept loop on a background thread, one request per
/// connection, no keep-alive, no TLS — it serves a scraper on
/// localhost, not the internet. Start it from tools and benches that
/// want live observation (`bench_deferred --metrics-port=9464`); the
/// library never starts it on its own.
///
/// Under -DOJV_OBS=OFF, Start() is a constant-false no-op: no socket,
/// no thread.
class HttpExportServer {
 public:
  HttpExportServer() = default;
  ~HttpExportServer() { Stop(); }

  HttpExportServer(const HttpExportServer&) = delete;
  HttpExportServer& operator=(const HttpExportServer&) = delete;

  /// Binds 127.0.0.1:<port> (0 = kernel-assigned ephemeral port, read
  /// it back from port()) and starts the accept thread. Returns false
  /// if the bind fails or observability is compiled out.
  bool Start(int port);

  /// Closes the listening socket (unblocking accept) and joins the
  /// thread. Idempotent.
  void Stop();

  bool running() const { return listen_fd_.load() >= 0; }
  /// The bound port, 0 when not running.
  int port() const { return port_; }

 private:
  void Serve();
  void Handle(int client_fd);

  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::thread thread_;
};

}  // namespace obs
}  // namespace ojv

#endif  // OJV_OBS_HTTP_SERVER_H_
