// ojv_trace: replay a TPC-H maintenance workload with tracing on and
// export what happened.
//
//   ojv_trace [--sf=0.01] [--seed=N] [--out=DIR] [--check]
//
// Builds a small TPC-H instance inside a Database with two views —
// the experiment view V3 (immediate maintenance) and the Example 1
// outer-join view (deferred, refreshed on demand) — attaches one
// TraceContext to the whole pipeline, and replays a mixed workload:
// order + lineitem inserts, lineitem deletes, an order update, and an
// explicit deferred refresh. It then prints the annotated
// EXPLAIN-with-stats for V3 and writes
//
//   DIR/trace.json   Chrome trace_event JSON — load in chrome://tracing
//                    or https://ui.perfetto.dev
//   DIR/stats.json   flat per-stage aggregates + the metric registry
//
// --check additionally asserts the trace contains the expected stage
// set (used by the obs stage of tools/check.sh); the exit code reports
// the result.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/date.h"
#include "deferred/admission.h"
#include "ivm/database.h"
#include "ivm/explain.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tpch/dbgen.h"
#include "tpch/refresh.h"
#include "tpch/tpch_schema.h"
#include "tpch/views.h"

namespace ojv {
namespace {

struct Options {
  double scale_factor = 0.01;
  uint64_t seed = 19940601;
  std::string out_dir = ".";
  bool check = false;
};

Options ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--sf=", 5) == 0) {
      options.scale_factor = std::atof(arg + 5);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      options.out_dir = arg + 6;
    } else if (std::strcmp(arg, "--check") == 0) {
      options.check = true;
    } else {
      std::fprintf(stderr,
                   "usage: ojv_trace [--sf=D] [--seed=N] [--out=DIR]"
                   " [--check]\n");
      std::exit(2);
    }
  }
  return options;
}

/// Overlapping deferred views forming one shared-plan group: both share
/// the Δorders first delta step (the same date filter over the orders
/// scan, joined to an unfiltered customer side); the second view widens
/// to lineitem so the suffixes differ. Mirrors bench_multiview's
/// cluster shape at trace scale.
ViewDef MakeSharedView(const Catalog& catalog, int index) {
  auto col = [](const char* table, const char* column) {
    return ScalarExpr::Column(table, column);
  };
  RelExprPtr orders_side = RelExpr::Select(
      RelExpr::Scan("orders"),
      ScalarExpr::Compare(
          CompareOp::kGe, col("orders", "o_orderdate"),
          ScalarExpr::Literal(Value::Date(ParseDate("1993-01-01")))));
  RelExprPtr tree = RelExpr::Join(
      JoinKind::kLeftOuter, RelExpr::Scan("customer"), std::move(orders_side),
      ScalarExpr::Compare(CompareOp::kEq, col("customer", "c_custkey"),
                          col("orders", "o_custkey")));
  std::vector<ColumnRef> output = {{"customer", "c_custkey"},
                                   {"customer", "c_acctbal"},
                                   {"orders", "o_orderkey"},
                                   {"orders", "o_custkey"},
                                   {"orders", "o_orderdate"}};
  if (index % 2 == 1) {
    tree = RelExpr::Join(JoinKind::kLeftOuter, std::move(tree),
                         RelExpr::Scan("lineitem"),
                         ScalarExpr::Compare(CompareOp::kEq,
                                             col("orders", "o_orderkey"),
                                             col("lineitem", "l_orderkey")));
    output.push_back({"lineitem", "l_orderkey"});
    output.push_back({"lineitem", "l_linenumber"});
    output.push_back({"lineitem", "l_quantity"});
  }
  return ViewDef("mv_shared" + std::to_string(index), std::move(tree),
                 std::move(output), catalog);
}

int CheckTrace(const obs::TraceContext& trace) {
  int failures = 0;
  auto require = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "CHECK FAILED: %s\n", what);
      ++failures;
    }
  };
  // The stage set an insert/delete/update/refresh workload must produce.
  for (const char* span : {"db.insert", "db.delete", "db.update",
                           "ivm.maintain", "ivm.primary_delta", "ivm.apply",
                           "exec.delta_scan", "exec.join", "deferred.refresh",
                           "ivm.init_view"}) {
    require(trace.HasSpan(span), span);
    if (trace.HasSpan(span)) {
      require(trace.StageMicros(span) > 0,
              (std::string(span) + " has zero duration").c_str());
    }
  }
  // Normalization spans must be present (their durations can round to
  // zero microseconds on small views, so only presence is required).
  for (const char* span : {"ivm.plan.jdnf", "ivm.plan.table"}) {
    require(trace.HasSpan(span), span);
  }
  // PR 5-6 spans: admission decisions and the shared-prefix group
  // refresh must show up for the multiview/admission tail of the
  // workload. Presence-only — tiny batches round to zero micros.
  for (const char* span : {"deferred.admission", "multiview.group_refresh",
                           "multiview.shared_prefix"}) {
    require(trace.HasSpan(span), span);
  }
  // Theorem 3 prunes the secondary delta of V3's lineitem updates: the
  // trace must say so explicitly rather than just omit the stage.
  require(trace.HasSpan("ivm.secondary_delta.skipped"),
          "ivm.secondary_delta.skipped");
  // Operator row accounting: every primary delta's rows_out is the
  // rows_out of its plan root, so the sums must agree with what the
  // maintainers reported upward.
  require(trace.ArgSum("ivm.maintain", "rows_out") >= 0, "rows_out sums");
  require(trace.SpanCount("exec.join") > 0, "at least one traced join");
  return failures;
}

int Run(int argc, char** argv) {
  Options options = ParseArgs(argc, argv);

  Database db;
  tpch::CreateSchema(db.catalog());
  tpch::DbgenOptions dbgen_options;
  dbgen_options.scale_factor = options.scale_factor;
  dbgen_options.seed = options.seed;
  tpch::Dbgen dbgen(dbgen_options);
  dbgen.Populate(db.catalog());
  tpch::RefreshStream refresh(db.catalog(), &dbgen, options.seed + 1);

  // Attach the trace before the views exist so normalization (JDNF,
  // maintenance-graph classification) and initial computation are
  // captured too — new views inherit the database's trace.
  obs::TraceContext trace;
  db.set_trace(&trace);

  // V3 is maintained inside every statement; the Example 1 view runs
  // deferred so the trace also exercises the log + consolidation path.
  ViewMaintainer* v3 = db.CreateMaterializedView(tpch::MakeV3(*db.catalog()));
  db.CreateMaterializedView(tpch::MakeOjView(*db.catalog()));
  db.SetRefreshPolicy("oj_view", deferred::RefreshPolicy::kOnDemand);

  // --- the workload -----------------------------------------------------
  std::vector<Row> orders = refresh.NewOrders(20);
  db.Insert("orders", orders);
  db.Insert("lineitem", refresh.NewLineitemsFor(orders, 3));
  // New parts populate V3's {part} orphan term directly; the term has no
  // indirectly affected children, so the trace records the secondary
  // delta as explicitly skipped.
  db.Insert("part", refresh.NewParts(10));
  db.Delete("lineitem", refresh.PickLineitemDeleteKeys(30));

  // An UPDATE statement: bump the total price of the new orders.
  std::vector<Row> keys;
  std::vector<Row> new_rows;
  for (const Row& row : orders) {
    keys.push_back(Row{row[0]});
    Row updated = row;
    updated[3] = Value::Float64(row[3].float64() * 1.1);
    new_rows.push_back(std::move(updated));
  }
  db.Update("orders", keys, new_rows);

  // Bring the deferred view up to date: consolidation + batched replay.
  db.Refresh("oj_view");

  // --- multiview + admission tail ---------------------------------------
  // Two overlapping deferred views cluster into one shared-plan group;
  // refreshing a member under kShared drains the group through the
  // shared Δorders prefix (multiview.group_refresh +
  // multiview.shared_prefix spans).
  db.SetMultiviewMode(MultiviewMode::kShared);
  for (int i = 0; i < 2; ++i) {
    ViewDef def = MakeSharedView(*db.catalog(), i);
    const std::string name = def.name();
    db.CreateMaterializedView(std::move(def));
    db.SetRefreshPolicy(name, deferred::RefreshPolicy::kOnDemand);
  }
  db.Insert("orders", refresh.NewOrders(20));
  db.Refresh("mv_shared0");

  // Admission control on, with a pending threshold the next statement
  // trips: the due-view scan goes through AdmitAndRefresh, recording a
  // deferred.admission span with the plan's audit args.
  deferred::AdmissionConfig admission;
  admission.enabled = true;
  db.SetAdmissionControl(admission);
  deferred::ThresholdConfig tight;
  tight.max_pending_rows = 1;
  db.SetRefreshPolicy("mv_shared0", deferred::RefreshPolicy::kThreshold,
                      tight);
  db.Insert("orders", refresh.NewOrders(2));

  db.set_trace(nullptr);

  // --- outputs ----------------------------------------------------------
  std::printf("%s\n", ExplainMaintenance(*v3, trace).c_str());

  const std::string trace_path = options.out_dir + "/trace.json";
  const std::string stats_path = options.out_dir + "/stats.json";
  {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    trace.WriteChromeTrace(out);
  }
  {
    std::ofstream out(stats_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", stats_path.c_str());
      return 1;
    }
    trace.WriteStatsJson(out);
  }
  std::printf("wrote %s (%zu events) and %s\n", trace_path.c_str(),
              trace.event_count(), stats_path.c_str());

  // Live-telemetry artifacts: the exporter's snapshot files (the input
  // ojv_top reads in --file mode) and a flight-recorder dump in the
  // same Chrome format as trace.json.
  std::string export_error;
  if (!obs::WriteSnapshotFiles(obs::Registry::Global(), options.out_dir,
                               &export_error)) {
    std::fprintf(stderr, "%s\n", export_error.c_str());
    return 1;
  }
  if (!obs::FlightRecorder::Global().DumpToFile(
          options.out_dir + "/flight.json", &export_error)) {
    std::fprintf(stderr, "%s\n", export_error.c_str());
    return 1;
  }
  std::printf("wrote %s/{metrics.prom, snapshot.json, flight.json}\n",
              options.out_dir.c_str());

  if (options.check) {
    if (!obs::kEnabled) {
      std::printf("OJV_OBS=OFF build: trace is empty by design, check"
                  " skipped\n");
      return 0;
    }
    int failures = CheckTrace(trace);
    if (obs::FlightRecorder::Global().Snapshot().empty()) {
      std::fprintf(stderr, "CHECK FAILED: flight recorder saw no spans\n");
      ++failures;
    }
    if (failures != 0) {
      std::fprintf(stderr, "%d trace check(s) failed\n", failures);
      return 1;
    }
    std::printf("trace checks passed\n");
  }
  return 0;
}

}  // namespace
}  // namespace ojv

int main(int argc, char** argv) { return ojv::Run(argc, argv); }
