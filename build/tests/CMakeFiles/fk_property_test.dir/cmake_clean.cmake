file(REMOVE_RECURSE
  "CMakeFiles/fk_property_test.dir/ivm/fk_property_test.cc.o"
  "CMakeFiles/fk_property_test.dir/ivm/fk_property_test.cc.o.d"
  "fk_property_test"
  "fk_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fk_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
