// Refresh admission control: scheduler Due() gates (staleness-only
// thresholds, the pending==0 gate), the AdmissionController state
// machine (hysteresis, staleness-debt priority, bounded backoff,
// promotion on staleness drift), and the Database integration — with
// the controller disabled the refresh schedule must be byte-for-byte
// the schedule the legacy scan produces. The interplay test at the
// bottom runs the BackgroundRefresher against the controller and is
// part of the tsan stage of tools/check.sh.

#include "deferred/admission.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "deferred/scheduler.h"
#include "ivm/database.h"
#include "test_util.h"

namespace ojv {
namespace deferred {
namespace {

// --- RefreshScheduler::Due() gates ---------------------------------

TEST(RefreshSchedulerDueTest, StalenessOnlyThreshold) {
  RefreshScheduler s;
  ThresholdConfig config;
  config.max_pending_rows = 0;  // row limit disabled
  config.max_staleness_micros = 1000;
  s.SetPolicy("v", RefreshPolicy::kThreshold, config);

  EXPECT_FALSE(s.Due("v", 5, 999));
  EXPECT_TRUE(s.Due("v", 5, 1000));
  EXPECT_TRUE(s.Due("v", 1, 5000));
}

TEST(RefreshSchedulerDueTest, NothingPendingIsNeverDue) {
  RefreshScheduler s;
  ThresholdConfig config;
  config.max_pending_rows = 0;
  config.max_staleness_micros = 1;
  s.SetPolicy("v", RefreshPolicy::kThreshold, config);

  // Staleness is measured on pending log entries; with none pending the
  // view cannot be stale, whatever the staleness figure says.
  EXPECT_FALSE(s.Due("v", 0, 1e9));
  EXPECT_FALSE(s.Due("v", -3, 1e9));
}

TEST(RefreshSchedulerDueTest, NonThresholdPoliciesAreNeverDue) {
  RefreshScheduler s;
  ThresholdConfig config;
  config.max_pending_rows = 1;
  s.SetPolicy("od", RefreshPolicy::kOnDemand, config);
  EXPECT_FALSE(s.Due("od", 100, 1e9));
  EXPECT_FALSE(s.Due("unknown", 100, 1e9));
}

TEST(RefreshSchedulerReportTest, LongViewNamesStayAligned) {
  RefreshScheduler s;
  const std::string long_name = "a_view_name_much_longer_than_18_chars";
  s.SetPolicy("v", RefreshPolicy::kThreshold, ThresholdConfig{});
  s.SetPolicy(long_name, RefreshPolicy::kOnDemand, ThresholdConfig{});
  RefreshStats stats;
  stats.raw_entries = 5;
  stats.consolidated_rows = 3;
  stats.refresh_micros = 1500;
  stats.staleness_micros = 2500;
  s.RecordRefresh(long_name, stats);

  const std::string report = s.Report();
  // Every row's policy column starts where the header's does, even with
  // a 37-char view name (the old fixed %-18s layout broke here).
  std::vector<std::string> lines;
  size_t start = 0;
  for (size_t nl = report.find('\n'); nl != std::string::npos;
       nl = report.find('\n', start)) {
    lines.push_back(report.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 3u);
  const size_t policy_col = lines[0].find("policy");
  ASSERT_NE(policy_col, std::string::npos);
  for (size_t i = 1; i < lines.size(); ++i) {
    const bool od = lines[i].find("on-demand") != std::string::npos;
    EXPECT_EQ(lines[i].find(od ? "on-demand" : "threshold"), policy_col)
        << "misaligned row: " << lines[i];
  }
  // The new staleness column is present and carries the recorded value.
  EXPECT_NE(lines[0].find("staleness-ms"), std::string::npos);
  EXPECT_NE(lines[1].find("2.50"), std::string::npos);
}

// --- AdmissionController unit tests --------------------------------

AdmissionConfig DepthDrivenConfig() {
  // Load score driven purely by delta-log depth: latency budgets are
  // huge so those signals stay ~0 and tests are deterministic.
  AdmissionConfig config;
  config.enabled = true;
  config.statement_budget_micros = 1'000'000'000;
  config.refresh_budget_micros = 1'000'000'000;
  config.log_depth_budget_rows = 100;
  config.enter_hot = 1.0;
  config.exit_hot = 0.5;
  config.hot_slice = 1;
  config.backoff_initial_micros = 1000;
  config.backoff_max_micros = 4000;
  return config;
}

DueView DV(const char* name, int64_t pending, double staleness,
           double max_staleness = 0, double ceiling = 0) {
  DueView v;
  v.name = name;
  v.pending_rows = pending;
  v.staleness_micros = staleness;
  v.max_staleness_micros = max_staleness;
  v.staleness_ceiling_micros = ceiling;
  return v;
}

TEST(AdmissionControllerTest, HysteresisDoesNotFlap) {
  AdmissionController c(DepthDrivenConfig());
  EXPECT_FALSE(c.hot());

  // Below enter_hot: stays cold.
  EXPECT_FALSE(c.Plan({}, /*log_depth=*/50, /*now=*/0).hot);
  EXPECT_EQ(c.hot_transitions(), 0);

  // Crosses enter_hot (score 1.0): one transition.
  EXPECT_TRUE(c.Plan({}, 100, 0).hot);
  EXPECT_EQ(c.hot_transitions(), 1);

  // Score drops into the hysteresis band (0.5 < 0.6 < 1.0): still hot —
  // this is exactly the flap a single threshold would produce.
  EXPECT_TRUE(c.Plan({}, 60, 0).hot);
  EXPECT_EQ(c.hot_transitions(), 1);

  // At or below exit_hot: cold again.
  EXPECT_FALSE(c.Plan({}, 50, 0).hot);

  // And a second excursion counts a second transition.
  EXPECT_TRUE(c.Plan({}, 200, 0).hot);
  EXPECT_EQ(c.hot_transitions(), 2);
}

TEST(AdmissionControllerTest, ColdAdmitsEverythingInScanOrder) {
  AdmissionController c(DepthDrivenConfig());
  AdmissionPlan plan =
      c.Plan({DV("a", 10, 100), DV("b", 5, 900), DV("c", 1, 50)}, 0, 0);
  EXPECT_FALSE(plan.hot);
  EXPECT_EQ(plan.admitted, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(plan.deferred.empty());
  EXPECT_TRUE(plan.promoted.empty());
  EXPECT_EQ(c.deferred_total(), 0);
}

TEST(AdmissionControllerTest, HotSliceDrainsByStalenessDebt) {
  AdmissionController c(DepthDrivenConfig());
  // "a" is more stale in absolute terms but has a loose tolerance;
  // "b" has burned 2x its own staleness budget. Debt ranks b first.
  AdmissionPlan plan = c.Plan(
      {DV("a", 10, /*staleness=*/5000, /*max_staleness=*/100'000),
       DV("b", 1, /*staleness=*/2000, /*max_staleness=*/1000)},
      /*log_depth=*/500, /*now=*/0);
  EXPECT_TRUE(plan.hot);
  EXPECT_EQ(plan.admitted, (std::vector<std::string>{"b"}));
  EXPECT_EQ(plan.deferred, (std::vector<std::string>{"a"}));
  EXPECT_EQ(c.deferred_total(), 1);
}

TEST(AdmissionControllerTest, BackoffDoublesAndIsCapped) {
  AdmissionController c(DepthDrivenConfig());  // initial 1000, cap 4000
  const DueView a = DV("a", 1, 1000);
  const DueView b = DV("b", 1, 2'000'000);  // always outranks a on debt
  const int64_t depth = 500;                // keeps the controller hot

  // t=0: slice goes to b; a starts backing off (1000us).
  AdmissionPlan plan = c.Plan({a, b}, depth, 0);
  EXPECT_EQ(plan.admitted, (std::vector<std::string>{"b"}));
  EXPECT_EQ(plan.deferred, (std::vector<std::string>{"a"}));

  // t=500: inside the backoff window, a is not even a candidate — it
  // would have been admitted (alone, slice=1) otherwise.
  plan = c.Plan({a}, depth, 500);
  EXPECT_TRUE(plan.admitted.empty());
  EXPECT_EQ(plan.deferred, (std::vector<std::string>{"a"}));

  // t=1000: backoff expired; a competes, loses to b, backs off 2000us.
  plan = c.Plan({a, b}, depth, 1000);
  EXPECT_EQ(plan.deferred, (std::vector<std::string>{"a"}));

  // t=2500: if the backoff had stayed at 1000us it would have expired
  // at t=3000... (1000 + 2000) — a still backed off proves doubling.
  plan = c.Plan({a}, depth, 2500);
  EXPECT_TRUE(plan.admitted.empty());

  // t=3000 and t=7000: two more losses; backoff hits the 4000us cap.
  c.Plan({a, b}, depth, 3000);
  plan = c.Plan({a}, depth, 6999);
  EXPECT_TRUE(plan.admitted.empty());  // still inside 3000+4000
  c.Plan({a, b}, depth, 7000);

  // Without the cap the next consideration would be 7000+8000=15000.
  // With it, a is reconsidered (and, alone, admitted) at 7000+4000.
  plan = c.Plan({a}, depth, 11'000);
  EXPECT_EQ(plan.admitted, (std::vector<std::string>{"a"}));
}

TEST(AdmissionControllerTest, StalenessDriftPromotesPastLoadGate) {
  AdmissionConfig config = DepthDrivenConfig();
  config.hot_slice = 0;  // while hot, nothing gets in on load alone
  AdmissionController c(config);

  // Hot, no ceiling: deferred.
  AdmissionPlan plan = c.Plan({DV("a", 1, 5000)}, 500, 0);
  EXPECT_TRUE(plan.hot);
  EXPECT_EQ(plan.deferred, (std::vector<std::string>{"a"}));

  // Hot, ceiling configured and the recent staleness percentile sits
  // past it: promoted and refreshed regardless of load.
  plan = c.Plan({DV("b", 1, 20'000, 0, /*ceiling=*/10'000)}, 500, 0);
  EXPECT_TRUE(plan.hot);
  EXPECT_EQ(plan.admitted, (std::vector<std::string>{"b"}));
  EXPECT_EQ(plan.promoted, (std::vector<std::string>{"b"}));
  EXPECT_EQ(c.promoted_total(), 1);

  // Ceiling configured but staleness well under it: no promotion.
  plan = c.Plan({DV("c", 1, 10, 0, /*ceiling=*/1'000'000'000)}, 500, 0);
  EXPECT_TRUE(plan.promoted.empty());
  EXPECT_EQ(plan.deferred, (std::vector<std::string>{"c"}));

  EXPECT_GE(c.StalenessPercentile("b", 99, 0), 20'000);
}

TEST(AdmissionControllerTest, PromotionNotDilutedByFrequentSmallSamples) {
  AdmissionConfig config = DepthDrivenConfig();
  config.hot_slice = 0;
  AdmissionController c(config);

  // A hot phase scans the due view often while its staleness is still
  // tiny: 200 low samples land in the window.
  for (int i = 0; i < 200; ++i) {
    c.Plan({DV("a", 1, /*staleness=*/100, 0, /*ceiling=*/10'000)}, 500,
           /*now=*/i * 10);
  }
  EXPECT_EQ(c.promoted_total(), 0);

  // Now the backlog has aged to 9ms (bucket bound 16384 >= ceiling).
  // The windowed p99 is still dominated by the 200 small samples, but
  // the instantaneous observation alone must trigger the promotion —
  // staleness is monotone, so the freshest sample is the tightest bound.
  AdmissionPlan plan =
      c.Plan({DV("a", 1, 9'000, 0, 10'000)}, 500, /*now=*/3000);
  EXPECT_EQ(plan.promoted, (std::vector<std::string>{"a"}));
  EXPECT_EQ(c.promoted_total(), 1);
}

TEST(AdmissionControllerTest, ForgetClearsBackoffState) {
  AdmissionConfig config = DepthDrivenConfig();
  config.hot_slice = 0;
  AdmissionController c(config);
  c.Plan({DV("a", 1, 100)}, 500, 0);  // hot -> a backs off
  EXPECT_EQ(c.deferred_total(), 1);

  c.Forget("a");
  // Re-created state has no backoff gate: a is a candidate again at the
  // same instant (still deferred by the zero slice, but as a fresh
  // deferral, which restarts at the initial backoff).
  AdmissionPlan plan = c.Plan({DV("a", 1, 100)}, 500, 0);
  EXPECT_EQ(plan.deferred, (std::vector<std::string>{"a"}));
  plan = c.Plan({DV("a", 1, 100)}, 500, config.backoff_initial_micros);
  // One initial backoff after the post-Forget deferral, the view is a
  // candidate again — proof the doubled pre-Forget backoff was dropped.
  EXPECT_EQ(plan.deferred, (std::vector<std::string>{"a"}));
}

// --- Database integration ------------------------------------------

class AdmissionDatabaseTest : public ::testing::Test {
 protected:
  void SetUpDatabase(Database* db) {
    db->catalog()->CreateTable(
        "dept",
        Schema({ColumnDef{"d_id", ValueType::kInt64, false},
                ColumnDef{"d_name", ValueType::kString, false}}),
        {"d_id"});
    db->catalog()->CreateTable(
        "emp",
        Schema({ColumnDef{"e_id", ValueType::kInt64, false},
                ColumnDef{"e_dept", ValueType::kInt64, false},
                ColumnDef{"e_salary", ValueType::kFloat64, true}}),
        {"e_id"});
    RelExprPtr tree = RelExpr::Join(
        JoinKind::kFullOuter, RelExpr::Scan("dept"), RelExpr::Scan("emp"),
        ScalarExpr::Compare(CompareOp::kEq,
                            ScalarExpr::Column("dept", "d_id"),
                            ScalarExpr::Column("emp", "e_dept")));
    ViewDef def("dept_emp", tree,
                {{"dept", "d_id"},
                 {"dept", "d_name"},
                 {"emp", "e_id"},
                 {"emp", "e_dept"},
                 {"emp", "e_salary"}},
                *db->catalog());
    db->CreateMaterializedView(def);
    db->Insert("dept", {Row{Value::Int64(1), Value::String("eng")}});
  }

  Row Emp(int64_t id, double salary) {
    return Row{Value::Int64(id), Value::Int64(1), Value::Float64(salary)};
  }
};

TEST_F(AdmissionDatabaseTest, DisabledConfigReproducesLegacySchedule) {
  // Same statement stream against the legacy scan and against a
  // database with a disabled AdmissionConfig: the refresh schedule
  // (refresh count and pending rows after every statement) must match
  // step for step — the disabled default installs nothing.
  Database legacy;
  Database disabled;
  Database cold;  // enabled, but budgets so high it never goes hot
  SetUpDatabase(&legacy);
  SetUpDatabase(&disabled);
  SetUpDatabase(&cold);

  ThresholdConfig threshold;
  threshold.max_pending_rows = 3;
  for (Database* db : {&legacy, &disabled, &cold}) {
    db->SetRefreshPolicy("dept_emp", RefreshPolicy::kThreshold, threshold);
  }
  disabled.SetAdmissionControl(AdmissionConfig{});  // enabled=false
  AdmissionConfig never_hot;
  never_hot.enabled = true;
  never_hot.statement_budget_micros = 1'000'000'000;
  never_hot.refresh_budget_micros = 1'000'000'000;
  never_hot.log_depth_budget_rows = 1'000'000'000;
  cold.SetAdmissionControl(never_hot);

  EXPECT_FALSE(disabled.GetAdmissionStats().enabled);
  EXPECT_TRUE(cold.GetAdmissionStats().enabled);

  for (int i = 0; i < 10; ++i) {
    for (Database* db : {&legacy, &disabled, &cold}) {
      db->Insert("emp", {Emp(100 + i, 10.0 * i)});
    }
    ASSERT_EQ(disabled.PendingRows("dept_emp"),
              legacy.PendingRows("dept_emp"))
        << "after statement " << i;
    ASSERT_EQ(cold.PendingRows("dept_emp"), legacy.PendingRows("dept_emp"))
        << "after statement " << i;
    ASSERT_EQ(disabled.RefreshState("dept_emp").refreshes,
              legacy.RefreshState("dept_emp").refreshes)
        << "after statement " << i;
    ASSERT_EQ(cold.RefreshState("dept_emp").refreshes,
              legacy.RefreshState("dept_emp").refreshes)
        << "after statement " << i;
  }
  // The threshold tripped at least once over ten single-row inserts.
  EXPECT_GE(legacy.RefreshState("dept_emp").refreshes, 2);
  EXPECT_EQ(cold.GetAdmissionStats().deferred, 0);
  EXPECT_FALSE(cold.GetAdmissionStats().hot);
}

TEST_F(AdmissionDatabaseTest, HotLoadDefersThenStalenessPromotes) {
  Database db;
  SetUpDatabase(&db);

  ThresholdConfig threshold;
  threshold.max_pending_rows = 1;
  threshold.staleness_ceiling_micros = 1500;  // 1.5ms staleness bound
  db.SetRefreshPolicy("dept_emp", RefreshPolicy::kThreshold, threshold);

  AdmissionConfig config;
  config.enabled = true;
  config.statement_budget_micros = 1'000'000'000;
  config.refresh_budget_micros = 1'000'000'000;
  config.log_depth_budget_rows = 1;  // any pending row => hot
  config.hot_slice = 0;
  config.backoff_initial_micros = 100;
  config.backoff_max_micros = 1000;
  db.SetAdmissionControl(config);

  // First statement: the view is due (pending 1 >= 1) but the system is
  // hot and staleness is microseconds — the refresh is deferred.
  db.Insert("emp", {Emp(100, 1.0)});
  EXPECT_EQ(db.PendingRows("dept_emp"), 1);
  Database::AdmissionStats stats = db.GetAdmissionStats();
  EXPECT_TRUE(stats.enabled);
  EXPECT_TRUE(stats.hot);
  EXPECT_GE(stats.deferred, 1);
  EXPECT_EQ(stats.promoted, 0);
  EXPECT_GE(stats.hot_transitions, 1);

  // Let staleness drift past the 1.5ms ceiling, then touch the database
  // again: the due-view scan promotes the view past the load gate.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  db.Insert("emp", {Emp(101, 2.0)});
  EXPECT_EQ(db.PendingRows("dept_emp"), 0);
  stats = db.GetAdmissionStats();
  EXPECT_GE(stats.promoted, 1);
  EXPECT_GE(db.RefreshState("dept_emp").refreshes, 1);
  // The promotion happened because the recent staleness percentile sat
  // above the ceiling at decision time.
  EXPECT_GE(db.AdmissionStalenessPercentile("dept_emp", 99.0), 1500);
}

TEST_F(AdmissionDatabaseTest, DropViewForgetsAdmissionState) {
  Database db;
  SetUpDatabase(&db);
  ThresholdConfig threshold;
  threshold.max_pending_rows = 1;
  db.SetRefreshPolicy("dept_emp", RefreshPolicy::kThreshold, threshold);
  AdmissionConfig config;
  config.enabled = true;
  config.log_depth_budget_rows = 1;
  config.hot_slice = 0;
  db.SetAdmissionControl(config);
  db.Insert("emp", {Emp(100, 1.0)});
  EXPECT_GE(db.AdmissionStalenessPercentile("dept_emp", 99.0), 0);
  db.DropView("dept_emp");
  EXPECT_EQ(db.AdmissionStalenessPercentile("dept_emp", 99.0), 0);
}

// BackgroundRefresher + admission interplay: the worker keeps scanning
// while hot, defers under load, and the staleness ceiling eventually
// promotes the view so staleness stays bounded. Runs under tsan via
// tools/check.sh (the worker thread, the statement thread, and the
// stats reader all cross the controller).
TEST_F(AdmissionDatabaseTest, BackgroundWorkerDefersUntilPromotion) {
  Database db;
  SetUpDatabase(&db);

  ThresholdConfig threshold;
  threshold.max_pending_rows = 1;
  threshold.staleness_ceiling_micros = 20'000;  // 20ms bound
  db.SetRefreshPolicy("dept_emp", RefreshPolicy::kThreshold, threshold);

  AdmissionConfig config;
  config.enabled = true;
  config.statement_budget_micros = 1'000'000'000;
  config.refresh_budget_micros = 1'000'000'000;
  config.log_depth_budget_rows = 1;  // pending work keeps it hot
  config.hot_slice = 0;              // only promotion can drain it
  config.backoff_initial_micros = 500;
  config.backoff_max_micros = 5'000;
  db.SetAdmissionControl(config);

  // Inline first so the "hot => deferred" leg is deterministic even if
  // the worker is slow to schedule.
  db.Insert("emp", {Emp(100, 1.0)});
  EXPECT_EQ(db.PendingRows("dept_emp"), 1);
  EXPECT_GE(db.GetAdmissionStats().deferred, 1);

  db.StartBackgroundRefresh(std::chrono::milliseconds(2));
  // The worker keeps rescanning; once staleness drifts past the 20ms
  // ceiling it promotes and refreshes. Allow generous slack for tsan.
  for (int i = 0; i < 5000 && db.PendingRows("dept_emp") > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    (void)db.GetAdmissionStats();  // concurrent reader for tsan
  }
  db.StopBackgroundRefresh();

  EXPECT_EQ(db.PendingRows("dept_emp"), 0);
  Database::AdmissionStats stats = db.GetAdmissionStats();
  EXPECT_GE(stats.deferred, 1);
  EXPECT_GE(stats.promoted, 1);
  EXPECT_GE(stats.hot_transitions, 1);
  EXPECT_GE(db.RefreshState("dept_emp").refreshes, 1);
}

}  // namespace
}  // namespace deferred
}  // namespace ojv
