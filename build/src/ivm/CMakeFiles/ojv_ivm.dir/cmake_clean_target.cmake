file(REMOVE_RECURSE
  "libojv_ivm.a"
)
