
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/rel_expr.cc" "src/algebra/CMakeFiles/ojv_algebra.dir/rel_expr.cc.o" "gcc" "src/algebra/CMakeFiles/ojv_algebra.dir/rel_expr.cc.o.d"
  "/root/repo/src/algebra/scalar_expr.cc" "src/algebra/CMakeFiles/ojv_algebra.dir/scalar_expr.cc.o" "gcc" "src/algebra/CMakeFiles/ojv_algebra.dir/scalar_expr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ojv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
